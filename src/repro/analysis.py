"""Statistical comparison of experiment results.

Paired comparisons between planes rest on latency samples; the helpers
here compute bootstrap confidence intervals and speedup summaries so
EXPERIMENTS.md-style statements ("GROUTER is 2.1x faster, CI [1.9,
2.3]") are backed by more than a point estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class BootstrapCI:
    """A bootstrap confidence interval for a statistic."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (
            f"{self.estimate:.4g} "
            f"[{self.low:.4g}, {self.high:.4g}] "
            f"@{self.confidence:.0%}"
        )


def bootstrap_ci(
    samples: Sequence[float],
    statistic=np.mean,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> BootstrapCI:
    """Percentile-bootstrap CI of *statistic* over *samples*."""
    if not samples:
        raise ConfigError("bootstrap needs at least one sample")
    if not 0 < confidence < 1:
        raise ConfigError("confidence must be in (0, 1)")
    data = np.asarray(list(samples), dtype=float)
    rng = np.random.default_rng(seed)
    stats = np.empty(resamples)
    for i in range(resamples):
        stats[i] = statistic(rng.choice(data, size=data.size, replace=True))
    alpha = (1 - confidence) / 2
    return BootstrapCI(
        estimate=float(statistic(data)),
        low=float(np.quantile(stats, alpha)),
        high=float(np.quantile(stats, 1 - alpha)),
        confidence=confidence,
    )


def speedup_ci(
    baseline: Sequence[float],
    treatment: Sequence[float],
    statistic=np.mean,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> BootstrapCI:
    """Bootstrap CI of ``statistic(baseline) / statistic(treatment)``.

    Values > 1 mean the treatment is faster (lower latency).  Baseline
    and treatment are resampled independently (unpaired runs).
    """
    if not baseline or not treatment:
        raise ConfigError("speedup needs samples on both sides")
    base = np.asarray(list(baseline), dtype=float)
    treat = np.asarray(list(treatment), dtype=float)
    rng = np.random.default_rng(seed)
    ratios = np.empty(resamples)
    for i in range(resamples):
        b = statistic(rng.choice(base, size=base.size, replace=True))
        t = statistic(rng.choice(treat, size=treat.size, replace=True))
        ratios[i] = b / t if t > 0 else np.inf
    alpha = (1 - confidence) / 2
    base_stat = float(statistic(base))
    treat_stat = float(statistic(treat))
    return BootstrapCI(
        estimate=base_stat / treat_stat if treat_stat > 0 else float("inf"),
        low=float(np.quantile(ratios, alpha)),
        high=float(np.quantile(ratios, 1 - alpha)),
        confidence=confidence,
    )


def significantly_faster(
    baseline: Sequence[float],
    treatment: Sequence[float],
    confidence: float = 0.95,
    seed: int = 0,
) -> bool:
    """True when the speedup CI excludes 1 (treatment reliably faster)."""
    ci = speedup_ci(baseline, treatment, confidence=confidence, seed=seed)
    return ci.low > 1.0
