"""Topology-aware parallel NVLink path selection (paper §4.3.3, Alg. 1).

For weakly connected GPU pairs on asymmetric topologies, GROUTER
aggregates several loop-free NVLink paths.  The selection is
contention-aware: it prefers completely idle paths, stops once the
source's outgoing (or destination's incoming) NVLink capacity is
saturated, and only then considers busy paths for bandwidth balancing.

Route-decision mode (``REPRO_NET_ROUTING``, default ``book``): the
candidate set comes from the node's precomputed
:class:`~repro.topology.routebook.NodeRouteBook` and contention reads
hit the network's O(1) :class:`~repro.net.network.ContentionIndex`.
``enumerate`` re-runs the per-decision DFS and per-link residual sums —
the reference both the differential suite and `repro bench --suite
routing` compare against.  Selections are bit-identical across modes.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.common.config import net_routing_mode
from repro.net.links import Link
from repro.net.network import FlowNetwork
from repro.net.transfer import Path
from repro.topology.devices import Gpu
from repro.topology.node import NodeTopology
from repro.topology.paths import nvlink_simple_paths
from repro.topology.routebook import route_book

# A busy path is worth borrowing only if it still has a meaningful
# fraction of its bottleneck capacity unallocated.
_BUSY_RESIDUAL_FRACTION = 0.1


@dataclass
class PathSelection:
    """Result of Algorithm 1 for one transfer."""

    paths: list[Path] = field(default_factory=list)
    free_paths: int = 0
    balanced_paths: int = 0

    @property
    def aggregate_bandwidth(self) -> float:
        return sum(path.nominal_bandwidth for path in self.paths)


# NVLink egress capacity is a static topology fact; memoize it per
# (node, gpu index) so Algorithm 1 stops re-summing neighbor
# capacities on every invocation.  Keyed weakly: caches die with their
# topology.
_OUT_CAPACITY: "weakref.WeakKeyDictionary[NodeTopology, dict]" = (
    weakref.WeakKeyDictionary()
)


def _out_capacity(node: NodeTopology, gpu: Gpu) -> float:
    per_node = _OUT_CAPACITY.get(node)
    if per_node is None:
        per_node = {}
        _OUT_CAPACITY[node] = per_node
    cap = per_node.get(gpu.index)
    if cap is None:
        cap = sum(
            node.nvlink_capacity(gpu.index, peer)
            for peer in node.nvlink_neighbors(gpu.index)
        )
        per_node[gpu.index] = cap
    return cap


def _path_is_free(network: FlowNetwork, path: Path, used_link_ids: set) -> bool:
    for link in path.links:
        if link.link_id in used_link_ids:
            return False
        if network.flow_count_on(link):
            return False
    return True


def _path_min_residual(
    residual: Callable[[Link], float], path: Path
) -> float:
    return min(residual(link) for link in path.links)


def _overlaps(path: Path, used_link_ids: set) -> bool:
    return any(link.link_id in used_link_ids for link in path.links)


def _candidates_and_residual(
    node: NodeTopology,
    network: FlowNetwork,
    src: Gpu,
    dst: Gpu,
    max_hops: int,
    routing: Optional[str],
):
    """Resolve the routing mode into (candidates, residual-read)."""
    if net_routing_mode(routing) == "book":
        candidates = route_book(node).nvlink_paths(
            src.index, dst.index, max_hops
        )
        return candidates, network.contention.residual
    return (
        nvlink_simple_paths(node, src, dst, max_hops=max_hops),
        network.residual_on,
    )


def select_parallel_nvlink_paths(
    node: NodeTopology,
    network: FlowNetwork,
    src: Gpu,
    dst: Gpu,
    max_hops: int = 3,
    max_paths: Optional[int] = None,
    routing: Optional[str] = None,
) -> PathSelection:
    """Algorithm 1: contention-aware parallel NVLink path selection.

    Returns the chosen disjoint paths.  Parallel transfers over them
    should split data proportionally to nominal bandwidth (the dynamic
    chunk sizing of §4.3.3), which :class:`~repro.net.TransferEngine`
    does automatically.
    """
    selection = PathSelection()
    candidates, residual_of = _candidates_and_residual(
        node, network, src, dst, max_hops, routing
    )
    if not candidates:
        return selection
    if node.has_nvswitch:
        # A non-blocking NVSwitch has exactly one sensible route; multi-
        # path logic only applies to mesh topologies.
        selection.paths.append(candidates[0])
        selection.free_paths = 1
        return selection

    saturation = min(_out_capacity(node, src), _out_capacity(node, dst))
    used_link_ids: set = set()
    chosen_bw = 0.0
    limit = max_paths if max_paths is not None else len(candidates)

    # Lines 1-7: consume free (fully idle, non-overlapping) paths,
    # shortest first, until src egress / dst ingress saturates.
    for path in candidates:
        if len(selection.paths) >= limit or chosen_bw >= saturation:
            break
        if _path_is_free(network, path, used_link_ids):
            selection.paths.append(path)
            selection.free_paths += 1
            used_link_ids.update(link.link_id for link in path.links)
            chosen_bw += path.nominal_bandwidth

    # Lines 8-14: if not saturated, balance bandwidth on busy paths that
    # still have useful residual capacity.
    if chosen_bw < saturation:
        busy = [
            path
            for path in candidates
            if not _overlaps(path, used_link_ids)
        ]
        busy.sort(
            key=lambda p: (p.hops, -_path_min_residual(residual_of, p))
        )
        for path in busy:
            if len(selection.paths) >= limit or chosen_bw >= saturation:
                break
            residual = _path_min_residual(residual_of, path)
            if residual < _BUSY_RESIDUAL_FRACTION * path.nominal_bandwidth:
                continue
            selection.paths.append(path)
            selection.balanced_paths += 1
            used_link_ids.update(link.link_id for link in path.links)
            chosen_bw += residual

    return selection


def best_single_nvlink_path(
    node: NodeTopology,
    network: FlowNetwork,
    src: Gpu,
    dst: Gpu,
    max_hops: int = 3,
    routing: Optional[str] = None,
) -> Optional[Path]:
    """The single best path by current residual bandwidth, if any."""
    candidates, residual_of = _candidates_and_residual(
        node, network, src, dst, max_hops, routing
    )
    if not candidates:
        return None
    return max(
        candidates,
        key=lambda p: (_path_min_residual(residual_of, p), -p.hops),
    )
