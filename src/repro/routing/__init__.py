"""Contention- and topology-aware routing policies."""

from repro.routing.harvest import (
    NicRoute,
    PcieRoute,
    nic_route_path,
    parallel_nic_paths,
    pcie_host_paths,
    select_nic_routes,
    select_pcie_routes,
)
from repro.routing.nvlink import (
    PathSelection,
    best_single_nvlink_path,
    select_parallel_nvlink_paths,
)

__all__ = [
    "NicRoute",
    "PcieRoute",
    "nic_route_path",
    "parallel_nic_paths",
    "pcie_host_paths",
    "select_nic_routes",
    "select_pcie_routes",
    "PathSelection",
    "best_single_nvlink_path",
    "select_parallel_nvlink_paths",
]
