"""Route-GPU selection for PCIe and NIC bandwidth harvesting (§3.2, §4.3.1).

*PCIe harvesting*: a gFn-host transfer can borrow idle PCIe uplinks of
peer GPUs by first hopping to them over NVLink.  Topology-aware
selection (GROUTER) only borrows peers that (a) have a direct NVLink to
the source and (b) sit on a *different* PCIe switch — peers behind the
same switch share the uplink and add nothing.  The naive variant
(DeepPlan+) borrows one peer per switch regardless of NVLink
connectivity; NVLink-less peers are reached over PCIe peer-to-peer,
which crosses the source's own uplink twice and congests it.

*NIC harvesting*: a cross-node transfer can fan out over several NICs
by staging chunks on route GPUs near each NIC, mirrored on the
receiving node ("corresponding GPUs", Fig. 9(a)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.config import net_routing_mode
from repro.common.errors import RoutingError
from repro.net.network import FlowNetwork
from repro.net.transfer import Path
from repro.topology.cluster import ClusterTopology
from repro.topology.devices import FABRIC_ID, Gpu, Nic
from repro.topology.node import NodeTopology
from repro.topology.paths import (
    gpu_to_host_path,
    gpu_to_nic_links,
    host_to_gpu_path,
    nic_to_gpu_links,
)
from repro.topology.routebook import cluster_route_book, route_book


@dataclass(frozen=True)
class PcieRoute:
    """One borrowed PCIe uplink: the route GPU and whether NVLink feeds it."""

    route_gpu: Gpu
    via_nvlink: bool


def _nvlink_hop_links(node: NodeTopology, src: Gpu, dst: Gpu) -> list:
    """Links of the direct NVLink hop (or NVSwitch hub hop)."""
    if node.has_nvswitch:
        return [
            node.link(src.device_id, node.nvswitch_id),
            node.link(node.nvswitch_id, dst.device_id),
        ]
    return [node.link(src.device_id, dst.device_id)]


def _has_nvlink(node: NodeTopology, a: Gpu, b: Gpu) -> bool:
    return node.nvlink_capacity(a.index, b.index) > 0


def _pcie_switch_table(node: NodeTopology, gpu: Gpu) -> tuple:
    """Static per-switch candidates for :func:`select_pcie_routes`.

    One entry per foreign PCIe switch, in ``node.switches`` order:
    ``(uplink, aware_route, naive_route)`` where *aware_route* is the
    NVLink-fed borrow (or ``None``) and *naive_route* the DeepPlan+
    fallback.  Cached on the node's route book; only the uplink-busy
    check remains dynamic.
    """
    book = route_book(node)
    key = ("pcie_switch_table", gpu.index)
    table = book.extras.get(key)
    if table is None:
        my_switch = node.switch_of(gpu)
        entries = []
        for switch in node.switches:
            if switch.device_id == my_switch:
                continue  # shares my uplink; borrowing it gains nothing
            uplink = node.link(switch.device_id, node.host.device_id)
            group = node.gpus_on_switch(switch.device_id)
            linked = [peer for peer in group if _has_nvlink(node, gpu, peer)]
            aware = (
                PcieRoute(route_gpu=linked[0], via_nvlink=True)
                if linked
                else None
            )
            naive = (
                PcieRoute(route_gpu=group[0], via_nvlink=False)
                if group
                else None
            )
            entries.append((uplink, aware, naive))
        table = tuple(entries)
        book.extras[key] = table
    return table


def select_pcie_routes(
    node: NodeTopology,
    gpu: Gpu,
    topology_aware: bool = True,
    network: Optional[FlowNetwork] = None,
    max_routes: Optional[int] = None,
    routing: Optional[str] = None,
) -> list[PcieRoute]:
    """Pick route GPUs whose PCIe uplinks a gFn-host transfer may borrow.

    At most one route per foreign PCIe switch (the uplink is the
    resource being borrowed).  With *network* given, switches whose
    uplink already carries traffic are skipped (contention avoidance).
    """
    if net_routing_mode(routing) == "book":
        routes = []
        for uplink, aware, naive in _pcie_switch_table(node, gpu):
            if network is not None and network.flow_count_on(uplink):
                continue
            if aware is not None:
                routes.append(aware)
            elif not topology_aware and naive is not None:
                routes.append(naive)
            if max_routes is not None and len(routes) >= max_routes:
                break
        return routes
    my_switch = node.switch_of(gpu)
    routes = []
    for switch in node.switches:
        if switch.device_id == my_switch:
            continue  # shares my uplink; borrowing it gains nothing
        if network is not None:
            uplink = node.link(switch.device_id, node.host.device_id)
            if network.flow_count_on(uplink):
                continue
        group = node.gpus_on_switch(switch.device_id)
        linked = [peer for peer in group if _has_nvlink(node, gpu, peer)]
        if linked:
            routes.append(PcieRoute(route_gpu=linked[0], via_nvlink=True))
        elif not topology_aware and group:
            routes.append(PcieRoute(route_gpu=group[0], via_nvlink=False))
        if max_routes is not None and len(routes) >= max_routes:
            break
    return routes


def pcie_host_paths(
    node: NodeTopology,
    gpu: Gpu,
    routes: list[PcieRoute],
    direction: str = "to_host",
    include_direct: bool = True,
    routing: Optional[str] = None,
) -> list[Path]:
    """Build the parallel path set for a gFn-host transfer.

    ``to_host`` moves GPU data to host memory, ``from_host`` the other
    way.  NVLink-fed routes hop GPU-to-GPU first; NVLink-less routes
    (naive harvesting) relay over PCIe peer-to-peer, crossing the
    source's own uplink twice — the congestion the paper warns about.
    """
    if direction not in ("to_host", "from_host"):
        raise RoutingError(f"unknown direction {direction!r}")
    if net_routing_mode(routing) == "book":
        book = route_book(node)
        paths = []
        if include_direct:
            paths.append(
                book.gpu_to_host(gpu.index)
                if direction == "to_host"
                else book.host_to_gpu(gpu.index)
            )
        for route in routes:
            key = (
                "pcie_path",
                gpu.index,
                route.route_gpu.index,
                route.via_nvlink,
                direction,
            )
            path = book.extras.get(key)
            if path is None:
                path = _borrowed_pcie_path(node, gpu, route, direction)
                book.extras[key] = path
            paths.append(path)
        return paths
    host = node.host.device_id
    paths = []
    if include_direct:
        direct = (
            gpu_to_host_path(node, gpu)
            if direction == "to_host"
            else host_to_gpu_path(node, gpu)
        )
        paths.append(direct)
    for route in routes:
        paths.append(_borrowed_pcie_path(node, gpu, route, direction))
    return paths


def _borrowed_pcie_path(
    node: NodeTopology, gpu: Gpu, route: PcieRoute, direction: str
) -> Path:
    """One borrowed-uplink path of :func:`pcie_host_paths`."""
    host = node.host.device_id
    my_switch = node.switch_of(gpu)
    peer = route.route_gpu
    peer_switch = node.switch_of(peer)
    if direction == "to_host":
        if route.via_nvlink:
            links = _nvlink_hop_links(node, gpu, peer) + [
                node.link(peer.device_id, peer_switch),
                node.link(peer_switch, host),
            ]
        else:
            # PCIe p2p relay: out over my uplink, in to the peer,
            # then out again over the peer's uplink.
            links = [
                node.link(gpu.device_id, my_switch),
                node.link(my_switch, host),
                node.link(host, peer_switch),
                node.link(peer_switch, peer.device_id),
                node.link(peer.device_id, peer_switch),
                node.link(peer_switch, host),
            ]
    else:
        if route.via_nvlink:
            links = [
                node.link(host, peer_switch),
                node.link(peer_switch, peer.device_id),
            ] + _nvlink_hop_links(node, peer, gpu)
        else:
            links = [
                node.link(host, peer_switch),
                node.link(peer_switch, peer.device_id),
                node.link(peer.device_id, peer_switch),
                node.link(peer_switch, host),
                node.link(host, my_switch),
                node.link(my_switch, gpu.device_id),
            ]
    return Path(tuple(links))


@dataclass(frozen=True)
class NicRoute:
    """One NIC lane of a cross-node transfer."""

    src_nic: Nic
    dst_nic: Nic
    src_feeder: Gpu  # GPU that DMA's into src_nic (may be the source)
    dst_feeder: Gpu  # GPU that receives from dst_nic (may be the dest)


def select_nic_routes(
    cluster: ClusterTopology,
    src: Gpu,
    dst: Gpu,
    topology_aware: bool = True,
    max_nics: Optional[int] = None,
    routing: Optional[str] = None,
) -> list[NicRoute]:
    """Pick NIC lanes for a cross-node gFn-gFn transfer (Fig. 9(a)).

    For every source NIC: use the source GPU itself when the NIC hangs
    off its switch, otherwise a route GPU on the NIC's switch with a
    direct NVLink to the source.  The destination side mirrors the
    source's NIC index ("corresponding GPUs" minimize NUMA hops).
    """
    if net_routing_mode(routing) == "book":
        # NIC lane selection is purely topological, so the whole route
        # list interns on the cluster book; *max_nics* truncation is a
        # prefix of the full enumeration by construction.
        book = cluster_route_book(cluster)
        key = ("nic_routes", src.device_id, dst.device_id, topology_aware)
        routes = book.extras.get(key)
        if routes is None:
            routes = tuple(
                select_nic_routes(
                    cluster,
                    src,
                    dst,
                    topology_aware=topology_aware,
                    routing="enumerate",
                )
            )
            book.extras[key] = routes
        full = list(routes)
        return full if max_nics is None else full[:max_nics]
    src_node = cluster.node_of_device(src.device_id)
    dst_node = cluster.node_of_device(dst.device_id)
    routes: list[NicRoute] = []
    for nic in src_node.nics:
        src_feeder = _feeder_for_nic(src_node, src, nic, topology_aware)
        if src_feeder is None:
            continue
        if nic.index >= len(dst_node.nics):
            continue
        dst_nic = dst_node.nics[nic.index]
        dst_feeder = _feeder_for_nic(dst_node, dst, dst_nic, topology_aware)
        if dst_feeder is None:
            continue
        routes.append(
            NicRoute(
                src_nic=nic,
                dst_nic=dst_nic,
                src_feeder=src_feeder,
                dst_feeder=dst_feeder,
            )
        )
        if max_nics is not None and len(routes) >= max_nics:
            break
    return routes


def _feeder_for_nic(
    node: NodeTopology, gpu: Gpu, nic: Nic, topology_aware: bool
) -> Optional[Gpu]:
    nic_switch_gpus = [
        peer
        for peer in node.gpus
        if nic.device_id in node.nics_of_switch(node.switch_of(peer))
    ]
    if gpu in nic_switch_gpus:
        return gpu
    linked = [peer for peer in nic_switch_gpus if _has_nvlink(node, gpu, peer)]
    if linked:
        return linked[0]
    if not topology_aware and nic_switch_gpus:
        return nic_switch_gpus[0]
    return None


def nic_route_path(
    cluster: ClusterTopology, src: Gpu, dst: Gpu, route: NicRoute
) -> Path:
    """Materialize one NIC lane as a link path."""
    src_node = cluster.node_of_device(src.device_id)
    dst_node = cluster.node_of_device(dst.device_id)
    links: list = []
    if route.src_feeder.device_id != src.device_id:
        links += _nvlink_hop_links(src_node, src, route.src_feeder)
    links += gpu_to_nic_links(src_node, route.src_feeder, route.src_nic)
    links += [
        cluster.link(route.src_nic.device_id, FABRIC_ID),
        cluster.link(FABRIC_ID, route.dst_nic.device_id),
    ]
    links += nic_to_gpu_links(dst_node, route.dst_nic, route.dst_feeder)
    if route.dst_feeder.device_id != dst.device_id:
        links += _nvlink_hop_links(dst_node, route.dst_feeder, dst)
    return Path(tuple(links))


def parallel_nic_paths(
    cluster: ClusterTopology,
    src: Gpu,
    dst: Gpu,
    topology_aware: bool = True,
    max_nics: Optional[int] = None,
    routing: Optional[str] = None,
) -> list[Path]:
    """All NIC-lane paths for a cross-node transfer, ready to execute."""
    if net_routing_mode(routing) == "book":
        book = cluster_route_book(cluster)
        key = ("nic_paths", src.device_id, dst.device_id, topology_aware)
        lane_paths = book.extras.setdefault(key, {})
        routes = select_nic_routes(
            cluster, src, dst, topology_aware=topology_aware, routing="book"
        )
        if max_nics is not None:
            routes = routes[:max_nics]
        # Materialize lanes lazily per index: a lane beyond the prefix a
        # caller asked for may be un-materializable (no NVLink hop), and
        # the enumerate mode would never touch it either.
        paths = []
        for lane, route in enumerate(routes):
            path = lane_paths.get(lane)
            if path is None:
                path = nic_route_path(cluster, src, dst, route)
                lane_paths[lane] = path
            paths.append(path)
        return paths
    routes = select_nic_routes(
        cluster,
        src,
        dst,
        topology_aware=topology_aware,
        max_nics=max_nics,
        routing="enumerate",
    )
    return [nic_route_path(cluster, src, dst, route) for route in routes]
