"""Eviction / migration victim selection (paper §4.4.2).

When GPU memory pressure forces intermediate data out of GPU storage,
the policy decides *which* objects move to host memory:

- :class:`LruPolicy` — least-recently-used, what NVSHMEM+-style systems
  inherit from DNN-training memory managers.  It ignores the request
  queue, so data needed by the very next function can be evicted.
- :class:`QueueAwarePolicy` — GROUTER's strategy: objects whose next
  consumer sits deepest in the request queue (or is not queued at all)
  are evicted first, keeping imminent data resident.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class EvictionCandidate:
    """A resident object the policy may choose to migrate.

    ``queue_position`` is the index of the *earliest* queued invocation
    that will consume this object (0 = next to run); ``None`` means no
    queued consumer is known.
    """

    object_id: str
    size: float
    last_access: float
    queue_position: Optional[int] = None
    pinned: bool = False


class EvictionPolicy(abc.ABC):
    """Strategy interface: pick victims totalling at least *needed* bytes."""

    name: str = "abstract"

    @abc.abstractmethod
    def rank(self, candidates: Sequence[EvictionCandidate]) -> list[EvictionCandidate]:
        """Order candidates most-evictable first."""

    def select(
        self, candidates: Sequence[EvictionCandidate], needed: float
    ) -> list[EvictionCandidate]:
        """Greedy prefix of :meth:`rank` covering *needed* bytes.

        Pinned candidates are never selected.  May return less than
        *needed* when the candidates run out.
        """
        victims: list[EvictionCandidate] = []
        total = 0.0
        for candidate in self.rank(
            [c for c in candidates if not c.pinned]
        ):
            if total >= needed:
                break
            victims.append(candidate)
            total += candidate.size
        return victims


class LruPolicy(EvictionPolicy):
    """Evict the least recently accessed objects first."""

    name = "lru"

    def rank(self, candidates: Sequence[EvictionCandidate]) -> list[EvictionCandidate]:
        return sorted(candidates, key=lambda c: (c.last_access, c.object_id))


class QueueAwarePolicy(EvictionPolicy):
    """Evict objects consumed furthest in the future first (GROUTER).

    Objects with no queued consumer go first; then consumers deepest in
    the queue; LRU breaks ties.
    """

    name = "queue-aware"

    def rank(self, candidates: Sequence[EvictionCandidate]) -> list[EvictionCandidate]:
        def key(candidate: EvictionCandidate):
            # No consumer -> evict before any queued object.
            has_consumer = candidate.queue_position is not None
            depth = candidate.queue_position if has_consumer else -1
            # Deeper queue position = safer to evict = ranked earlier,
            # so sort by -depth; unqueued (-1 -> +inf surrogate) first.
            return (
                0 if not has_consumer else 1,
                -depth,
                candidate.last_access,
                candidate.object_id,
            )

        return sorted(candidates, key=key)


POLICIES = {
    LruPolicy.name: LruPolicy,
    QueueAwarePolicy.name: QueueAwarePolicy,
}


def make_policy(name: str) -> EvictionPolicy:
    """Instantiate an eviction policy by name (``lru``/``queue-aware``)."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown eviction policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None
