"""GPU storage memory pools (paper §4.4.1).

A pool pre-reserves device memory so Put() avoids millisecond-scale
``cudaMalloc`` calls.  Two behaviours are modelled:

- **static** pools (PyTorch-style, the baselines): grow on demand and
  never shrink until manually reclaimed — this is the "4x more memory
  than actual demand" failure mode the paper measures.
- **elastic** pools (GROUTER): an :class:`ElasticPoolManager` (see
  :mod:`repro.memory.elastic`) continuously trims the reservation to the
  histogram-predicted demand, with a floor for bursts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.common.errors import AllocationError
from repro.memory.device import AllocationCostModel, DeviceMemory
from repro.sim.core import Environment, Process
from repro.telemetry.events import PoolAlloc, PoolFree, PoolTrim

POOL_TAG = "storage-pool"


@dataclass
class PoolAllocation:
    """A byte range handed out by a pool (no addresses, just accounting)."""

    alloc_id: int
    size: float
    pool: "MemoryPool"
    freed: bool = False


class MemoryPool:
    """A reservation-backed allocator on one GPU.

    ``alloc``/``free`` are simulation processes because growing the
    reservation costs real (simulated) time.
    """

    _ids = itertools.count()

    def __init__(
        self,
        env: Environment,
        device: DeviceMemory,
        cost_model: AllocationCostModel | None = None,
        tag: str = POOL_TAG,
    ) -> None:
        self.env = env
        self.device = device
        self.cost_model = cost_model if cost_model is not None else AllocationCostModel()
        self.tag = tag
        self._reserved = 0.0
        self._in_use = 0.0
        self.peak_reserved = 0.0
        self.grow_count = 0

    # -- accounting -------------------------------------------------------
    @property
    def reserved(self) -> float:
        """Bytes currently reserved from the device."""
        return self._reserved

    @property
    def in_use(self) -> float:
        """Bytes currently handed out to allocations."""
        return self._in_use

    @property
    def idle_reserved(self) -> float:
        """Reserved but unallocated bytes (pooling headroom)."""
        return self._reserved - self._in_use

    # -- allocation --------------------------------------------------------
    def alloc(self, size: float) -> Process:
        """Allocate *size* bytes; returns a process yielding PoolAllocation."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive: {size}")
        return self.env.process(self._alloc(size))

    def _alloc(self, size: float):
        requested_at = self.env.now
        grew = self.idle_reserved < size
        if not grew:
            yield self.env.timeout(self.cost_model.pool_hit)
        else:
            growth = size - self.idle_reserved
            # Device reservation happens immediately (so concurrent
            # allocs see a consistent view); the latency follows.
            self.device.reserve(self.tag, growth)
            self._reserved += growth
            self.grow_count += 1
            self.peak_reserved = max(self.peak_reserved, self._reserved)
            yield self.env.timeout(self.cost_model.malloc_latency(growth))
        self._in_use += size
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(PoolAlloc(
                t=self.env.now,
                device_id=self.device.device_id,
                size=size,
                reserved=self._reserved,
                in_use=self._in_use,
                grew=grew,
                requested_at=requested_at,
            ))
        return PoolAllocation(next(MemoryPool._ids), size, self)

    def free(self, allocation: PoolAllocation) -> None:
        """Return an allocation to the pool (reservation is kept)."""
        if allocation.pool is not self:
            raise AllocationError("free() of a foreign allocation")
        if allocation.freed:
            raise AllocationError(f"double free of allocation {allocation.alloc_id}")
        allocation.freed = True
        self._in_use -= allocation.size
        if self._in_use < -1e-6:
            raise AllocationError("pool in_use went negative")
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(PoolFree(
                t=self.env.now,
                device_id=self.device.device_id,
                size=allocation.size,
                reserved=self._reserved,
                in_use=self._in_use,
            ))

    def prewarm(self, size: float) -> None:
        """Reserve *size* bytes up front with no simulated latency.

        Models deploy-time pre-reservation: both the baselines' static
        pools and GROUTER's 300 MB idle floor are in place before the
        first request arrives.
        """
        if size <= 0:
            return
        growth = size - self.idle_reserved
        if growth <= 0:
            return
        self.device.reserve(self.tag, growth)
        self._reserved += growth
        self.peak_reserved = max(self.peak_reserved, self._reserved)

    # -- trimming ---------------------------------------------------------
    def trim(self, target_reserved: float) -> Process:
        """Shrink the reservation toward *target* (never below in_use)."""
        return self.env.process(self._trim(target_reserved))

    def _trim(self, target_reserved: float):
        floor = max(target_reserved, self._in_use)
        excess = self._reserved - floor
        if excess <= 0:
            return 0.0
        self.device.release(self.tag, excess)
        self._reserved -= excess
        yield self.env.timeout(self.cost_model.free_latency(excess))
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(PoolTrim(
                t=self.env.now,
                device_id=self.device.device_id,
                released=excess,
                reserved=self._reserved,
                in_use=self._in_use,
            ))
        return excess

    def reclaim_all(self) -> Process:
        """Release every idle reserved byte (PyTorch empty_cache style)."""
        return self.trim(0.0)

    def __repr__(self) -> str:
        return (
            f"<MemoryPool {self.device.device_id} reserved={self._reserved:.0f} "
            f"in_use={self._in_use:.0f}>"
        )
