"""Per-GPU device memory accounting.

Tracks who holds how many bytes of a GPU's memory (model weights,
activations, the storage pool, ...) and records a usage timeline so
experiments can plot memory pressure over time (paper Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import AllocationError
from repro.common.units import GB, MS
from repro.sim.core import Environment


@dataclass(frozen=True)
class AllocationCostModel:
    """Latency model for raw device allocations.

    ``cudaMalloc``/``cudaFree`` are millisecond-scale (§4.4.1); pool
    hits cost microseconds.  Values are configurable for ablations.
    """

    malloc_base: float = 0.5 * MS
    malloc_per_gb: float = 0.2 * MS
    free_base: float = 0.3 * MS
    pool_hit: float = 5e-6

    def malloc_latency(self, size: float) -> float:
        return self.malloc_base + self.malloc_per_gb * (size / GB)

    def free_latency(self, size: float) -> float:
        return self.free_base


@dataclass
class MemorySample:
    """One point on a GPU's memory usage timeline."""

    time: float
    used: float
    by_tag: dict[str, float]


class DeviceMemory:
    """Byte-counted memory of one GPU, attributed per tag."""

    def __init__(
        self,
        env: Environment,
        device_id: str,
        capacity: float,
        record_timeline: bool = False,
    ) -> None:
        if capacity <= 0:
            raise AllocationError(f"{device_id}: capacity must be positive")
        self.env = env
        self.device_id = device_id
        self.capacity = capacity
        self._by_tag: dict[str, float] = {}
        self.record_timeline = record_timeline
        self.timeline: list[MemorySample] = []

    @property
    def used(self) -> float:
        return sum(self._by_tag.values())

    @property
    def free(self) -> float:
        return self.capacity - self.used

    def used_by(self, tag: str) -> float:
        return self._by_tag.get(tag, 0.0)

    def reserve(self, tag: str, size: float) -> None:
        """Claim *size* bytes under *tag*; raises if the GPU is full."""
        if size < 0:
            raise AllocationError(f"negative reservation {size}")
        if size > self.free + 1e-6:
            raise AllocationError(
                f"{self.device_id}: out of memory "
                f"(want {size:.0f}, free {self.free:.0f})"
            )
        self._by_tag[tag] = self._by_tag.get(tag, 0.0) + size
        self._record()

    def release(self, tag: str, size: float) -> None:
        """Return *size* bytes held under *tag*."""
        held = self._by_tag.get(tag, 0.0)
        if size > held + 1e-6:
            raise AllocationError(
                f"{self.device_id}: release of {size:.0f} exceeds "
                f"{held:.0f} held by {tag!r}"
            )
        remaining = held - size
        if remaining <= 1e-9:
            self._by_tag.pop(tag, None)
        else:
            self._by_tag[tag] = remaining
        self._record()

    def can_fit(self, size: float) -> bool:
        return size <= self.free + 1e-6

    def _record(self) -> None:
        if self.record_timeline:
            self.timeline.append(
                MemorySample(self.env.now, self.used, dict(self._by_tag))
            )

    def __repr__(self) -> str:
        return (
            f"<DeviceMemory {self.device_id} "
            f"{self.used / GB:.2f}/{self.capacity / GB:.1f} GB>"
        )
