"""GPU memory: device accounting, pools, elastic scaling, eviction."""

from repro.memory.device import AllocationCostModel, DeviceMemory, MemorySample
from repro.memory.elastic import (
    DEFAULT_MIN_POOL,
    ElasticPoolManager,
    FunctionHistogram,
)
from repro.memory.eviction import (
    EvictionCandidate,
    EvictionPolicy,
    LruPolicy,
    QueueAwarePolicy,
    make_policy,
)
from repro.memory.pool import MemoryPool, PoolAllocation

__all__ = [
    "AllocationCostModel",
    "DeviceMemory",
    "MemorySample",
    "DEFAULT_MIN_POOL",
    "ElasticPoolManager",
    "FunctionHistogram",
    "EvictionCandidate",
    "EvictionPolicy",
    "LruPolicy",
    "QueueAwarePolicy",
    "make_policy",
    "MemoryPool",
    "PoolAllocation",
]
