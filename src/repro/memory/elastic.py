"""Elastic GPU storage scaling (paper §4.4.1).

GROUTER pre-warms pool memory the way serverless platforms pre-warm
functions: per function it tracks the 99th percentile of request
inter-arrival intervals (``R_window``), intermediate data sizes
(``R_size``) and data accumulation / concurrency (``R_con``).  After an
execution, ``R_size * R_con`` bytes stay reserved for ``R_window``; if
no new request arrives within the window, the reservation lapses.  A
minimum pool (300 MB by default) absorbs bursts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

import numpy as np

from repro.common.errors import ConfigError
from repro.common.units import MB, MS
from repro.memory.pool import MemoryPool
from repro.sim.core import Environment

DEFAULT_MIN_POOL = 300 * MB
DEFAULT_PERCENTILE = 99.0
DEFAULT_HISTORY = 512


@dataclass
class FunctionHistogram:
    """Sliding-window histograms for one function (paper Fig. 11(a))."""

    history: int = DEFAULT_HISTORY
    percentile: float = DEFAULT_PERCENTILE
    intervals: Deque[float] = field(default_factory=deque)
    sizes: Deque[float] = field(default_factory=deque)
    concurrency: Deque[int] = field(default_factory=deque)
    last_arrival: Optional[float] = None
    _live_objects: int = 0
    # Cached P99s, invalidated on push: reservation() is probed on
    # every trim check, far more often than the windows mutate.
    _cache: dict = field(default_factory=dict, repr=False)

    def observe_arrival(self, now: float) -> None:
        if self.last_arrival is not None:
            self._push(self.intervals, now - self.last_arrival)
        self.last_arrival = now

    def observe_put(self, size: float) -> None:
        self._push(self.sizes, size)
        self._live_objects += 1
        self._push(self.concurrency, self._live_objects)

    def observe_consume(self) -> None:
        self._live_objects = max(0, self._live_objects - 1)

    def _push(self, series: Deque, value) -> None:
        series.append(value)
        while len(series) > self.history:
            series.popleft()
        self._cache.clear()

    def _cached_percentile(self, key: str, series: Deque) -> float:
        value = self._cache.get(key)
        if value is None:
            value = float(np.percentile(list(series), self.percentile))
            self._cache[key] = value
        return value

    # -- predictions ------------------------------------------------------
    @property
    def r_window(self) -> float:
        """P99 inter-arrival interval; how long to keep memory warm."""
        if not self.intervals:
            return 0.0
        return self._cached_percentile("window", self.intervals)

    @property
    def r_size(self) -> float:
        if not self.sizes:
            return 0.0
        return self._cached_percentile("size", self.sizes)

    @property
    def r_con(self) -> float:
        if not self.concurrency:
            return 1.0
        return self._cached_percentile("con", self.concurrency)

    def reservation(self, now: float) -> float:
        """Bytes to keep reserved for this function at time *now*.

        ``R_size * R_con`` while the pre-warm window is open, else 0
        (the indicator term in the paper's MemPool_size formula).
        """
        if self.last_arrival is None:
            return 0.0
        if now - self.last_arrival > self.r_window:
            return 0.0
        return self.r_size * self.r_con


class ElasticPoolManager:
    """Continuously trims a pool's reservation to predicted demand."""

    def __init__(
        self,
        env: Environment,
        pool: MemoryPool,
        min_pool: float = DEFAULT_MIN_POOL,
        check_interval: float = 100 * MS,
        percentile: float = DEFAULT_PERCENTILE,
    ) -> None:
        if check_interval <= 0:
            raise ConfigError("check_interval must be positive")
        self.env = env
        self.pool = pool
        self.min_pool = min_pool
        self.check_interval = check_interval
        self.percentile = percentile
        self._histograms: dict[str, FunctionHistogram] = {}
        self._running = False
        self._check_armed = False

    def histogram(self, function_name: str) -> FunctionHistogram:
        hist = self._histograms.get(function_name)
        if hist is None:
            hist = FunctionHistogram(percentile=self.percentile)
            self._histograms[function_name] = hist
        return hist

    # -- observation hooks ---------------------------------------------------
    def notify_arrival(self, function_name: str) -> None:
        self.histogram(function_name).observe_arrival(self.env.now)
        self.poke()

    def notify_put(self, function_name: str, size: float) -> None:
        self.histogram(function_name).observe_put(size)
        self.poke()

    def notify_consume(self, function_name: str) -> None:
        self.histogram(function_name).observe_consume()
        self.poke()

    # -- sizing ---------------------------------------------------------------
    def target_size(self) -> float:
        """MemPool_size = sum of active function reservations + floor."""
        now = self.env.now
        demand = sum(
            hist.reservation(now) for hist in self._histograms.values()
        )
        return max(self.min_pool, demand)

    def start(self) -> None:
        """Enable auto-trimming (idempotent).

        Trimming is event-driven: a check is armed whenever there could
        be work (pool above target, or pre-warm windows still open) and
        the loop goes quiet otherwise, so an idle simulation drains.
        Call :meth:`poke` after observations to re-arm.
        """
        self._running = True
        self.poke()

    def stop(self) -> None:
        self._running = False

    def poke(self) -> None:
        """Arm a trim check if auto-trimming is on and none is pending."""
        if not self._running or self._check_armed:
            return
        if not self._work_possible():
            return
        self._check_armed = True
        self.env.process(self._check_once())

    def _work_possible(self) -> bool:
        if self.pool.reserved > self.min_pool:
            return True
        # Open pre-warm windows can still change the target.
        now = self.env.now
        return any(
            hist.reservation(now) > 0 for hist in self._histograms.values()
        )

    def _check_once(self):
        yield self.env.timeout(self.check_interval)
        self._check_armed = False
        if not self._running:
            return
        target = self.target_size()
        if self.pool.reserved > target:
            yield self.pool.trim(target)
        self.poke()
