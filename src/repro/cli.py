"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show available experiments, data planes, workloads and topologies.
``run EXPERIMENT``
    Run one paper experiment (or ``all``) and print/export its tables.
``topo PRESET``
    Describe a topology preset (GPUs, links, NICs, asymmetry).
``workloads``
    Describe the evaluation workflow suite.
``bench``
    Run performance microbenchmarks.  ``--suite net`` (default) covers
    the network engine (``BENCH_net.json``); ``--suite platform`` runs
    the request-lifecycle churn benchmark (``BENCH_platform.json``);
    ``--suite telemetry`` measures event fan-out cost with the
    recorder and profiler attached (``BENCH_telemetry.json``);
    ``--suite routing`` measures route-decision throughput in the
    precomputed-book mode against per-decision enumeration
    (``BENCH_routing.json``); ``--suite endtoend`` replays
    10k/100k-request traces through the streaming telemetry stack and
    asserts peak RSS stays flat (``BENCH_endtoend.json``; name
    ``requests_1m`` explicitly for the million-request run).
``profile``
    Run one experiment with the causal profiler attached: writes
    ``profile.json`` (per-request critical paths with exact blame
    tiling) and prints the per-category breakdown plus the Fig.-3
    shaped data-passing share per plane.
``health``
    Run one experiment with the SLO board and per-entity time series
    attached: writes ``health.json`` (attainment, burn rate, violation
    episodes, entity verdicts) plus the event spool it was derived
    from, and prints an ASCII dashboard.  ``--replay`` rebuilds the
    identical document from an existing spool.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable

from repro.common.units import GB
from repro.experiments import (
    ablations,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    fig20,
    table1,
)
from repro.report import FORMATS, render

# name -> (description, full-run callable, quick-run callable).
# Callables return a list of ExperimentTable.
EXPERIMENTS: dict[str, tuple[str, Callable, Callable]] = {
    "fig03": (
        "host-centric latency breakdown",
        lambda: [fig03.run_overall(), fig03.run_traffic_batches()],
        lambda: [fig03.run_overall(workflows=("driving",), duration=6.0)],
    ),
    "table1": (
        "capability matrix of storage approaches",
        lambda: [table1.run()],
        lambda: [table1.run()],
    ),
    "fig04": (
        "redundant copies in a chain workflow",
        lambda: [fig04.run()],
        lambda: [fig04.run(trials=3)],
    ),
    "fig05": (
        "PCIe interference without partitioning",
        lambda: [fig05.run()],
        lambda: [fig05.run(duration=8.0)],
    ),
    "fig06": (
        "DGX-V100 p2p bandwidth matrix",
        lambda: [fig06.run()],
        lambda: [fig06.run()],
    ),
    "fig07": (
        "GPU memory under Azure-style trace",
        lambda: [fig07.run_memory_timeline(), fig07.run_forced_eviction()],
        lambda: [fig07.run_memory_timeline(duration=8.0)],
    ),
    "fig12": (
        "workflow suite structure",
        lambda: [fig12.run()],
        lambda: [fig12.run()],
    ),
    "fig13": (
        "raw data-passing latency (3 patterns)",
        lambda: fig13.run_all(),
        lambda: [fig13.run_pattern("intra", sizes_mb=(16, 64), trials=2)],
    ),
    "fig14": (
        "end-to-end P99 latency per workflow",
        lambda: fig14.run_both_testbeds(),
        lambda: [fig14.run(workflows=("driving",), duration=8.0)],
    ),
    "fig15": (
        "max sustainable throughput",
        lambda: [fig15.run()],
        lambda: [fig15.run(duration=6.0, planes=("infless+", "grouter"))],
    ),
    "fig16": (
        "ablation of UF/BH/TA/ES",
        lambda: fig16.run_both_testbeds(),
        lambda: [fig16.run(duration=8.0)],
    ),
    "fig17": (
        "SLO-aware bandwidth partitioning",
        lambda: [fig17.run()],
        lambda: [fig17.run(duration=8.0)],
    ),
    "fig18": (
        "elastic storage under memory pressure",
        lambda: [
            fig18.run_tail_latency(),
            fig18.run_memory_sweep(),
            fig18.run_data_passing(),
        ],
        lambda: [fig18.run_tail_latency(duration=8.0)],
    ),
    "fig19": (
        "LLM/MoA TTFT",
        lambda: [fig19.run_input_lengths(), fig19.run_models_tp()],
        lambda: [fig19.run_input_lengths(lengths=(2048, 4096))],
    ),
    "fig20": (
        "no-NVLink latency + system overheads",
        lambda: [
            fig20.run_a10_latency(),
            fig20.run_cpu_overhead(),
            fig20.run_gpu_memory_overhead(),
        ],
        lambda: [fig20.run_a10_latency(sizes_mb=(64,), trials=2)],
    ),
    "ablations": (
        "chunk/batch/placement sweeps (beyond the paper)",
        lambda: [
            ablations.run_chunk_size_sweep(),
            ablations.run_batch_size_sweep(),
            ablations.run_placement_sweep(),
        ],
        lambda: [ablations.run_chunk_size_sweep(chunk_sizes_mb=(1, 2, 8))],
    ),
}


def _cmd_list(_args) -> int:
    from repro.dataplane import PLANES
    from repro.topology.node import _SPECS
    from repro.workflow import WORKLOADS

    print("experiments:")
    for name, (description, _full, _quick) in EXPERIMENTS.items():
        print(f"  {name:<10} {description}")
    print("\ndata planes:   " + ", ".join(sorted(PLANES)))
    print("workloads:     " + ", ".join(sorted(WORKLOADS)) + ", moa (repro.llm)")
    print("topologies:    " + ", ".join(sorted(_SPECS)))
    return 0


def _cmd_run(args) -> int:
    names = (
        list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(EXPERIMENTS)} or 'all'",
              file=sys.stderr)
        return 2
    for name in names:
        _description, full, quick = EXPERIMENTS[name]
        tables = quick() if args.quick else full()
        for index, table in enumerate(tables):
            text = render(table, args.format)
            print(text)
            print()
            if args.out:
                os.makedirs(args.out, exist_ok=True)
                ext = "txt" if args.format == "table" else args.format
                path = os.path.join(args.out, f"{name}_{index}.{ext}")
                with open(path, "w") as handle:
                    handle.write(text + "\n")
    return 0


def _cmd_topo(args) -> int:
    from repro.topology import NodeTopology, node_spec

    spec = node_spec(args.preset)
    node = NodeTopology(spec, 0)
    print(f"{spec.name}: {spec.num_gpus} GPUs x "
          f"{spec.gpu_memory / GB:.0f} GB")
    print(f"  PCIe: {spec.pcie_bandwidth / GB:.0f} GB/s per link, "
          f"switch groups {spec.switch_groups}")
    print(f"  NICs: {len(node.nics)} x {spec.nic_bandwidth / GB:.1f} GB/s")
    if node.has_nvswitch:
        print(f"  NVSwitch: {spec.nvswitch_bandwidth / GB:.0f} GB/s per port")
    elif node.has_nvlink:
        pairs = [(a, b) for a in range(spec.num_gpus)
                 for b in range(a + 1, spec.num_gpus)]
        linked = [(a, b) for a, b in pairs if node.nvlink_capacity(a, b) > 0]
        print(f"  NVLink mesh: {len(linked)}/{len(pairs)} pairs linked")
        for a, b in linked:
            print(f"    g{a}-g{b}: {node.nvlink_capacity(a, b) / GB:.0f} GB/s")
    else:
        print("  no NVLink (PCIe peer-to-peer only)")
    return 0


def _cmd_workloads(_args) -> int:
    from repro.workflow import WORKLOADS, get_workload

    for name in WORKLOADS:
        spec = get_workload(name)
        workflow = spec.workflow
        print(f"{name}: {spec.description}")
        print(f"  stages: {len(workflow)} "
              f"({len(workflow.gpu_stages())} GPU, "
              f"{len(workflow.cpu_stages())} CPU), "
              f"edges: {len(workflow.edges)}")
        print(f"  input: {spec.input_per_item / (1024 * 1024):.1f} MB/item, "
              f"default batch {spec.default_batch}")
    return 0


def _cmd_trace(args) -> int:
    import json

    from repro.report import metrics_summary_table
    from repro.telemetry import capture
    from repro.telemetry.profiler import (
        build_profiles,
        critical_path_trace_events,
    )

    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment: {args.experiment}", file=sys.stderr)
        print(f"choose from: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    _description, full, quick = EXPERIMENTS[args.experiment]
    if args.stream:
        return _cmd_trace_stream(args, full, quick)
    with capture() as session:
        tables = quick() if args.quick else full()
    out_dir = os.path.dirname(args.out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    doc = session.export_chrome_trace()
    # Dedicated critical-path track: the gating chain of every request
    # as its own pid, one tid per request.
    critical = critical_path_trace_events(
        build_profiles(session.events), multi_run=session.run_count > 1
    )
    doc["traceEvents"].extend(critical)
    with open(args.out, "w") as handle:
        json.dump(doc, handle)
    print(f"wrote {args.out}: {len(doc['traceEvents'])} trace events "
          f"({len(critical)} critical-path) "
          f"from {session.run_count} run(s) "
          f"(open in ui.perfetto.dev or chrome://tracing)")
    print()
    print(render(metrics_summary_table(session.metrics), args.format))
    if not args.quiet:
        for table in tables:
            print()
            print(render(table, args.format))
    return 0


def _cmd_trace_stream(args, full, quick) -> int:
    """``repro trace --stream``: spool the trace to disk incrementally.

    Events never accumulate in memory — a
    :class:`~repro.telemetry.ChromeStreamingSink` writes each one to
    the output file as it is published, so arbitrarily long runs trace
    in bounded RSS.  The profiler's critical-path track needs the full
    in-memory event list and is skipped in this mode.
    """
    from repro.report import metrics_summary_table
    from repro.telemetry import ChromeStreamingSink, capture

    out_dir = os.path.dirname(args.out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    sink = ChromeStreamingSink(args.out)
    with capture(sinks=[sink]) as session:
        tables = quick() if args.quick else full()
    print(f"wrote {args.out}: {sink.records_written} trace events "
          f"streamed from {session.run_count} run(s), "
          f"{sink.bytes_written} bytes "
          f"(open in ui.perfetto.dev or chrome://tracing; "
          f"critical-path track unavailable in --stream mode)")
    print()
    print(render(metrics_summary_table(session.metrics), args.format))
    if not args.quiet:
        for table in tables:
            print()
            print(render(table, args.format))
    return 0


def _cmd_profile(args) -> int:
    import json

    from repro.telemetry import capture
    from repro.telemetry.profiler import (
        breakdown_table,
        build_profiles,
        profile_document,
    )

    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment: {args.experiment}", file=sys.stderr)
        print(f"choose from: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    _description, full, quick = EXPERIMENTS[args.experiment]
    with capture() as session:
        tables = quick() if args.quick else full()
    builders = build_profiles(session.events)
    document = profile_document(builders, experiment=args.experiment)
    out_dir = os.path.dirname(args.out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(document, handle, indent=2)
    profiled = sum(len(run["requests"]) for run in document["runs"])
    inexact = sum(
        1
        for run in document["runs"]
        for request in run["requests"]
        if not request["exact"]
    )
    print(f"wrote {args.out}: {profiled} request(s) profiled across "
          f"{len(document['runs'])} run(s), "
          f"{profiled - inexact}/{profiled} with exact blame tiling")
    for table in breakdown_table(document):
        print()
        print(render(table, args.format))
    if not args.quiet:
        for table in tables:
            print()
            print(render(table, args.format))
    return 0 if inexact == 0 else 1


def _bench_history(args, suite: str, document: dict, out: str) -> int:
    """Shared bench post-processing: history append + optional compare.

    Appends one dated record per run to ``BENCH_history.jsonl`` (next
    to the suite's ``--out`` file unless ``--history`` overrides),
    then — with ``--compare`` — diffs against the most recent
    comparable record from *before* this run.  Returns the command's
    exit code: 1 when a regression beyond ``--tolerance`` was flagged.
    """
    from repro.bench.history import (
        HISTORY_FILENAME,
        append_record,
        compare_records,
        format_compare,
        latest_comparable,
        load_history,
        make_record,
    )

    if args.no_history and not args.compare:
        return 0
    history_path = args.history
    if not history_path:
        history_path = os.path.join(
            os.path.dirname(out) or ".", HISTORY_FILENAME
        )
    record = make_record(suite, document)
    history = load_history(history_path)
    if not args.no_history:
        append_record(record, history_path)
        print(f"appended {suite} record to {history_path} "
              f"({len(history) + 1} records)")
    if not args.compare:
        return 0
    previous = latest_comparable(history, record)
    result = compare_records(record, previous, tolerance=args.tolerance)
    print()
    print(format_compare(result))
    return 1 if result["regressions"] else 0


def _cmd_bench(args) -> int:
    from repro.bench import format_summary, run_benchmarks, write_results
    from repro.net.network import ALLOCATORS

    if args.suite == "platform":
        return _cmd_bench_platform(args)
    if args.suite == "telemetry":
        return _cmd_bench_telemetry(args)
    if args.suite == "routing":
        return _cmd_bench_routing(args)
    if args.suite == "endtoend":
        return _cmd_bench_endtoend(args)
    allocators = args.allocators.split(",") if args.allocators else None
    if allocators:
        unknown = [a for a in allocators if a not in ALLOCATORS]
        if unknown:
            print(f"unknown allocator(s): {', '.join(unknown)}",
                  file=sys.stderr)
            print(f"choose from: {', '.join(ALLOCATORS)}", file=sys.stderr)
            return 2
    try:
        document = run_benchmarks(
            quick=args.quick,
            names=args.benchmarks or None,
            allocators=allocators or ("incremental", "legacy"),
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(format_summary(document))
    if args.out:
        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        write_results(document, args.out)
        print(f"\nwrote {args.out}")
    return _bench_history(args, "net", document, args.out or "BENCH_net.json")


def _cmd_bench_platform(args) -> int:
    from repro.bench import (
        format_platform_summary,
        run_platform_benchmarks,
        write_results,
    )

    if args.allocators:
        print("--allocators applies to the net suite only", file=sys.stderr)
        return 2
    try:
        document = run_platform_benchmarks(
            quick=args.quick,
            names=args.benchmarks or None,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(format_platform_summary(document))
    out = args.out
    if out == "BENCH_net.json":  # suite-specific default
        out = "BENCH_platform.json"
    if out:
        out_dir = os.path.dirname(out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        write_results(document, out)
        print(f"\nwrote {out}")
    return _bench_history(args, "platform", document,
                          out or "BENCH_platform.json")


def _cmd_bench_telemetry(args) -> int:
    from repro.bench import (
        format_telemetry_summary,
        run_telemetry_benchmarks,
        write_results,
    )

    if args.allocators:
        print("--allocators applies to the net suite only", file=sys.stderr)
        return 2
    try:
        document = run_telemetry_benchmarks(
            quick=args.quick,
            names=args.benchmarks or None,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(format_telemetry_summary(document))
    out = args.out
    if out == "BENCH_net.json":  # suite-specific default
        out = "BENCH_telemetry.json"
    if out:
        out_dir = os.path.dirname(out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        write_results(document, out)
        print(f"\nwrote {out}")
    return _bench_history(args, "telemetry", document,
                          out or "BENCH_telemetry.json")


def _cmd_bench_routing(args) -> int:
    from repro.bench import (
        format_routing_summary,
        run_routing_benchmarks,
        write_results,
    )

    if args.allocators:
        print("--allocators applies to the net suite only", file=sys.stderr)
        return 2
    try:
        document = run_routing_benchmarks(
            quick=args.quick,
            names=args.benchmarks or None,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(format_routing_summary(document))
    out = args.out
    if out == "BENCH_net.json":  # suite-specific default
        out = "BENCH_routing.json"
    if out:
        out_dir = os.path.dirname(out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        write_results(document, out)
        print(f"\nwrote {out}")
    return _bench_history(args, "routing", document,
                          out or "BENCH_routing.json")


def _cmd_bench_endtoend(args) -> int:
    from repro.bench import (
        format_endtoend_summary,
        run_endtoend_benchmarks,
        write_results,
    )

    if args.allocators:
        print("--allocators applies to the net suite only", file=sys.stderr)
        return 2
    try:
        document = run_endtoend_benchmarks(
            quick=args.quick,
            names=args.benchmarks or None,
            heartbeat=args.heartbeat,
            spool_dir=args.spool_dir,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(format_endtoend_summary(document))
    out = args.out
    if out == "BENCH_net.json":  # suite-specific default
        out = "BENCH_endtoend.json"
    if out:
        out_dir = os.path.dirname(out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        write_results(document, out)
        print(f"\nwrote {out}")
    return _bench_history(args, "endtoend", document,
                          out or "BENCH_endtoend.json")


def _cmd_health(args) -> int:
    """``repro health``: run an experiment, report SLO + entity health.

    The experiment runs with a JSONL event spool attached; the health
    document is built **from the spool**, never from live simulator
    state, so ``repro health --replay <spool>`` on the same file
    reproduces the identical verdicts (the bit-identical contract the
    acceptance tests pin).
    """
    import json

    from repro.telemetry import JsonlEventSink, capture
    from repro.telemetry.health import (
        build_health,
        fold_runs,
        format_dashboard,
        health_trace_events,
    )
    from repro.telemetry.slo import default_specs

    specs = default_specs(
        latency_s=args.latency_slo_ms / 1000.0,
        ttft_s=args.ttft_slo_ms / 1000.0,
        data_share_max=args.data_share_max,
        objective=args.objective,
        window=args.window,
    )
    out_dir = os.path.dirname(args.out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    if args.replay:
        spool = args.replay
        tables = []
    else:
        if args.experiment not in EXPERIMENTS:
            print(f"unknown experiment: {args.experiment}", file=sys.stderr)
            print(f"choose from: {', '.join(EXPERIMENTS)}", file=sys.stderr)
            return 2
        _description, full, quick = EXPERIMENTS[args.experiment]
        spool = args.spool
        if not spool:
            spool = os.path.join(out_dir or ".", "health_events.jsonl")
        spool_dir = os.path.dirname(spool)
        if spool_dir:
            os.makedirs(spool_dir, exist_ok=True)
        with capture(sinks=[JsonlEventSink(spool)]):
            tables = quick() if args.quick else full()
    state = fold_runs(spool, specs)
    health = build_health(spool, specs, state=state)
    with open(args.out, "w") as handle:
        json.dump(health, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if args.trace:
        _stores, boards, _planes = state
        records = health_trace_events(boards, multi_run=len(boards) > 1)
        with open(args.trace, "w") as handle:
            json.dump({"traceEvents": records, "displayTimeUnit": "ms"},
                      handle)
        print(f"wrote {args.trace}: {len(records)} SLO counter records")
    print(format_dashboard(health))
    print()
    print(f"wrote {args.out} (spool: {spool})")
    if not args.quiet:
        for table in tables:
            print()
            print(render(table, args.format))
    if args.strict and health["overall"] != "ok":
        return 1
    return 0


def _cmd_validate(_args) -> int:
    from repro.validate import run_scorecard

    card = run_scorecard()
    print(card.format())
    return 0 if card.passed == card.total else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GROUTER reproduction: run paper experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments, planes, workloads")

    run = sub.add_parser("run", help="run an experiment (or 'all')")
    run.add_argument("experiment")
    run.add_argument("--quick", action="store_true",
                     help="scaled-down parameters")
    run.add_argument("--format", choices=FORMATS, default="table")
    run.add_argument("--out", help="directory to write results into")

    topo = sub.add_parser("topo", help="describe a topology preset")
    topo.add_argument("preset")

    trace = sub.add_parser(
        "trace",
        help="run an experiment with telemetry; export a Perfetto trace",
    )
    trace.add_argument("experiment")
    trace.add_argument("--quick", action="store_true",
                       help="scaled-down parameters")
    trace.add_argument("--out", default="trace.json",
                       help="trace file to write (Chrome trace_event JSON)")
    trace.add_argument("--format", choices=FORMATS, default="table")
    trace.add_argument("--quiet", action="store_true",
                       help="skip the experiment's own result tables")
    trace.add_argument("--stream", action="store_true",
                       help="spool trace events to --out incrementally "
                            "(bounded memory; no critical-path track)")

    profile = sub.add_parser(
        "profile",
        help="run an experiment with the causal profiler; export "
             "profile.json with per-request critical-path blame",
    )
    profile.add_argument("experiment")
    profile.add_argument("--quick", action="store_true",
                         help="scaled-down parameters")
    profile.add_argument("--out", default="profile.json",
                         help="profile file to write (default: profile.json)")
    profile.add_argument("--format", choices=FORMATS, default="table")
    profile.add_argument("--quiet", action="store_true",
                         help="skip the experiment's own result tables")

    health = sub.add_parser(
        "health",
        help="run an experiment with SLO + entity health tracking; "
             "write health.json and an ASCII dashboard",
    )
    health.add_argument(
        "experiment", nargs="?", default="fig14",
        help="experiment to run (default: fig14; ignored with --replay)",
    )
    health.add_argument("--quick", action="store_true",
                        help="scaled-down parameters")
    health.add_argument("--out", default="health.json",
                        help="health document to write (default: "
                             "health.json)")
    health.add_argument("--spool",
                        help="JSONL event spool path (default: "
                             "health_events.jsonl next to --out)")
    health.add_argument("--replay", metavar="SPOOL",
                        help="skip the run; rebuild health from an "
                             "existing JSONL spool")
    health.add_argument("--trace",
                        help="also write SLO burn-rate Perfetto counter "
                             "tracks to this trace file")
    health.add_argument("--latency-slo-ms", type=float, default=5000.0,
                        help="per-request latency threshold (default "
                             "5000 ms)")
    health.add_argument("--ttft-slo-ms", type=float, default=5000.0,
                        help="time-to-first-compute threshold (default "
                             "5000 ms)")
    health.add_argument("--data-share-max", type=float, default=0.9,
                        help="data-passing share ceiling per request "
                             "(default 0.9)")
    health.add_argument("--objective", type=float, default=0.95,
                        help="good fraction each SLO must hold "
                             "(default 0.95)")
    health.add_argument("--window", type=float, default=5.0,
                        help="rolling SLO window in sim seconds "
                             "(default 5.0)")
    health.add_argument("--strict", action="store_true",
                        help="exit 1 unless the overall verdict is ok")
    health.add_argument("--format", choices=FORMATS, default="table")
    health.add_argument("--quiet", action="store_true",
                        help="skip the experiment's own result tables")

    sub.add_parser("workloads", help="describe the workflow suite")

    bench = sub.add_parser(
        "bench",
        help="run performance microbenchmarks (see benchmarks/perf/)",
    )
    bench.add_argument(
        "benchmarks", nargs="*",
        help="benchmark names to run (default: all in the suite)",
    )
    bench.add_argument(
        "--suite",
        choices=("net", "platform", "telemetry", "routing", "endtoend"),
        default="net",
        help="benchmark suite: network engine (default), the "
             "request-lifecycle platform, telemetry fan-out, route "
             "decisions, or the end-to-end streaming macrobenchmark",
    )
    bench.add_argument("--quick", action="store_true",
                       help="scaled-down parameters for CI smoke runs")
    bench.add_argument("--out", default="BENCH_net.json",
                       help="JSON results file (default: BENCH_net.json, "
                            "or BENCH_<suite>.json for the other suites)")
    bench.add_argument(
        "--allocators",
        help="comma-separated allocator modes "
             "(default: incremental,legacy)",
    )
    bench.add_argument(
        "--heartbeat", type=float, default=0.0,
        help="endtoend suite: print a live progress line every N wall "
             "seconds (0 disables)",
    )
    bench.add_argument(
        "--spool-dir",
        help="endtoend suite: keep spooled telemetry under this "
             "directory instead of a deleted temp dir",
    )
    bench.add_argument(
        "--history",
        help="bench trajectory file to append this run to (default: "
             "BENCH_history.jsonl next to --out)",
    )
    bench.add_argument(
        "--no-history", action="store_true",
        help="skip appending this run to the bench trajectory",
    )
    bench.add_argument(
        "--compare", action="store_true",
        help="diff against the most recent comparable history record; "
             "exit 1 on a regression beyond --tolerance",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.15,
        help="relative noise tolerance for --compare (default 0.15)",
    )

    sub.add_parser(
        "validate",
        help="run the claim-by-claim reproduction scorecard (slow)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "topo": _cmd_topo,
        "trace": _cmd_trace,
        "profile": _cmd_profile,
        "health": _cmd_health,
        "workloads": _cmd_workloads,
        "bench": _cmd_bench,
        "validate": _cmd_validate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
