"""INFless+ — the host-centric baseline data plane (paper §2.2).

All intermediate data lives in host-side shared-memory storage.  Every
gFn-gFn exchange therefore costs two PCIe copies (GPU -> host -> GPU),
and cross-node exchanges additionally cross the network host-to-host.
cFn-cFn exchanges through shared memory are nearly free, which is why
the paper reports them as negligible.
"""

from __future__ import annotations

from repro.dataplane.base import (
    CAT_CFN_CFN,
    CAT_GFN_HOST,
    SHM_ACCESS_LATENCY,
    DataPlane,
)
from repro.functions.instance import FnContext
from repro.storage.objects import DataRef

CAT_HOST_HOST = "host-host"


class HostCentricPlane(DataPlane):
    """Host-memory storage with direct (single-link) PCIe copies."""

    name = "infless+"

    def _put(self, ctx: FnContext, size: float, expected_consumers: int,
             priority: float):
        obj = self._new_object(ctx, size, expected_consumers, priority)
        if ctx.is_gpu:
            # Device-to-host copy over the local PCIe uplink.
            path = self._direct_host_path(ctx.node, ctx.gpu, "to_host")
            yield from self._run_transfer(
                [path],
                size,
                CAT_GFN_HOST,
                src=ctx.device_id,
                dst=ctx.node.host.device_id,
                pinned_node=ctx.node.node_id,
                owner=ctx.request_id,
            )
        else:
            # cFn output is already in host memory (shared-memory map).
            yield self.env.timeout(SHM_ACCESS_LATENCY)
        self._store_on_host(obj, ctx.node.node_id)
        self.catalog.register(obj, ctx.node.node_id)
        return obj.to_ref()

    def _get(self, ctx: FnContext, ref: DataRef):
        started = self.env.now
        node_id, obj = yield from self._lookup(ctx, ref)
        src_node = self.cluster.node(node_id)

        if node_id != ctx.node.node_id:
            # Pull the object host-to-host over the NIC, then serve it
            # from the local host store.
            path = self._host_to_host_path(src_node, ctx.node)
            yield from self._run_transfer(
                [path],
                obj.size,
                CAT_HOST_HOST,
                src=src_node.host.device_id,
                dst=ctx.node.host.device_id,
                owner=ctx.request_id,
            )
            self.host_stores[node_id].remove(obj)
            self._store_on_host(obj, ctx.node.node_id)
            self.catalog.move(obj.object_id, ctx.node.node_id)

        if ctx.is_gpu:
            path = self._direct_host_path(ctx.node, ctx.gpu, "from_host")
            yield from self._run_transfer(
                [path],
                obj.size,
                CAT_GFN_HOST,
                src=ctx.node.host.device_id,
                dst=ctx.device_id,
                pinned_node=ctx.node.node_id,
                owner=ctx.request_id,
            )
            category = CAT_GFN_HOST
        else:
            yield self.env.timeout(SHM_ACCESS_LATENCY)
            category = CAT_CFN_CFN
        source = obj.host_replicas()[0].device_id
        self._note_consumed(ctx, obj)
        return self._result(ref, started, source, category)
