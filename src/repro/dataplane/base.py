"""Data-plane base: the unified Put/Get API and shared runtime.

Every data plane (GROUTER and the three baselines) exposes the same
two-call interface the paper describes in §4.2.1:

- ``put(ctx, size)``    — a function stores intermediate data, getting a
  globally unique :class:`~repro.storage.DataRef` back.
- ``get(ctx, ref)``     — a downstream function materializes the data on
  its own device; the call completes when the last byte arrives.

The planes differ *only* in where bytes live and which paths move them;
the shared runtime (per-GPU pools and stores, host stores, catalog,
access control, flow network, transfer engine, metrics) lives here.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional, Protocol

from repro.common.config import net_routing_mode
from repro.common.errors import StorageError
from repro.common.ids import IdGenerator
from repro.common.units import MB, US
from repro.functions.instance import FnContext
from repro.memory.device import AllocationCostModel, DeviceMemory
from repro.memory.pool import MemoryPool
from repro.net.network import FlowNetwork
from repro.net.transfer import Path, TransferEngine
from repro.sim.core import Environment, Process
from repro.sim.resources import Container
from repro.storage.catalog import AccessController, DataCatalog
from repro.storage.objects import DataObject, DataRef
from repro.storage.stores import GpuStore, HostStore
from repro.telemetry.events import PlaneInfo, RouteSelected, StoreEvict, StoreGet
from repro.topology.cluster import ClusterTopology
from repro.topology.routebook import cluster_route_book, route_book
from repro.workflow.dag import Workflow

# Control-plane cost floors.
LOOKUP_LATENCY = 3 * US  # local mapping-table lookup
GLOBAL_LOOKUP_LATENCY = 50 * US  # fall back to the global table
IPC_MAP_LATENCY = 10 * US  # CUDA-IPC handle open + map
SHM_ACCESS_LATENCY = 30 * US  # host shared-memory attach (cFn-cFn)

# Default pinned staging-ring size per node for PCIe transfers.
PINNED_RING_BYTES = 64 * MB

# Transfer categories used in metrics (matches paper Fig. 3 breakdown).
CAT_GFN_GFN_INTRA = "gfn-gfn-intra"
CAT_GFN_GFN_CROSS = "gfn-gfn-cross"
CAT_GFN_HOST = "gfn-host"
CAT_CFN_CFN = "cfn-cfn"
CAT_MIGRATION = "migration"
CAT_RESTORE = "restore"


class QueueOracle(Protocol):
    """Answers "how close is this object's request to the queue head?".

    The platform's pending-request index implements this; planes that
    rank eviction victims by request position (GROUTER §4.4.2 evicts
    data whose consumer is furthest from execution) consult it through
    :attr:`DataPlane.queue_oracle`.  ``None`` means "not pending".
    """

    def position_of(self, object_id: str) -> Optional[int]:
        ...


@dataclass
class TransferRecord:
    """One completed data movement, for experiment accounting."""

    category: str
    size: float
    started_at: float
    finished_at: float
    src: str
    dst: str
    copies: int = 1

    @property
    def latency(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class PlaneMetrics:
    """Counters a data plane accumulates while serving Put/Get.

    ``records`` holds one :class:`TransferRecord` per completed
    movement for experiment accounting (latency percentiles by
    category).  That list is the one per-request structure a plane
    grows without bound, so streaming runs
    (``ServerlessPlatform(keep_results=False)``) set
    ``keep_records=False``: counters and byte totals stay exact, the
    per-transfer records are dropped (counted in ``dropped_records``),
    and :meth:`latencies` raises rather than silently returning a
    truncated distribution.
    """

    puts: int = 0
    gets: int = 0
    copies: int = 0
    control_ops: int = 0
    admission_spills: int = 0
    keep_records: bool = True
    dropped_records: int = 0
    records: list[TransferRecord] = field(default_factory=list)
    _category_bytes: dict = field(default_factory=dict)

    def record(self, record: TransferRecord) -> None:
        if self.keep_records:
            self.records.append(record)
        else:
            self.dropped_records += 1
        self.copies += record.copies
        self._category_bytes[record.category] = (
            self._category_bytes.get(record.category, 0.0) + record.size
        )

    def latencies(self, category: Optional[str] = None) -> list[float]:
        if self.dropped_records:
            raise RuntimeError(
                "per-transfer records were dropped (keep_records=False); "
                "latency distributions are unavailable on streaming runs"
            )
        return [
            r.latency
            for r in self.records
            if category is None or r.category == category
        ]

    def bytes_moved(self, category: Optional[str] = None) -> float:
        if not self.keep_records:
            if category is None:
                return sum(self._category_bytes.values())
            return self._category_bytes.get(category, 0.0)
        return sum(
            r.size
            for r in self.records
            if category is None or r.category == category
        )


@dataclass
class GetResult:
    """Outcome of a completed ``get``."""

    ref: DataRef
    latency: float
    source_device: str
    category: str


class DataPlane(abc.ABC):
    """Abstract data plane over a cluster; see module docstring."""

    name = "abstract"

    def __init__(
        self,
        env: Environment,
        cluster: ClusterTopology,
        network_policy: str = "maxmin",
        chunked: bool = False,
        cost_model: Optional[AllocationCostModel] = None,
        record_timelines: bool = False,
        storage_limit_fraction: Optional[float] = None,
        pool_prewarm: float = 300 * MB,
        routing: Optional[str] = None,
    ) -> None:
        self.env = env
        self.cluster = cluster
        # Route-decision mode (kwarg > REPRO_NET_ROUTING > "book"):
        # "book" reads interned path tables off the cluster's route
        # book; "enumerate" re-derives every path per decision.
        self.routing = net_routing_mode(routing)
        self.route_book = (
            cluster_route_book(cluster) if self.routing == "book" else None
        )
        self.network = FlowNetwork(env, policy=network_policy)
        self.engine = TransferEngine(env, self.network)
        self.chunked = chunked
        self.cost_model = cost_model if cost_model is not None else AllocationCostModel()
        self.storage_limit_fraction = storage_limit_fraction
        self.ids = IdGenerator()
        self.acl = AccessController()
        self.catalog = DataCatalog([node.node_id for node in cluster.nodes])
        self.metrics = PlaneMetrics()
        self.queue_oracle: Optional[QueueOracle] = None

        self.device_memory: dict[str, DeviceMemory] = {}
        self.pools: dict[str, MemoryPool] = {}
        self.gpu_stores: dict[str, GpuStore] = {}
        self.host_memory: dict[str, DeviceMemory] = {}
        self.host_stores: dict[str, HostStore] = {}
        self.pinned: dict[str, Container] = {}
        for node in cluster.nodes:
            self.host_memory[node.node_id] = DeviceMemory(
                env,
                node.host.device_id,
                node.host.capacity,
                record_timeline=record_timelines,
            )
            self.host_stores[node.node_id] = HostStore(
                env, node.node_id, self.host_memory[node.node_id]
            )
            self.pinned[node.node_id] = Container(
                env, capacity=PINNED_RING_BYTES, init=PINNED_RING_BYTES
            )
            for gpu in node.gpus:
                memory = DeviceMemory(
                    env,
                    gpu.device_id,
                    gpu.memory_capacity,
                    record_timeline=record_timelines,
                )
                self.device_memory[gpu.device_id] = memory
                pool = MemoryPool(env, memory, cost_model=self.cost_model)
                self.pools[gpu.device_id] = pool
                self.gpu_stores[gpu.device_id] = GpuStore(
                    env, gpu.device_id, pool
                )
                # Deploy-time pre-reservation (§4.4.1): both the
                # baselines' static pools and GROUTER's idle floor are
                # in place before the first request arrives.
                pool.prewarm(min(pool_prewarm, 0.25 * gpu.memory_capacity))

        bus = env.telemetry
        if bus is not None:
            bus.publish(PlaneInfo(t=env.now, plane=self.name))

    # -- public API ----------------------------------------------------------
    def attach_queue_oracle(self, oracle: Optional[QueueOracle]) -> None:
        """Wire the platform's pending-request index into this plane.

        Planes that never rank eviction victims simply ignore the
        oracle; GROUTER consults it when choosing what to spill.
        """
        self.queue_oracle = oracle

    def register_workflow(self, workflow: Workflow, workflow_id: str) -> None:
        """Register a workflow's functions for access control."""
        self.acl.register_workflow(workflow_id, workflow.function_names())

    def put(
        self,
        ctx: FnContext,
        size: float,
        expected_consumers: int = 1,
        priority: float = 0.0,
    ) -> Process:
        """Store *size* bytes produced by *ctx*; yields a DataRef."""
        if size <= 0:
            raise StorageError(f"put size must be positive, got {size}")
        self.metrics.puts += 1
        return self.env.process(
            self._put(ctx, float(size), expected_consumers, priority)
        )

    def get(self, ctx: FnContext, ref: DataRef) -> Process:
        """Materialize *ref* on *ctx*'s device; yields a GetResult."""
        self.metrics.gets += 1
        if self.env.telemetry is None:
            return self.env.process(self._get(ctx, ref))
        return self.env.process(self._get_published(ctx, ref))

    def _get_published(self, ctx: FnContext, ref: DataRef):
        """Generator: run ``_get`` and publish its outcome on the bus."""
        result: GetResult = yield from self._get(ctx, ref)
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(StoreGet(
                t=self.env.now,
                object_id=ref.object_id,
                device_id=ctx.device_id,
                size=ref.size,
                category=result.category,
                latency=result.latency,
            ))
        return result

    def delete(self, ref: DataRef) -> None:
        """Explicitly drop an object (normally automatic on consumption)."""
        _node_id, obj = self.catalog.lookup(
            ref.object_id, from_node=self.cluster.nodes[0].node_id
        )
        self._destroy(obj)

    def ingress_put(
        self,
        node_id: str,
        size: float,
        workflow_id: str,
        expected_consumers: int = 1,
    ) -> DataRef:
        """Register a request payload that arrived via I/O in host memory.

        Ingress is plane-independent: input bytes always land in the
        node's host store (the gFn-host interaction of §2.2), with no
        transfer cost at registration time.
        """
        if size <= 0:
            raise StorageError(f"ingress size must be positive, got {size}")
        obj = DataObject(
            object_id=self.ids.next("data"),
            size=float(size),
            workflow_id=workflow_id,
            producer="__ingress__",
            created_at=self.env.now,
            expected_consumers=expected_consumers,
        )
        self._store_on_host(obj, node_id)
        self.catalog.register(obj, node_id)
        return obj.to_ref()

    def release_claim(self, ref: DataRef) -> None:
        """Give up one expected consumption without reading the data.

        Used when a conditional branch is not taken: the object's
        refcount drops and it is destroyed once fully released.
        """
        if ref.object_id not in self.catalog:
            return
        _node_id, obj = self.catalog.lookup(
            ref.object_id, from_node=self.cluster.nodes[0].node_id
        )
        obj.consumed_count += 1
        if obj.fully_consumed:
            self._destroy(obj)

    # -- hooks implemented by concrete planes ----------------------------------
    @abc.abstractmethod
    def _put(self, ctx: FnContext, size: float, expected_consumers: int,
             priority: float):
        """Generator implementing Put; returns a DataRef."""

    @abc.abstractmethod
    def _get(self, ctx: FnContext, ref: DataRef):
        """Generator implementing Get; returns a GetResult."""

    # -- shared helpers ---------------------------------------------------------
    def _new_object(
        self,
        ctx: FnContext,
        size: float,
        expected_consumers: int,
        priority: float,
    ) -> DataObject:
        return DataObject(
            object_id=self.ids.next("data"),
            size=size,
            workflow_id=ctx.workflow_id,
            producer=ctx.function_name,
            created_at=self.env.now,
            priority=priority,
            expected_consumers=expected_consumers,
        )

    def _lookup(self, ctx: FnContext, ref: DataRef):
        """Authorize and resolve a ref; yields (node_id, object)."""
        self.acl.authorize(
            ctx.function_name, ctx.workflow_id, ref.workflow_id
        )
        node_id, obj = self.catalog.lookup(
            ref.object_id, from_node=ctx.node.node_id
        )
        self.metrics.control_ops += 1
        if node_id == ctx.node.node_id:
            yield self.env.timeout(LOOKUP_LATENCY)
        else:
            yield self.env.timeout(GLOBAL_LOOKUP_LATENCY)
        if obj.deleted:
            raise StorageError(f"{ref.object_id} was already deleted")
        obj.touch(self.env.now)
        return node_id, obj

    def _note_consumed(self, ctx: FnContext, obj: DataObject) -> None:
        """Count a consumption; destroy the object when fully consumed."""
        obj.consumed_count += 1
        if obj.fully_consumed:
            self._destroy(obj)

    def _destroy(self, obj: DataObject) -> None:
        if obj.deleted:
            return
        obj.deleted = True
        for device_id in list(obj.replicas):
            store = self.gpu_stores.get(device_id)
            if store is not None and store.has(obj.object_id):
                store.remove(obj)
                continue
            for host_store in self.host_stores.values():
                if host_store.device_id == device_id and host_store.has(
                    obj.object_id
                ):
                    host_store.remove(obj)
                    break
            else:
                obj.drop_replica(device_id)
        if obj.object_id in self.catalog:
            self.catalog.unregister(obj.object_id)

    # -- transfer helpers --------------------------------------------------------
    def _run_transfer(
        self,
        paths: list[Path],
        size: float,
        category: str,
        src: str,
        dst: str,
        copies: int = 1,
        min_rate: float = 0.0,
        slo_deadline: Optional[float] = None,
        chunked: Optional[bool] = None,
        pinned_node: Optional[str] = None,
        owner: str = "",
    ):
        """Generator: execute a transfer and record it in metrics."""
        started = self.env.now
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(RouteSelected(
                t=started,
                category=category,
                src=src,
                dst=dst,
                routes=tuple(
                    "->".join(path.devices()) for path in paths
                ),
            ))
        use_chunked = self.chunked if chunked is None else chunked
        pinned = self.pinned[pinned_node] if pinned_node is not None else None
        yield self.engine.transfer(
            paths,
            size,
            min_rate=min_rate,
            slo_deadline=slo_deadline,
            chunked=use_chunked,
            pinned_buffer=pinned,
            tag=category,
            owner=owner,
        )
        self.metrics.record(
            TransferRecord(
                category=category,
                size=size,
                started_at=started,
                finished_at=self.env.now,
                src=src,
                dst=dst,
                copies=copies,
            )
        )

    def _store_on_gpu(self, obj: DataObject, gpu_device_id: str):
        """Generator: hold obj bytes on a GPU store (pool alloc time)."""
        yield self.gpu_stores[gpu_device_id].store(obj)

    def _store_on_gpu_or_spill(
        self,
        obj: DataObject,
        gpu_device_id: str,
        policy,
        queue_oracle=None,
    ):
        """Generator: place obj on a GPU, evicting under pressure.

        Concurrent puts can race past a single capacity check, so the
        check-evict-allocate sequence retries; if the device stays full
        the object spills to host memory (forced eviction at admission,
        the Fig. 7(b) regime).  Returns the device id holding the bytes.
        """
        from repro.common.errors import AllocationError

        node = self.cluster.node_of_device(gpu_device_id)
        store = self.gpu_stores[gpu_device_id]
        for _attempt in range(3):
            yield from self._ensure_storage_capacity(
                gpu_device_id, obj.size, policy, queue_oracle
            )
            # The limit is a hard admission bound: if eviction could
            # not clear enough space (e.g. the object alone exceeds the
            # cap), the bytes go to host memory instead.
            limit = self.storage_limit(gpu_device_id)
            if store.resident_bytes + obj.size > limit + 1e-6:
                break
            try:
                yield store.store(obj)
                return gpu_device_id
            except AllocationError:
                continue
        self.metrics.admission_spills += 1
        self._store_on_host(obj, node.node_id)
        return node.host.device_id

    def _store_on_host(self, obj: DataObject, node_id: str) -> None:
        self.host_stores[node_id].store(obj)

    def _gpu_location_of(self, obj: DataObject) -> Optional[str]:
        replicas = obj.gpu_replicas()
        return replicas[0].device_id if replicas else None

    def _host_location_of(self, obj: DataObject) -> Optional[str]:
        replicas = obj.host_replicas()
        return replicas[0].device_id if replicas else None

    def _result(
        self, ref: DataRef, started: float, source: str, category: str
    ) -> GetResult:
        return GetResult(
            ref=ref,
            latency=self.env.now - started,
            source_device=source,
            category=category,
        )

    def _simple_gpu_to_gpu_path(self, src_gpu, dst_gpu) -> Path:
        """Single best path between two same-node GPUs: NVLink else PCIe."""
        node = self.cluster.node_of_device(src_gpu.device_id)
        if self.routing == "book":
            book = route_book(node)
            direct = book.nvlink_direct(src_gpu.index, dst_gpu.index)
            if direct is not None:
                return direct
            return book.gpu_p2p(src_gpu.index, dst_gpu.index)
        from repro.topology.paths import gpu_p2p_pcie_path, nvlink_direct_path

        direct = nvlink_direct_path(node, src_gpu, dst_gpu)
        if direct is not None:
            return direct
        return gpu_p2p_pcie_path(node, src_gpu, dst_gpu)

    def _direct_host_path(self, node, gpu, direction: str) -> Path:
        """The GPU's own uplink/downlink path to or from host memory."""
        if self.routing == "book":
            book = route_book(node)
            return (
                book.gpu_to_host(gpu.index)
                if direction == "to_host"
                else book.host_to_gpu(gpu.index)
            )
        from repro.topology.paths import gpu_to_host_path, host_to_gpu_path

        return (
            gpu_to_host_path(node, gpu)
            if direction == "to_host"
            else host_to_gpu_path(node, gpu)
        )

    def _host_to_host_path(self, src_node, dst_node) -> Path:
        """Host-memory to host-memory path over each node's first NIC."""
        if self.routing == "book":
            return self.route_book.host_to_host(
                src_node.node_id, dst_node.node_id
            )
        from repro.topology.paths import host_to_host_path

        return host_to_host_path(self.cluster, src_node, dst_node)

    def _gdr_path(self, src_gpu, dst_gpu) -> Path:
        """Default single-lane GPUDirect-RDMA path between two nodes."""
        if self.routing == "book":
            return self.route_book.gdr_path(
                src_gpu.device_id, dst_gpu.device_id
            )
        from repro.topology.paths import cross_node_gdr_path

        return cross_node_gdr_path(self.cluster, src_gpu, dst_gpu)

    # -- storage capacity / eviction -----------------------------------------------
    def storage_limit(self, gpu_device_id: str) -> float:
        """Bytes GPU storage may occupy on this device.

        With ``storage_limit_fraction`` set the limit is that fraction
        of the memory not used by non-storage tenants (functions);
        otherwise storage may use everything left.
        """
        memory = self.device_memory[gpu_device_id]
        pool = self.pools[gpu_device_id]
        non_storage = memory.used - memory.used_by(pool.tag)
        available = memory.capacity - non_storage
        if self.storage_limit_fraction is not None:
            return self.storage_limit_fraction * available
        return available

    def _ensure_storage_capacity(
        self,
        gpu_device_id: str,
        incoming: float,
        policy,
        queue_oracle=None,
    ):
        """Generator: migrate victims to host until *incoming* bytes fit."""
        from repro.memory.eviction import EvictionCandidate

        store = self.gpu_stores[gpu_device_id]
        limit = self.storage_limit(gpu_device_id)
        projected = store.resident_bytes + incoming
        if projected <= limit:
            return
        needed = projected - limit
        candidates = []
        for obj in store.resident_objects():
            position = (
                queue_oracle.position_of(obj.object_id)
                if queue_oracle is not None
                else None
            )
            candidates.append(
                EvictionCandidate(
                    object_id=obj.object_id,
                    size=obj.size,
                    last_access=obj.last_access,
                    queue_position=position,
                )
            )
        victims = policy.select(candidates, needed)
        for victim in victims:
            obj = store.get_resident(victim.object_id)
            if obj is None:
                continue
            yield from self._migrate_to_host(gpu_device_id, obj)

    def _migrate_to_host(self, gpu_device_id: str, obj: DataObject):
        """Generator: move one object's bytes GPU -> host (forced evict)."""
        node = self.cluster.node_of_device(gpu_device_id)
        gpu = self.cluster.gpu(gpu_device_id)
        yield from self._run_transfer(
            [self._direct_host_path(node, gpu, "to_host")],
            obj.size,
            CAT_MIGRATION,
            src=gpu_device_id,
            dst=node.host.device_id,
            pinned_node=node.node_id,
        )
        # The object may have been consumed (and destroyed) while the
        # migration copy was in flight; only flip residency if it still
        # lives here.
        if obj.deleted or not self.gpu_stores[gpu_device_id].has(obj.object_id):
            return
        self.gpu_stores[gpu_device_id].remove(obj)
        self._store_on_host(obj, node.node_id)
        self._publish_evict(obj, gpu_device_id, node.host.device_id)

    def _publish_evict(
        self, obj: DataObject, src_device: str, dst_device: str
    ) -> None:
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(StoreEvict(
                t=self.env.now,
                object_id=obj.object_id,
                src_device=src_device,
                dst_device=dst_device,
                size=obj.size,
            ))

    # -- memory introspection ----------------------------------------------------
    def storage_bytes_on(self, gpu_device_id: str) -> float:
        return self.gpu_stores[gpu_device_id].resident_bytes

    def pool_reserved_on(self, gpu_device_id: str) -> float:
        return self.pools[gpu_device_id].reserved

    def total_pool_reserved(self) -> float:
        return sum(pool.reserved for pool in self.pools.values())

    def total_storage_bytes(self) -> float:
        return sum(
            store.resident_bytes for store in self.gpu_stores.values()
        )
