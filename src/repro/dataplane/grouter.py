"""GROUTER — the GPU-centric data plane (paper §4).

Four mechanisms, each independently switchable for the Fig. 16 ablation:

- ``unified`` (UF): locality-aware unified data passing — Put stores on
  the producer's own GPU (zero-copy) and Get transfers once, directly
  to the consumer.  Disabled, storage falls back to a random GPU like
  NVSHMEM+.
- ``harvesting`` (BH): fine-grained bandwidth harvesting — parallel
  PCIe/NIC transfers with SLO-gated rate control (``Rate_least``
  reservations, idle bandwidth to the tightest SLO).
- ``topology_aware`` (TA): route GPUs are picked by NVLink connectivity
  and PCIe-switch layout; parallel NVLink paths via Algorithm 1.
- ``elastic_storage`` (ES): histogram-scaled memory pools, queue-aware
  eviction, and proactive migration/restore.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.common.errors import AllocationError
from repro.common.units import MS
from repro.dataplane.base import (
    CAT_CFN_CFN,
    CAT_GFN_GFN_CROSS,
    CAT_GFN_GFN_INTRA,
    CAT_GFN_HOST,
    CAT_RESTORE,
    IPC_MAP_LATENCY,
    SHM_ACCESS_LATENCY,
    DataPlane,
    QueueOracle,
)
from repro.functions.instance import FnContext
from repro.memory.elastic import ElasticPoolManager
from repro.memory.eviction import make_policy
from repro.routing.harvest import (
    parallel_nic_paths,
    pcie_host_paths,
    select_pcie_routes,
)
from repro.routing.nvlink import select_parallel_nvlink_paths
from repro.storage.objects import DataObject, DataRef
from repro.topology.cluster import ClusterTopology
from repro.topology.devices import Gpu
from repro.topology.node import NodeTopology
from repro.topology.routebook import route_book

# Floor on SLO slack when deriving Rate_least, to avoid infinite rates.
MIN_SLACK = 1 * MS

# Proactive restore only targets data whose consumer is near the head
# of the pending-request queue; restoring deeper entries just thrashes.
RESTORE_QUEUE_WINDOW = 4


__all__ = ["GRouterPlane", "QueueOracle"]


class GRouterPlane(DataPlane):
    """The GPU-centric data plane with all four mechanisms."""

    name = "grouter"

    def __init__(
        self,
        env,
        cluster: ClusterTopology,
        unified: bool = True,
        harvesting: bool = True,
        topology_aware: bool = True,
        elastic_storage: bool = True,
        eviction_policy: str = "queue-aware",
        proactive_restore: bool = True,
        min_pool: Optional[float] = None,
        seed: int = 7,
        **kwargs,
    ):
        kwargs.setdefault(
            "network_policy", "slo_gated" if harvesting else "maxmin"
        )
        kwargs.setdefault("chunked", True)
        super().__init__(env, cluster, **kwargs)
        self.unified = unified
        self.harvesting = harvesting
        self.topology_aware = topology_aware
        self.elastic_storage = elastic_storage
        self.proactive_restore = proactive_restore
        self.eviction = make_policy(eviction_policy)
        self._rng = random.Random(seed)
        self._evicted_from: dict[str, str] = {}  # object_id -> gpu id
        self._restoring: set[str] = set()  # in-flight restores
        self.elastic_managers: dict[str, ElasticPoolManager] = {}
        if elastic_storage:
            for device_id, pool in self.pools.items():
                manager_kwargs = {}
                if min_pool is not None:
                    manager_kwargs["min_pool"] = min_pool
                manager = ElasticPoolManager(env, pool, **manager_kwargs)
                manager.start()
                self.elastic_managers[device_id] = manager

    # -- SLO-aware rate control (§4.3.2) ------------------------------------
    @property
    def _rate_control_on(self) -> bool:
        # Rate_least reservations belong to the SLO-gated scheduler;
        # GROUTER-BH (max-min sharing, Fig. 17's strawman) runs without
        # them even though parallel paths stay enabled.
        return self.harvesting and self.network.policy == "slo_gated"

    def _rate_least(self, ctx: FnContext, size: float) -> float:
        """Rate_least = data_size / (L_slo - L_infer), via the deadline."""
        if not self._rate_control_on or ctx.slo_deadline is None:
            return 0.0
        slack = max(ctx.slo_deadline - self.env.now, MIN_SLACK)
        return size / slack

    def _transfer_kwargs(self, ctx: FnContext, size: float) -> dict:
        return {
            "min_rate": self._rate_least(ctx, size),
            "slo_deadline": (
                ctx.slo_deadline if self._rate_control_on else None
            ),
            "owner": ctx.request_id,
        }

    # -- elastic-storage hooks --------------------------------------------------
    def _notify_arrival(self, ctx: FnContext) -> None:
        manager = self.elastic_managers.get(ctx.device_id)
        if manager is not None:
            manager.notify_arrival(ctx.function_name)

    def _notify_put(self, device_id: str, function_name: str,
                    size: float) -> None:
        manager = self.elastic_managers.get(device_id)
        if manager is not None:
            manager.notify_put(function_name, size)

    def _notify_consume(self, obj: DataObject) -> None:
        device = self._gpu_location_of(obj)
        if device is None:
            return
        manager = self.elastic_managers.get(device)
        if manager is not None:
            manager.notify_consume(obj.producer)

    # -- Put ----------------------------------------------------------------
    def _put(self, ctx: FnContext, size: float, expected_consumers: int,
             priority: float):
        obj = self._new_object(ctx, size, expected_consumers, priority)
        self._notify_arrival(ctx)
        if not ctx.is_gpu:
            # cFn output already sits in host memory.
            yield self.env.timeout(SHM_ACCESS_LATENCY)
            self._store_on_host(obj, ctx.node.node_id)
            self.catalog.register(obj, ctx.node.node_id)
            return obj.to_ref()

        if self.unified:
            storage_device = ctx.device_id  # locality-aware: stay put
        else:
            storage_device = self._rng.choice(ctx.node.gpus).device_id
        placed = yield from self._store_on_gpu_or_spill(
            obj, storage_device, self.eviction, self.queue_oracle
        )
        if placed != storage_device:
            # Admission spill to host (severe memory pressure).
            yield from self._gpu_to_host_transfer(ctx, ctx.gpu, size)
        elif storage_device == ctx.device_id:
            yield self.env.timeout(IPC_MAP_LATENCY)  # zero-copy publish
        else:
            path = self._simple_gpu_to_gpu_path(
                ctx.gpu, self.cluster.gpu(storage_device)
            )
            yield from self._run_transfer(
                [path],
                size,
                CAT_GFN_GFN_INTRA,
                src=ctx.device_id,
                dst=storage_device,
                **self._transfer_kwargs(ctx, size),
            )
        if placed == storage_device:
            self._notify_put(storage_device, ctx.function_name, size)
        self.catalog.register(obj, ctx.node.node_id)
        return obj.to_ref()

    # -- Get ----------------------------------------------------------------
    def _get(self, ctx: FnContext, ref: DataRef):
        started = self.env.now
        node_id, obj = yield from self._lookup(ctx, ref)
        gpu_device = self._gpu_location_of(obj)

        if gpu_device is None:
            source, category = yield from self._get_from_host(
                ctx, obj, node_id
            )
        elif not ctx.is_gpu:
            yield from self._gpu_to_host_transfer(
                ctx, self.cluster.gpu(gpu_device), obj.size
            )
            source, category = gpu_device, CAT_GFN_HOST
        elif gpu_device == ctx.device_id:
            yield self.env.timeout(IPC_MAP_LATENCY)  # zero copy
            source, category = gpu_device, CAT_GFN_GFN_INTRA
        elif self.cluster.same_node(gpu_device, ctx.device_id):
            yield from self._intra_node_transfer(
                ctx, self.cluster.gpu(gpu_device), obj.size
            )
            source, category = gpu_device, CAT_GFN_GFN_INTRA
        else:
            yield from self._cross_node_transfer(
                ctx, self.cluster.gpu(gpu_device), obj.size
            )
            source, category = gpu_device, CAT_GFN_GFN_CROSS

        self._notify_consume(obj)
        self._note_consumed(ctx, obj)
        if self.elastic_storage and self.proactive_restore:
            self.env.process(self._restore_pass(ctx.node))
        return self._result(ref, started, source, category)

    # -- transfer patterns (§4.2.2 / §4.3.1) --------------------------------------
    def _host_paths(self, node: NodeTopology, gpu: Gpu, direction: str):
        if not self.harvesting:
            return [self._direct_host_path(node, gpu, direction)]
        routes = select_pcie_routes(
            node,
            gpu,
            topology_aware=self.topology_aware,
            network=self.network if self.topology_aware else None,
            routing=self.routing,
        )
        return pcie_host_paths(node, gpu, routes, direction, routing=self.routing)

    def _get_from_host(self, ctx: FnContext, obj: DataObject, node_id: str):
        """Serve an object whose bytes are in host memory."""
        src_node = self.cluster.node(node_id)
        if node_id != ctx.node.node_id:
            # Rare: host-resident data on another node (cFn output).
            yield from self._run_transfer(
                [self._host_to_host_path(src_node, ctx.node)],
                obj.size,
                "host-host",
                src=src_node.host.device_id,
                dst=ctx.node.host.device_id,
                owner=ctx.request_id,
            )
            # Concurrent gets of the same remote object both pay for the
            # wire transfer, but only the first to finish migrates the
            # replica; the loser would otherwise remove an object that
            # is no longer resident at the source.
            if self.host_stores[node_id].has(obj.object_id):
                self.host_stores[node_id].remove(obj)
                self._store_on_host(obj, ctx.node.node_id)
                self.catalog.move(obj.object_id, ctx.node.node_id)
        if not ctx.is_gpu:
            yield self.env.timeout(SHM_ACCESS_LATENCY)
            return ctx.node.host.device_id, CAT_CFN_CFN
        paths = self._host_paths(ctx.node, ctx.gpu, "from_host")
        yield from self._run_transfer(
            paths,
            obj.size,
            CAT_GFN_HOST,
            src=ctx.node.host.device_id,
            dst=ctx.device_id,
            pinned_node=ctx.node.node_id,
            **self._transfer_kwargs(ctx, obj.size),
        )
        return ctx.node.host.device_id, CAT_GFN_HOST

    def _gpu_to_host_transfer(self, ctx: FnContext, src_gpu: Gpu,
                              size: float):
        node = self.cluster.node_of_device(src_gpu.device_id)
        paths = self._host_paths(node, src_gpu, "to_host")
        yield from self._run_transfer(
            paths,
            size,
            CAT_GFN_HOST,
            src=src_gpu.device_id,
            dst=node.host.device_id,
            pinned_node=node.node_id,
            **self._transfer_kwargs(ctx, size),
        )

    def _intra_node_transfer(self, ctx: FnContext, src_gpu: Gpu,
                             size: float):
        node = ctx.node
        if self.topology_aware:
            selection = select_parallel_nvlink_paths(
                node, self.network, src_gpu, ctx.gpu, routing=self.routing
            )
            paths = selection.paths
        else:
            paths = []
            if self.routing == "book":
                direct = route_book(node).nvlink_direct(
                    src_gpu.index, ctx.gpu.index
                )
            else:
                from repro.topology.paths import nvlink_direct_path

                direct = nvlink_direct_path(node, src_gpu, ctx.gpu)
            if direct is not None:
                paths = [direct]
        if not paths:
            if self.routing == "book":
                paths = [route_book(node).gpu_p2p(src_gpu.index, ctx.gpu.index)]
            else:
                from repro.topology.paths import gpu_p2p_pcie_path

                paths = [gpu_p2p_pcie_path(node, src_gpu, ctx.gpu)]
        yield from self._run_transfer(
            paths,
            size,
            CAT_GFN_GFN_INTRA,
            src=src_gpu.device_id,
            dst=ctx.device_id,
            **self._transfer_kwargs(ctx, size),
        )

    def _cross_node_transfer(self, ctx: FnContext, src_gpu: Gpu,
                             size: float):
        if self.harvesting:
            paths = parallel_nic_paths(
                self.cluster,
                src_gpu,
                ctx.gpu,
                topology_aware=self.topology_aware,
                routing=self.routing,
            )
        else:
            paths = []
        if not paths:
            paths = [self._gdr_path(src_gpu, ctx.gpu)]
        yield from self._run_transfer(
            paths,
            size,
            CAT_GFN_GFN_CROSS,
            src=src_gpu.device_id,
            dst=ctx.device_id,
            **self._transfer_kwargs(ctx, size),
        )

    # -- eviction + proactive restore (§4.4.2) --------------------------------------
    def _migrate_to_host(self, gpu_device_id: str, obj: DataObject):
        # Remember where the object lived so restore can bring it back.
        self._evicted_from[obj.object_id] = gpu_device_id
        node = self.cluster.node_of_device(gpu_device_id)
        gpu = self.cluster.gpu(gpu_device_id)
        paths = self._host_paths(node, gpu, "to_host")
        from repro.dataplane.base import CAT_MIGRATION

        yield from self._run_transfer(
            paths,
            obj.size,
            CAT_MIGRATION,
            src=gpu_device_id,
            dst=node.host.device_id,
            pinned_node=node.node_id,
        )
        # Consumed while the copy was in flight: nothing left to move.
        if obj.deleted or not self.gpu_stores[gpu_device_id].has(obj.object_id):
            self._evicted_from.pop(obj.object_id, None)
            return
        self.gpu_stores[gpu_device_id].remove(obj)
        self._store_on_host(obj, node.node_id)
        self._publish_evict(obj, gpu_device_id, node.host.device_id)

    def _restore_pass(self, node: NodeTopology):
        """Bring migrated-but-soon-needed objects back to GPU memory."""
        host_store = self.host_stores[node.node_id]
        oracle = self.queue_oracle
        candidates = []
        for obj in host_store.resident_objects():
            origin = self._evicted_from.get(obj.object_id)
            if origin is None or obj.deleted:
                continue
            if obj.object_id in self._restoring:
                continue
            position = (
                oracle.position_of(obj.object_id) if oracle is not None else None
            )
            if position is None or position >= RESTORE_QUEUE_WINDOW:
                continue
            candidates.append((position, obj, origin))
        candidates.sort(key=lambda entry: entry[0])
        for _position, obj, origin in candidates:
            store = self.gpu_stores[origin]
            headroom = self.storage_limit(origin) - store.resident_bytes
            if obj.size > headroom:
                continue
            if obj.deleted or not host_store.has(obj.object_id):
                continue
            self._restoring.add(obj.object_id)
            try:
                gpu = self.cluster.gpu(origin)
                paths = self._host_paths(node, gpu, "from_host")
                yield from self._run_transfer(
                    paths,
                    obj.size,
                    CAT_RESTORE,
                    src=node.host.device_id,
                    dst=origin,
                    pinned_node=node.node_id,
                )
                if obj.deleted or not host_store.has(obj.object_id):
                    continue  # consumed from host while we were copying
                host_store.remove(obj)
                try:
                    yield from self._store_on_gpu(obj, origin)
                except AllocationError:
                    # Lost the headroom race to a concurrent put: the
                    # object stays host-resident.
                    self._store_on_host(obj, node.node_id)
                    continue
                self._evicted_from.pop(obj.object_id, None)
            finally:
                self._restoring.discard(obj.object_id)
