"""Data planes: GROUTER and the three baselines of the evaluation."""

from typing import Callable

from repro.common.errors import ConfigError
from repro.dataplane.base import (
    CAT_CFN_CFN,
    CAT_GFN_GFN_CROSS,
    CAT_GFN_GFN_INTRA,
    CAT_GFN_HOST,
    CAT_MIGRATION,
    CAT_RESTORE,
    DataPlane,
    GetResult,
    PlaneMetrics,
    TransferRecord,
)
from repro.dataplane.deepplan import DeepPlanPlane
from repro.dataplane.grouter import GRouterPlane, QueueOracle
from repro.dataplane.host_centric import HostCentricPlane
from repro.dataplane.nvshmem import NvshmemPlane

PLANES: dict[str, Callable] = {
    "infless+": HostCentricPlane,
    "nvshmem+": NvshmemPlane,
    "deepplan+": DeepPlanPlane,
    "grouter": GRouterPlane,
}


def make_plane(name: str, env, cluster, **kwargs) -> DataPlane:
    """Instantiate a data plane by its evaluation name."""
    try:
        plane_cls = PLANES[name]
    except KeyError:
        raise ConfigError(
            f"unknown data plane {name!r}; choose from {sorted(PLANES)}"
        ) from None
    return plane_cls(env, cluster, **kwargs)


__all__ = [
    "CAT_CFN_CFN",
    "CAT_GFN_GFN_CROSS",
    "CAT_GFN_GFN_INTRA",
    "CAT_GFN_HOST",
    "CAT_MIGRATION",
    "CAT_RESTORE",
    "DataPlane",
    "GetResult",
    "PlaneMetrics",
    "TransferRecord",
    "DeepPlanPlane",
    "GRouterPlane",
    "QueueOracle",
    "HostCentricPlane",
    "NvshmemPlane",
    "PLANES",
    "make_plane",
]
