"""NVSHMEM+ — GPU-side storage without placement awareness (paper §3).

Intermediate data lives in a shared GPU memory space, bypassing host
memory — but the storage service cannot see where functions run, so it
assigns each object to a *random* GPU of the producer's node.  The
consequences the paper measures:

- **Redundant copies** (§3.1): producer -> storage GPU -> consumer GPU
  instead of one direct hop; cross-node exchanges bounce through a
  storage GPU on each side (three copies).
- **Single-link transfers** (§3.2): every hop uses the one direct
  NVLink/PCIe/NIC path; no harvesting.
- **Symmetric memory** (§6.5): NVSHMEM's symmetric heap reserves the
  same bytes on *every* GPU of the node, the memory bloat of Fig. 20(c).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.dataplane.base import (
    CAT_CFN_CFN,
    CAT_GFN_GFN_CROSS,
    CAT_GFN_GFN_INTRA,
    CAT_GFN_HOST,
    IPC_MAP_LATENCY,
    SHM_ACCESS_LATENCY,
    DataPlane,
)
from repro.functions.instance import FnContext
from repro.memory.eviction import LruPolicy
from repro.storage.objects import DataObject, DataRef
from repro.topology.cluster import ClusterTopology
from repro.topology.devices import Gpu
from repro.topology.node import NodeTopology

SYMMETRIC_TAG = "nvshmem-symmetric"


class NvshmemPlane(DataPlane):
    """GPU-side storage with random placement and single-path transfers."""

    name = "nvshmem+"

    def __init__(self, env, cluster: ClusterTopology, seed: int = 7, **kwargs):
        super().__init__(env, cluster, **kwargs)
        self._rng = random.Random(seed)
        self._eviction = LruPolicy()
        self.symmetric_overflows = 0
        # object_id -> (node_id, size) symmetric reservations to undo.
        self._symmetric: dict[str, tuple[str, float]] = {}

    # -- placement ----------------------------------------------------------
    def _pick_storage_gpu(self, node: NodeTopology) -> Gpu:
        """Random storage GPU: the service is blind to function placement."""
        return self._rng.choice(node.gpus)

    # -- symmetric heap accounting -----------------------------------------------
    def _reserve_symmetric(self, obj: DataObject, node: NodeTopology,
                           storage_gpu: Gpu) -> None:
        from repro.common.errors import AllocationError

        for gpu in node.gpus:
            if gpu.device_id == storage_gpu.device_id:
                continue
            try:
                self.device_memory[gpu.device_id].reserve(
                    SYMMETRIC_TAG, obj.size
                )
            except AllocationError:
                # A real symmetric heap would have failed the collective
                # allocation; we degrade gracefully under saturation and
                # surface the pressure through this counter instead.
                self.symmetric_overflows += 1
        self._symmetric[obj.object_id] = (node.node_id, obj.size)

    def _release_symmetric(self, obj: DataObject,
                           keep_device: Optional[str] = None) -> None:
        entry = self._symmetric.pop(obj.object_id, None)
        if entry is None:
            return
        node_id, size = entry
        node = self.cluster.node(node_id)
        for gpu in node.gpus:
            if gpu.device_id == keep_device:
                continue
            memory = self.device_memory[gpu.device_id]
            if memory.used_by(SYMMETRIC_TAG) >= size:
                memory.release(SYMMETRIC_TAG, size)

    def _destroy(self, obj: DataObject) -> None:
        # The symmetric heap frees everywhere at once, storage GPU
        # included (its bytes are freed by the store removal itself).
        storage_device = self._gpu_location_of(obj)
        self._release_symmetric(obj, keep_device=storage_device)
        super()._destroy(obj)

    # -- host<->GPU transfers (DeepPlan+ overrides with parallel PCIe) ---------
    def _host_to_gpu(self, node: NodeTopology, gpu: Gpu, size: float,
                     ctx: FnContext):
        yield from self._run_transfer(
            [self._direct_host_path(node, gpu, "from_host")],
            size,
            CAT_GFN_HOST,
            src=node.host.device_id,
            dst=gpu.device_id,
            pinned_node=node.node_id,
            owner=ctx.request_id,
        )

    def _gpu_to_host(self, node: NodeTopology, gpu: Gpu, size: float,
                     ctx: FnContext):
        yield from self._run_transfer(
            [self._direct_host_path(node, gpu, "to_host")],
            size,
            CAT_GFN_HOST,
            src=gpu.device_id,
            dst=node.host.device_id,
            pinned_node=node.node_id,
            owner=ctx.request_id,
        )

    # -- Put -----------------------------------------------------------------
    def _put(self, ctx: FnContext, size: float, expected_consumers: int,
             priority: float):
        obj = self._new_object(ctx, size, expected_consumers, priority)
        storage_gpu = self._pick_storage_gpu(ctx.node)
        placed = yield from self._store_on_gpu_or_spill(
            obj, storage_gpu.device_id, self._eviction
        )
        if placed != storage_gpu.device_id:
            # Admission spill: the object lives in host memory.
            if ctx.is_gpu:
                yield from self._gpu_to_host(ctx.node, ctx.gpu, size, ctx)
        else:
            self._reserve_symmetric(obj, ctx.node, storage_gpu)
            if not ctx.is_gpu:
                # cFn output starts in host memory; stage it up over PCIe.
                yield from self._host_to_gpu(ctx.node, storage_gpu, size, ctx)
            elif ctx.device_id == storage_gpu.device_id:
                # Lucky random placement: data is already local.
                yield self.env.timeout(IPC_MAP_LATENCY)
            else:
                path = self._simple_gpu_to_gpu_path(ctx.gpu, storage_gpu)
                yield from self._run_transfer(
                    [path],
                    size,
                    CAT_GFN_GFN_INTRA,
                    src=ctx.device_id,
                    dst=storage_gpu.device_id,
                    owner=ctx.request_id,
                )
        self.catalog.register(obj, ctx.node.node_id)
        return obj.to_ref()

    # -- Get -----------------------------------------------------------------
    def _get(self, ctx: FnContext, ref: DataRef):
        started = self.env.now
        node_id, obj = yield from self._lookup(ctx, ref)

        if node_id != ctx.node.node_id:
            yield from self._pull_cross_node(ctx, obj, node_id)
            node_id = ctx.node.node_id

        gpu_device = self._gpu_location_of(obj)
        if gpu_device is None:
            # Previously force-evicted to host memory.
            if ctx.is_gpu:
                yield from self._host_to_gpu(ctx.node, ctx.gpu, obj.size, ctx)
            else:
                yield self.env.timeout(SHM_ACCESS_LATENCY)
            source = ctx.node.host.device_id
            category = CAT_GFN_HOST if ctx.is_gpu else CAT_CFN_CFN
        elif not ctx.is_gpu:
            storage_gpu = self.cluster.gpu(gpu_device)
            yield from self._gpu_to_host(
                ctx.node, storage_gpu, obj.size, ctx
            )
            source, category = gpu_device, CAT_GFN_HOST
        elif gpu_device == ctx.device_id:
            yield self.env.timeout(IPC_MAP_LATENCY)
            source, category = gpu_device, CAT_GFN_GFN_INTRA
        else:
            storage_gpu = self.cluster.gpu(gpu_device)
            path = self._simple_gpu_to_gpu_path(storage_gpu, ctx.gpu)
            yield from self._run_transfer(
                [path],
                obj.size,
                CAT_GFN_GFN_INTRA,
                src=gpu_device,
                dst=ctx.device_id,
                owner=ctx.request_id,
            )
            source, category = gpu_device, CAT_GFN_GFN_INTRA
        self._note_consumed(ctx, obj)
        return self._result(ref, started, source, category)

    def _pull_cross_node(self, ctx: FnContext, obj: DataObject,
                         src_node_id: str):
        """Bounce the object through storage GPUs on both nodes (Fig. 4)."""
        src_device = self._gpu_location_of(obj)
        src_node = self.cluster.node(src_node_id)
        if src_device is None:
            # Evicted to host on the source node: stage back up first.
            staging = self._pick_storage_gpu(src_node)
            yield from self._host_to_gpu(src_node, staging, obj.size, ctx)
            self.host_stores[src_node_id].remove(obj)
            placed = yield from self._store_on_gpu_or_spill(
                obj, staging.device_id, self._eviction
            )
            if placed != staging.device_id:
                # Could not re-admit on any GPU: ship host-to-host.
                yield from self._run_transfer(
                    [self._host_to_host_path(src_node, ctx.node)],
                    obj.size,
                    CAT_GFN_GFN_CROSS,
                    src=src_node.host.device_id,
                    dst=ctx.node.host.device_id,
                    owner=ctx.request_id,
                )
                self.host_stores[src_node_id].remove(obj)
                self._store_on_host(obj, ctx.node.node_id)
                self.catalog.move(obj.object_id, ctx.node.node_id)
                return
            src_device = staging.device_id
        src_gpu = self.cluster.gpu(src_device)
        dst_storage = self._pick_storage_gpu(ctx.node)
        # Single-NIC GDR between the two storage GPUs.
        path = self._gdr_path(src_gpu, dst_storage)
        yield from self._run_transfer(
            [path],
            obj.size,
            CAT_GFN_GFN_CROSS,
            src=src_device,
            dst=dst_storage.device_id,
            owner=ctx.request_id,
        )
        self.gpu_stores[src_device].remove(obj)
        self._release_symmetric(obj)
        placed = yield from self._store_on_gpu_or_spill(
            obj, dst_storage.device_id, self._eviction
        )
        if placed == dst_storage.device_id:
            self._reserve_symmetric(obj, ctx.node, dst_storage)
        self.catalog.move(obj.object_id, ctx.node.node_id)
