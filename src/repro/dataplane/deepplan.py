"""DeepPlan+ — NVSHMEM+ with naive parallel-PCIe host transfers (§6).

DeepPlan's direct-host-access trick parallelizes gFn-host transfers
across all PCIe links of the node — but the storage service performing
them is neither placement- nor topology-aware:

- route GPUs are picked per PCIe switch regardless of NVLink
  connectivity, so on DGX-V100 some lanes relay over PCIe peer-to-peer
  and congest the source's own uplink (§3.2.2);
- bandwidth is shared max-min with no partitioning, so co-located
  workflows interfere (Fig. 5(b), Fig. 17).
"""

from __future__ import annotations

from repro.dataplane.base import CAT_GFN_HOST
from repro.dataplane.nvshmem import NvshmemPlane
from repro.functions.instance import FnContext
from repro.routing.harvest import pcie_host_paths, select_pcie_routes
from repro.topology.devices import Gpu
from repro.topology.node import NodeTopology


class DeepPlanPlane(NvshmemPlane):
    """NVSHMEM+ plus topology-blind parallel PCIe for host transfers."""

    name = "deepplan+"

    def _parallel_host_paths(self, node: NodeTopology, gpu: Gpu,
                             direction: str):
        routes = select_pcie_routes(
            node, gpu, topology_aware=False, routing=self.routing
        )
        return pcie_host_paths(
            node, gpu, routes, direction, routing=self.routing
        )

    def _host_to_gpu(self, node: NodeTopology, gpu: Gpu, size: float,
                     ctx: FnContext):
        paths = self._parallel_host_paths(node, gpu, "from_host")
        yield from self._run_transfer(
            paths,
            size,
            CAT_GFN_HOST,
            src=node.host.device_id,
            dst=gpu.device_id,
            chunked=True,
            pinned_node=node.node_id,
            owner=ctx.request_id,
        )

    def _gpu_to_host(self, node: NodeTopology, gpu: Gpu, size: float,
                     ctx: FnContext):
        paths = self._parallel_host_paths(node, gpu, "to_host")
        yield from self._run_transfer(
            paths,
            size,
            CAT_GFN_HOST,
            src=gpu.device_id,
            dst=node.host.device_id,
            chunked=True,
            pinned_node=node.node_id,
            owner=ctx.request_id,
        )
