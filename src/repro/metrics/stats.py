"""Latency/throughput statistics helpers used across experiments.

Two recorder flavours share one duck-typed API (``add`` / ``extend`` /
``percentile`` / ``mean`` / ``maximum`` / ``cdf``):

- :class:`LatencyRecorder` keeps every sample — the exact oracle.
- :class:`ReservoirRecorder` keeps a fixed-size uniform reservoir
  (Vitter's Algorithm R) plus exact running count/sum/min/max, so its
  memory is flat in sample count while count, mean, min and max stay
  exact and quantiles carry a documented sampling error.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.common.errors import ConfigError


class LatencyRecorder:
    """Accumulates latency samples and reports percentiles.

    The sorted view backing :meth:`percentile` and :meth:`cdf` is
    cached between mutations, so repeated quantile probes over a
    stable window (the elastic-pool controller's access pattern) cost
    one sort, not one per probe.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples: list[float] = []
        self._sorted: Optional[np.ndarray] = None

    def add(self, value: float) -> None:
        if value < 0:
            raise ConfigError(f"negative latency sample {value}")
        self._samples.append(value)
        self._sorted = None

    def extend(self, values: Sequence[float]) -> None:
        """Bulk append: validate everything, then one list extend."""
        values = list(values)
        for value in values:
            if value < 0:
                raise ConfigError(f"negative latency sample {value}")
        self._samples.extend(values)
        self._sorted = None

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    def _sorted_view(self) -> np.ndarray:
        if self._sorted is None:
            self._sorted = np.sort(np.asarray(self._samples, dtype=float))
        return self._sorted

    def percentile(self, p: float) -> float:
        if not self._samples:
            return float("nan")
        return float(np.percentile(self._sorted_view(), p))

    @property
    def mean(self) -> float:
        return float(np.mean(self._samples)) if self._samples else float("nan")

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def maximum(self) -> float:
        return max(self._samples) if self._samples else float("nan")

    @property
    def minimum(self) -> float:
        return min(self._samples) if self._samples else float("nan")

    def cdf(self, points: int = 100) -> tuple[list[float], list[float]]:
        """(latency, cumulative fraction) pairs for CDF plots."""
        if not self._samples:
            return [], []
        ordered = self._sorted_view().tolist()
        fractions = [(i + 1) / len(ordered) for i in range(len(ordered))]
        if len(ordered) <= points:
            return ordered, fractions
        idx = np.linspace(0, len(ordered) - 1, points).astype(int)
        return [ordered[i] for i in idx], [fractions[i] for i in idx]


DEFAULT_RESERVOIR_CAPACITY = 4096
# One-sided z for the documented quantile error bound: the estimated
# p-quantile's rank error is Normal(0, p(1-p)/k) in the large-sample
# limit; 4.9 sigma keeps a 100-distribution property suite essentially
# free of statistical flakes (P[miss] ~ 1e-6 per probe).
RANK_ERROR_SIGMA = 4.9


def reservoir_rank_error(p: float,
                         capacity: int = DEFAULT_RESERVOIR_CAPACITY) -> float:
    """Documented quantile error bound, in rank-percentile points.

    A capacity-``k`` uniform reservoir estimates the ``p``-th
    percentile to within ``RANK_ERROR_SIGMA * sqrt(q(1-q)/k) * 100``
    rank points (``q = p/100``): the estimate lies between the exact
    ``p - err`` and ``p + err`` percentiles with probability
    ~``1 - 1e-6``.
    """
    q = min(max(p / 100.0, 0.0), 1.0)
    return RANK_ERROR_SIGMA * ((q * (1.0 - q)) / capacity) ** 0.5 * 100.0


class ReservoirRecorder:
    """Bounded-memory latency recorder: Algorithm-R uniform reservoir.

    Count, mean (running sum), minimum and maximum are tracked exactly;
    quantiles are estimated from the reservoir with the rank error
    bound documented by :func:`reservoir_rank_error`.  The replacement
    RNG is seeded from ``(name, seed)``, so a given fold order always
    produces the identical reservoir — replaying a spooled event stream
    through a fresh registry reproduces approximate summaries bit-for-
    bit.
    """

    def __init__(
        self,
        name: str = "",
        capacity: int = DEFAULT_RESERVOIR_CAPACITY,
        seed: int = 0,
    ) -> None:
        if capacity < 2:
            raise ConfigError(f"reservoir capacity must be >= 2, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._rng = random.Random(zlib.crc32(name.encode()) ^ seed)
        self._reservoir: list[float] = []
        self._sorted: Optional[np.ndarray] = None
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def add(self, value: float) -> None:
        if value < 0:
            raise ConfigError(f"negative latency sample {value}")
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if len(self._reservoir) < self.capacity:
            self._reservoir.append(value)
            self._sorted = None
        else:
            j = self._rng.randrange(self._count)
            if j < self.capacity:
                self._reservoir[j] = value
                self._sorted = None

    def extend(self, values: Sequence[float]) -> None:
        for value in values:
            self.add(value)

    def __len__(self) -> int:
        return self._count

    @property
    def samples(self) -> list[float]:
        """The current reservoir content (NOT the full sample set)."""
        return list(self._reservoir)

    def _sorted_view(self) -> np.ndarray:
        if self._sorted is None:
            self._sorted = np.sort(np.asarray(self._reservoir, dtype=float))
        return self._sorted

    def percentile(self, p: float) -> float:
        if not self._reservoir:
            return float("nan")
        return float(np.percentile(self._sorted_view(), p))

    def rank_error(self, p: float) -> float:
        """Error bound (rank-percentile points) for :meth:`percentile`."""
        return reservoir_rank_error(p, self.capacity)

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else float("nan")

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def maximum(self) -> float:
        return self._max if self._count else float("nan")

    @property
    def minimum(self) -> float:
        return self._min if self._count else float("nan")

    def cdf(self, points: int = 100) -> tuple[list[float], list[float]]:
        """Approximate CDF from the reservoir."""
        if not self._reservoir:
            return [], []
        ordered = self._sorted_view().tolist()
        fractions = [(i + 1) / len(ordered) for i in range(len(ordered))]
        if len(ordered) <= points:
            return ordered, fractions
        idx = np.linspace(0, len(ordered) - 1, points).astype(int)
        return [ordered[i] for i in idx], [fractions[i] for i in idx]


@dataclass
class Timeline:
    """A time series of (t, value) samples (memory usage, rates, ...)."""

    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def sample(self, t: float, value: float) -> None:
        if self.times and t < self.times[-1]:
            raise ConfigError("timeline samples must be time-ordered")
        self.times.append(t)
        self.values.append(value)

    def sample_edge(self, t: float, value: float) -> None:
        """Sample, collapsing repeated same-instant samples to the last.

        Event-edge consumers can observe many state transitions at one
        simulation instant (a macro-flow split replays its virtual
        batch history in a single call stack); keeping every
        intermediate sample would let zero-duration points skew
        sample-weighted summaries.  Only the final value at each ``t``
        is the state the timeline should remember.
        """
        if self.times and t == self.times[-1]:
            self.values[-1] = value
            return
        self.sample(t, value)

    def __len__(self) -> int:
        return len(self.times)

    @property
    def peak(self) -> float:
        return max(self.values) if self.values else float("nan")

    @property
    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else float("nan")

    def value_at(self, t: float) -> float:
        """Step-function lookup: the last sample at or before *t*."""
        if not self.times:
            return float("nan")
        idx = int(np.searchsorted(self.times, t, side="right")) - 1
        if idx < 0:
            return float("nan")
        return self.values[idx]


@dataclass
class SloTracker:
    """Counts SLO hits and misses."""

    attained: int = 0
    violated: int = 0

    def observe(self, latency: float, slo: float) -> None:
        if latency <= slo:
            self.attained += 1
        else:
            self.violated += 1

    @property
    def total(self) -> int:
        return self.attained + self.violated

    @property
    def attainment(self) -> float:
        if self.total == 0:
            return float("nan")
        return self.attained / self.total


def find_max_throughput(
    is_sustainable: Callable[[float], bool],
    low: float,
    high: float,
    tolerance: float = 0.05,
    max_iterations: int = 12,
) -> float:
    """Binary-search the highest sustainable offered load.

    ``is_sustainable(rate)`` runs the system at *rate* and reports
    whether it kept up (SLOs met / queues stable).  Assumes a monotone
    boundary.  Returns the highest rate found sustainable.
    """
    if low <= 0 or high <= low:
        raise ConfigError("need 0 < low < high")
    if not is_sustainable(low):
        return 0.0
    best = low
    if is_sustainable(high):
        return high
    for _ in range(max_iterations):
        mid = (low + high) / 2
        if is_sustainable(mid):
            best = mid
            low = mid
        else:
            high = mid
        if (high - low) / max(best, 1e-12) < tolerance:
            break
    return best
