"""Latency/throughput statistics helpers used across experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.common.errors import ConfigError


class LatencyRecorder:
    """Accumulates latency samples and reports percentiles."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples: list[float] = []

    def add(self, value: float) -> None:
        if value < 0:
            raise ConfigError(f"negative latency sample {value}")
        self._samples.append(value)

    def extend(self, values: Sequence[float]) -> None:
        for value in values:
            self.add(value)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    def percentile(self, p: float) -> float:
        if not self._samples:
            return float("nan")
        return float(np.percentile(self._samples, p))

    @property
    def mean(self) -> float:
        return float(np.mean(self._samples)) if self._samples else float("nan")

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def maximum(self) -> float:
        return max(self._samples) if self._samples else float("nan")

    def cdf(self, points: int = 100) -> tuple[list[float], list[float]]:
        """(latency, cumulative fraction) pairs for CDF plots."""
        if not self._samples:
            return [], []
        ordered = sorted(self._samples)
        fractions = [(i + 1) / len(ordered) for i in range(len(ordered))]
        if len(ordered) <= points:
            return ordered, fractions
        idx = np.linspace(0, len(ordered) - 1, points).astype(int)
        return [ordered[i] for i in idx], [fractions[i] for i in idx]


@dataclass
class Timeline:
    """A time series of (t, value) samples (memory usage, rates, ...)."""

    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def sample(self, t: float, value: float) -> None:
        if self.times and t < self.times[-1]:
            raise ConfigError("timeline samples must be time-ordered")
        self.times.append(t)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    @property
    def peak(self) -> float:
        return max(self.values) if self.values else float("nan")

    @property
    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else float("nan")

    def value_at(self, t: float) -> float:
        """Step-function lookup: the last sample at or before *t*."""
        if not self.times:
            return float("nan")
        idx = int(np.searchsorted(self.times, t, side="right")) - 1
        if idx < 0:
            return float("nan")
        return self.values[idx]


@dataclass
class SloTracker:
    """Counts SLO hits and misses."""

    attained: int = 0
    violated: int = 0

    def observe(self, latency: float, slo: float) -> None:
        if latency <= slo:
            self.attained += 1
        else:
            self.violated += 1

    @property
    def total(self) -> int:
        return self.attained + self.violated

    @property
    def attainment(self) -> float:
        if self.total == 0:
            return float("nan")
        return self.attained / self.total


def find_max_throughput(
    is_sustainable: Callable[[float], bool],
    low: float,
    high: float,
    tolerance: float = 0.05,
    max_iterations: int = 12,
) -> float:
    """Binary-search the highest sustainable offered load.

    ``is_sustainable(rate)`` runs the system at *rate* and reports
    whether it kept up (SLOs met / queues stable).  Assumes a monotone
    boundary.  Returns the highest rate found sustainable.
    """
    if low <= 0 or high <= low:
        raise ConfigError("need 0 < low < high")
    if not is_sustainable(low):
        return 0.0
    best = low
    if is_sustainable(high):
        return high
    for _ in range(max_iterations):
        mid = (low + high) / 2
        if is_sustainable(mid):
            best = mid
            low = mid
        else:
            high = mid
        if (high - low) / max(best, 1e-12) < tolerance:
            break
    return best
