"""Statistics utilities: latency recorders, timelines, throughput search."""

from repro.metrics.stats import (
    LatencyRecorder,
    SloTracker,
    Timeline,
    find_max_throughput,
)

__all__ = [
    "LatencyRecorder",
    "SloTracker",
    "Timeline",
    "find_max_throughput",
]
