"""Statistics utilities: latency recorders, timelines, throughput search."""

from repro.metrics.stats import (
    DEFAULT_RESERVOIR_CAPACITY,
    LatencyRecorder,
    ReservoirRecorder,
    SloTracker,
    Timeline,
    find_max_throughput,
    reservoir_rank_error,
)

__all__ = [
    "DEFAULT_RESERVOIR_CAPACITY",
    "LatencyRecorder",
    "ReservoirRecorder",
    "SloTracker",
    "Timeline",
    "find_max_throughput",
    "reservoir_rank_error",
]
