"""Hierarchical data catalog (paper §4.2.2 and §7).

Object-id to location mappings are kept in two tiers: each node owns a
*local* table for objects resident on that node, and a centralized
scheduler holds the *global* table.  Lookups try the local table first
and fall back to the global one only on a miss — the hit/miss counters
feed the CPU-overhead experiment (Fig. 20(b)).

Access control follows the paper's threat model: every access is
authenticated by (function id, workflow id); only functions registered
for an object's workflow may read it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import AccessDeniedError, StorageError
from repro.storage.objects import DataObject


@dataclass
class CatalogStats:
    """Lookup accounting used for control-plane overhead estimates."""

    local_hits: int = 0
    global_lookups: int = 0
    registrations: int = 0
    evictions: int = 0

    @property
    def total_lookups(self) -> int:
        return self.local_hits + self.global_lookups


class DataCatalog:
    """Two-tier (per-node local + global) object location catalog."""

    def __init__(self, node_ids: list[str]) -> None:
        self._local: dict[str, dict[str, DataObject]] = {
            node_id: {} for node_id in node_ids
        }
        self._global: dict[str, str] = {}  # object_id -> node_id
        self.stats = CatalogStats()

    def register(self, obj: DataObject, node_id: str) -> None:
        """Record a new object resident on *node_id*."""
        if node_id not in self._local:
            raise StorageError(f"unknown node {node_id}")
        if obj.object_id in self._global:
            raise StorageError(f"duplicate object id {obj.object_id}")
        self._local[node_id][obj.object_id] = obj
        self._global[obj.object_id] = node_id
        self.stats.registrations += 1

    def move(self, object_id: str, to_node: str) -> None:
        """Update the catalog after a cross-node migration."""
        from_node = self._global.get(object_id)
        if from_node is None:
            raise StorageError(f"unknown object {object_id}")
        obj = self._local[from_node].pop(object_id)
        self._local[to_node][object_id] = obj
        self._global[object_id] = to_node

    def lookup(self, object_id: str, from_node: str) -> tuple[str, DataObject]:
        """Resolve an object id to (node_id, object), local-table first."""
        local = self._local.get(from_node, {})
        obj = local.get(object_id)
        if obj is not None:
            self.stats.local_hits += 1
            return from_node, obj
        self.stats.global_lookups += 1
        node_id = self._global.get(object_id)
        if node_id is None:
            raise StorageError(f"unknown object {object_id}")
        return node_id, self._local[node_id][object_id]

    def unregister(self, object_id: str) -> DataObject:
        """Remove an object entirely (after deletion)."""
        node_id = self._global.pop(object_id, None)
        if node_id is None:
            raise StorageError(f"unknown object {object_id}")
        obj = self._local[node_id].pop(object_id)
        self.stats.evictions += 1
        return obj

    def objects_on(self, node_id: str) -> list[DataObject]:
        return list(self._local.get(node_id, {}).values())

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._global

    def __len__(self) -> int:
        return len(self._global)


@dataclass
class AccessController:
    """(function id, workflow id) authentication for object access."""

    # workflow_id -> set of function names allowed to touch its data.
    _workflow_members: dict[str, set[str]] = field(default_factory=dict)
    denied_count: int = 0
    checked_count: int = 0

    def register_workflow(self, workflow_id: str, function_names: list[str]) -> None:
        members = self._workflow_members.setdefault(workflow_id, set())
        members.update(function_names)

    def authorize(
        self, function_name: str, workflow_id: str, object_workflow_id: str
    ) -> None:
        """Raise :class:`AccessDeniedError` unless the access is allowed."""
        self.checked_count += 1
        members = self._workflow_members.get(object_workflow_id)
        allowed = (
            workflow_id == object_workflow_id
            and members is not None
            and function_name in members
        )
        if not allowed:
            self.denied_count += 1
            raise AccessDeniedError(
                f"function {function_name!r} (workflow {workflow_id!r}) may "
                f"not access data of workflow {object_workflow_id!r}"
            )

    def is_member(self, function_name: str, workflow_id: str) -> bool:
        return function_name in self._workflow_members.get(workflow_id, set())
