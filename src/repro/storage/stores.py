"""GPU-side and host-side object stores.

A :class:`GpuStore` keeps object bytes in a per-GPU memory pool; a
:class:`HostStore` keeps them in a node's host DRAM.  Both only do
*accounting and residency* — moving the bytes between devices is the
data plane's job (it owns paths and the transfer engine).
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import StorageError
from repro.memory.device import DeviceMemory
from repro.memory.pool import MemoryPool, PoolAllocation
from repro.sim.core import Environment, Process
from repro.storage.objects import DataObject, Placement, Replica
from repro.telemetry.events import StorePut

HOST_STORE_TAG = "host-store"


class GpuStore:
    """Object residency on one GPU, backed by a memory pool."""

    def __init__(
        self,
        env: Environment,
        device_id: str,
        pool: MemoryPool,
    ) -> None:
        self.env = env
        self.device_id = device_id
        self.pool = pool
        self._resident: dict[str, DataObject] = {}

    # -- residency ----------------------------------------------------------
    def store(self, obj: DataObject) -> Process:
        """Hold *obj* bytes on this GPU; yields once memory is placed."""
        if obj.object_id in self._resident:
            raise StorageError(
                f"{obj.object_id} already resident on {self.device_id}"
            )
        return self.env.process(self._store(obj))

    def _store(self, obj: DataObject):
        allocation: PoolAllocation = yield self.pool.alloc(obj.size)
        obj.add_replica(
            Replica(
                device_id=self.device_id,
                placement=Placement.GPU,
                handle=allocation,
            )
        )
        self._resident[obj.object_id] = obj
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(StorePut(
                t=self.env.now,
                object_id=obj.object_id,
                device_id=self.device_id,
                size=obj.size,
                placement="gpu",
            ))
        return obj

    def remove(self, obj: DataObject) -> None:
        """Drop *obj*'s replica here and free its pool allocation."""
        if obj.object_id not in self._resident:
            raise StorageError(
                f"{obj.object_id} is not resident on {self.device_id}"
            )
        replica = obj.drop_replica(self.device_id)
        if isinstance(replica.handle, PoolAllocation):
            self.pool.free(replica.handle)
        del self._resident[obj.object_id]

    # -- queries -------------------------------------------------------------
    def has(self, object_id: str) -> bool:
        return object_id in self._resident

    def get_resident(self, object_id: str) -> Optional[DataObject]:
        return self._resident.get(object_id)

    def resident_objects(self) -> list[DataObject]:
        return list(self._resident.values())

    @property
    def resident_bytes(self) -> float:
        return sum(obj.size for obj in self._resident.values())

    @property
    def free_device_bytes(self) -> float:
        return self.pool.device.free

    def __repr__(self) -> str:
        return (
            f"<GpuStore {self.device_id} {len(self._resident)} objects "
            f"{self.resident_bytes:.0f}B>"
        )


class HostStore:
    """Object residency in a node's host DRAM."""

    def __init__(
        self, env: Environment, node_id: str, host_memory: DeviceMemory
    ) -> None:
        self.env = env
        self.node_id = node_id
        self.host_memory = host_memory
        self._resident: dict[str, DataObject] = {}

    @property
    def device_id(self) -> str:
        return self.host_memory.device_id

    def store(self, obj: DataObject) -> None:
        """Hold *obj* bytes in host memory (accounting is immediate)."""
        if obj.object_id in self._resident:
            raise StorageError(
                f"{obj.object_id} already resident on {self.device_id}"
            )
        self.host_memory.reserve(HOST_STORE_TAG, obj.size)
        obj.add_replica(
            Replica(device_id=self.device_id, placement=Placement.HOST)
        )
        self._resident[obj.object_id] = obj
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(StorePut(
                t=self.env.now,
                object_id=obj.object_id,
                device_id=self.device_id,
                size=obj.size,
                placement="host",
            ))

    def remove(self, obj: DataObject) -> None:
        if obj.object_id not in self._resident:
            raise StorageError(
                f"{obj.object_id} is not resident on {self.device_id}"
            )
        obj.drop_replica(self.device_id)
        self.host_memory.release(HOST_STORE_TAG, obj.size)
        del self._resident[obj.object_id]

    def has(self, object_id: str) -> bool:
        return object_id in self._resident

    def resident_objects(self) -> list[DataObject]:
        return list(self._resident.values())

    @property
    def resident_bytes(self) -> float:
        return sum(obj.size for obj in self._resident.values())
