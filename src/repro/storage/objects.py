"""Data objects and references.

A ``Put()`` creates a :class:`DataObject` — intermediate data held by a
store — and returns a :class:`DataRef`, the globally-unique identifier
passed to downstream functions (paper §4.2.1).  Objects may have
replicas on several devices (e.g. after migration to host memory with a
copy retained, or staged copies on other GPUs).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import StorageError


class Placement(enum.Enum):
    """Where a replica lives."""

    GPU = "gpu"
    HOST = "host"


@dataclass
class Replica:
    """One copy of an object's bytes on a specific device."""

    device_id: str
    placement: Placement
    # Opaque handle for the backing allocation (pool allocation for GPU
    # replicas, None for host replicas — host DRAM is just accounted).
    handle: object = None


@dataclass(frozen=True)
class DataRef:
    """The token functions exchange instead of raw bytes.

    Refs are created by ``Put()`` and resolved by ``Get()``; they carry
    the ids needed for access control (function + workflow, §7).
    """

    object_id: str
    size: float
    workflow_id: str
    producer: str

    def __str__(self) -> str:
        return self.object_id


@dataclass
class DataObject:
    """Intermediate data tracked by the storage layer."""

    object_id: str
    size: float
    workflow_id: str
    producer: str
    created_at: float
    priority: float = 0.0
    expected_consumers: int = 1
    consumed_count: int = 0
    last_access: float = field(default=0.0)
    replicas: dict[str, Replica] = field(default_factory=dict)
    deleted: bool = False

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise StorageError(f"{self.object_id}: size must be positive")
        self.last_access = self.created_at

    # -- replica management -------------------------------------------------
    def add_replica(self, replica: Replica) -> None:
        if replica.device_id in self.replicas:
            raise StorageError(
                f"{self.object_id}: duplicate replica on {replica.device_id}"
            )
        self.replicas[replica.device_id] = replica

    def drop_replica(self, device_id: str) -> Replica:
        try:
            return self.replicas.pop(device_id)
        except KeyError:
            raise StorageError(
                f"{self.object_id}: no replica on {device_id}"
            ) from None

    def replica_on(self, device_id: str) -> Optional[Replica]:
        return self.replicas.get(device_id)

    def gpu_replicas(self) -> list[Replica]:
        return [
            r for r in self.replicas.values() if r.placement is Placement.GPU
        ]

    def host_replicas(self) -> list[Replica]:
        return [
            r for r in self.replicas.values() if r.placement is Placement.HOST
        ]

    @property
    def fully_consumed(self) -> bool:
        return self.consumed_count >= self.expected_consumers

    def to_ref(self) -> DataRef:
        return DataRef(
            object_id=self.object_id,
            size=self.size,
            workflow_id=self.workflow_id,
            producer=self.producer,
        )

    def touch(self, now: float) -> None:
        self.last_access = now
