"""Data objects, catalogs, access control, and GPU/host stores."""

from repro.storage.catalog import AccessController, CatalogStats, DataCatalog
from repro.storage.objects import DataObject, DataRef, Placement, Replica
from repro.storage.stores import GpuStore, HostStore

__all__ = [
    "AccessController",
    "CatalogStats",
    "DataCatalog",
    "DataObject",
    "DataRef",
    "Placement",
    "Replica",
    "GpuStore",
    "HostStore",
]
