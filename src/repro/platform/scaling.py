"""Pluggable autoscaling: grow/shrink per-stage replica sets.

Generalises the static ``deploy(replicas=N)`` provisioning: an
:class:`Autoscaler` is consulted on the hot path (each time a request
enters a stage queue) with that stage's current depth and replica
count, and answers with a replica delta.  The engine applies the delta
through ``ServerlessPlatform.scale_stage`` — placement, weight
reservation, pre-warming and telemetry all happen there, so policies
stay pure decision functions.

The platform default is *no autoscaler* (``None``), which costs one
``is None`` check per stage entry and keeps replica sets exactly as
deployed — the behaviour-preserving baseline.
"""

from __future__ import annotations

import abc

from repro.common.errors import SchedulingError


class Autoscaler(abc.ABC):
    """Decision interface: how many replicas to add or remove."""

    name = "abstract"

    @abc.abstractmethod
    def desired_delta(
        self, key: str, replicas: int, queue_depth: int, now: float
    ) -> int:
        """Replica delta for one stage observation.

        *key* identifies the (deployment, stage) pair; *replicas* is
        the current set size; *queue_depth* counts requests inside the
        stage (waiting + executing).  Positive grows, negative
        shrinks, 0 holds.
        """


class QueueDepthAutoscaler(Autoscaler):
    """Scale against per-replica queue depth, with hysteresis.

    Grows one replica when the stage's depth exceeds ``target_depth``
    per replica, shrinks one when the remaining replicas could absorb
    the depth at half target (so scale-up and scale-down thresholds
    never chase each other), and enforces a per-stage cooldown between
    actions to ride out bursts.
    """

    name = "queue-depth"

    def __init__(
        self,
        target_depth: float = 4.0,
        min_replicas: int = 1,
        max_replicas: int = 8,
        cooldown: float = 1.0,
    ) -> None:
        if target_depth <= 0:
            raise SchedulingError(
                f"target_depth must be positive, got {target_depth}"
            )
        if min_replicas < 1 or max_replicas < min_replicas:
            raise SchedulingError(
                f"invalid replica bounds [{min_replicas}, {max_replicas}]"
            )
        self.target_depth = target_depth
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.cooldown = cooldown
        self._last_action: dict[str, float] = {}

    def desired_delta(self, key, replicas, queue_depth, now):
        last = self._last_action.get(key)
        if last is not None and now - last < self.cooldown:
            return 0
        if (
            replicas < self.max_replicas
            and queue_depth > self.target_depth * replicas
        ):
            self._last_action[key] = now
            return 1
        if (
            replicas > self.min_replicas
            and queue_depth <= 0.5 * self.target_depth * (replicas - 1)
        ):
            self._last_action[key] = now
            return -1
        return 0


AUTOSCALERS = {
    QueueDepthAutoscaler.name: QueueDepthAutoscaler,
}


def make_autoscaler(name: str, **kwargs) -> Autoscaler:
    """Instantiate an autoscaler by name."""
    try:
        return AUTOSCALERS[name](**kwargs)
    except KeyError:
        raise SchedulingError(
            f"unknown autoscaler {name!r}; choose from {sorted(AUTOSCALERS)}"
        ) from None
