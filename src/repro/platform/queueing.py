"""Request and stage queues for the platform's lifecycle pipeline.

Two structures live here:

:class:`PendingQueue`
    The arrival-ordered set of in-flight requests that backs GROUTER's
    queue-aware eviction oracle (§4.4.2).  The seed implementation kept
    a plain list, making ``finish`` (``list.remove``) and
    ``position_of`` (``list.index``) O(n) per call and leaking one
    object binding per Put forever.  This version keeps a Fenwick tree
    over arrival slots: ``enqueue``/``finish`` are O(log n) tree
    updates with O(1) dict bookkeeping, ``position_of`` is one O(log n)
    prefix count, object bindings are dropped the moment their request
    finishes, and dead slots are compacted away once they outnumber the
    live ones — nothing on the pending path scans a list.

:class:`StageQueue`
    A per-stage admission gate with FIFO or priority wakeup and
    optional bounded depth (backpressure).  With no bound (the
    default) entering is a pure O(1) counter bump with zero simulation
    interaction, so the default pipeline behaves exactly like the
    un-queued seed engine; with ``maxsize`` set, excess requests park
    on an event and are woken in policy order as slots free up.
"""

from __future__ import annotations

from typing import Optional

import heapq

from repro.common.errors import SchedulingError
from repro.sim.core import Environment, Event
from repro.telemetry.events import StageQueueDepth

_MIN_SLOTS = 64


class PendingQueue:
    """Arrival-ordered pending requests with O(log n) indexed lookups."""

    def __init__(self) -> None:
        self._capacity = _MIN_SLOTS
        self._tree = [0] * (self._capacity + 1)
        self._base = 0  # arrival seq mapped to tree slot 0
        self._next_seq = 0
        self._seq: dict[str, int] = {}  # request_id -> arrival seq (alive)
        self._count = 0
        self._dead_slots = 0
        self._object_request: dict[str, str] = {}
        self._request_objects: dict[str, list[str]] = {}
        # Operation counters, reported by the request_churn benchmark
        # so queue-cost regressions show up in BENCH_platform.json.
        self.counters = {
            "enqueue": 0,
            "finish": 0,
            "bind": 0,
            "position": 0,
            "compactions": 0,
        }

    # -- Fenwick primitives (0-based slot index) ------------------------------
    def _add(self, slot: int, delta: int) -> None:
        i = slot + 1
        while i <= self._capacity:
            self._tree[i] += delta
            i += i & -i

    def _prefix(self, slot: int) -> int:
        """Count of alive entries in slots [0..slot]."""
        i = slot + 1
        total = 0
        while i > 0:
            total += self._tree[i]
            i -= i & -i
        return total

    def _rebuild(self) -> None:
        """Re-pack alive entries into a fresh tree, dropping dead slots.

        ``self._seq`` iterates in insertion (= arrival) order, so the
        re-assigned slots preserve queue positions exactly.
        """
        alive = list(self._seq.items())
        self._capacity = max(_MIN_SLOTS, 2 * len(alive))
        self._tree = [0] * (self._capacity + 1)
        self._base = self._next_seq
        for request_id, _old_seq in alive:
            seq = self._next_seq
            self._next_seq += 1
            self._seq[request_id] = seq
            self._add(seq - self._base, 1)
        self._dead_slots = 0
        self.counters["compactions"] += 1

    # -- pending-request path -------------------------------------------------
    def enqueue(self, request_id: str) -> None:
        self.counters["enqueue"] += 1
        if self._next_seq - self._base >= self._capacity:
            self._rebuild()
        seq = self._next_seq
        self._next_seq += 1
        self._seq[request_id] = seq
        self._add(seq - self._base, 1)
        self._count += 1

    def finish(self, request_id: str) -> None:
        """Drop a request and every object binding it accumulated."""
        self.counters["finish"] += 1
        seq = self._seq.pop(request_id, None)
        if seq is None:
            return
        self._add(seq - self._base, -1)
        self._count -= 1
        self._dead_slots += 1
        for object_id in self._request_objects.pop(request_id, ()):
            if self._object_request.get(object_id) == request_id:
                del self._object_request[object_id]
        if self._dead_slots > max(_MIN_SLOTS, 2 * self._count):
            self._rebuild()

    def bind_object(self, object_id: str, request_id: str) -> None:
        self.counters["bind"] += 1
        self._object_request[object_id] = request_id
        self._request_objects.setdefault(request_id, []).append(object_id)

    def position_of(self, object_id: str) -> Optional[int]:
        """Queue index of the object's pending consumer, or ``None``."""
        self.counters["position"] += 1
        request_id = self._object_request.get(object_id)
        if request_id is None:
            return None
        seq = self._seq.get(request_id)
        if seq is None:
            return None
        return self._prefix(seq - self._base) - 1

    @property
    def depth(self) -> int:
        return self._count

    @property
    def bound_objects(self) -> int:
        """Live object->request bindings (0 once every request drains)."""
        return len(self._object_request)


class StageQueue:
    """Depth-tracked admission gate in front of one stage's replicas."""

    def __init__(
        self,
        env: Environment,
        stage: str,
        policy: str = "fifo",
        maxsize: Optional[int] = None,
    ) -> None:
        if policy not in ("fifo", "priority"):
            raise SchedulingError(f"unknown stage queue policy {policy!r}")
        if maxsize is not None and maxsize < 1:
            raise SchedulingError("stage queue maxsize must be >= 1")
        self.env = env
        self.stage = stage
        self.policy = policy
        self.maxsize = maxsize
        self._depth = 0
        self._seq = 0
        self._waiting: list[tuple[float, int, Event]] = []
        self.total_entered = 0
        self.peak_depth = 0

    def _publish_depth(self) -> None:
        """Sample the queue's occupancy onto the bus (counter track)."""
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(StageQueueDepth(
                t=self.env.now,
                stage=self.stage,
                depth=self._depth,
                backlog=len(self._waiting),
            ))

    def enter(self, priority: float = 0.0) -> Optional[Event]:
        """Claim a slot; returns ``None`` if granted now, else an event.

        Callers yield the returned event (backpressure) and own a slot
        once it fires; every granted slot must be returned via
        :meth:`leave`.  FIFO mode ignores *priority* so arrival order
        is preserved.
        """
        self.total_entered += 1
        if self.maxsize is None or self._depth < self.maxsize:
            self._depth += 1
            self.peak_depth = max(self.peak_depth, self._depth)
            self._publish_depth()
            return None
        key = priority if self.policy == "priority" else 0.0
        event = self.env.event()
        heapq.heappush(self._waiting, (key, self._seq, event))
        self._seq += 1
        self._publish_depth()
        return event

    def leave(self) -> None:
        """Return a slot, handing it to the next waiter if any."""
        if self._depth <= 0:
            raise SchedulingError(f"leave() without enter() on {self.stage}")
        self._depth -= 1
        if self._waiting:
            _key, _seq, event = heapq.heappop(self._waiting)
            self._depth += 1
            event.succeed()
        self._publish_depth()

    @property
    def depth(self) -> int:
        """Requests currently inside the stage (waiting + executing)."""
        return self._depth

    @property
    def backlog(self) -> int:
        """Requests parked behind a full queue (maxsize mode only)."""
        return len(self._waiting)
