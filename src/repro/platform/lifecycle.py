"""Request lifecycle: states, per-stage records, telemetry ownership.

A request moves through an explicit state machine::

    ARRIVED --> ADMITTED --> (stage spans) --> EGRESS --> FINISHED
        \\--> REJECTED

:class:`RequestLifecycle` owns the transitions, constructs the
:class:`RequestResult` (or the typed
:class:`~repro.platform.admission.RequestRejected` outcome), and is
the single place request-level telemetry is published from — the
engine drives the simulation and calls in; it never touches the bus
directly.  Illegal transitions raise immediately, so a refactor that
reorders the pipeline fails loudly instead of producing silently
misattributed results.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import SimulationError
from repro.platform.admission import RequestRejected
from repro.sim.core import Environment
from repro.telemetry.events import (
    RequestAdmitted,
    RequestArrived,
    RequestFinished,
    StageSpan,
)
from repro.telemetry.events import RequestRejected as RequestRejectedEvent


@dataclass
class StageRecord:
    """Per-stage timing of one request.

    ``egress_time`` is only ever non-zero on exit stages: it holds the
    final drain of that stage's output to host memory, which the seed
    engine used to fold into ``put_time`` (misattributing I/O egress as
    stage data passing).
    """

    stage: str
    get_time: float = 0.0
    compute_time: float = 0.0
    put_time: float = 0.0
    queued_time: float = 0.0
    cold_start: float = 0.0
    input_bytes: float = 0.0
    output_bytes: float = 0.0
    egress_time: float = 0.0


@dataclass
class RequestResult:
    """Outcome of one workflow request."""

    request_id: str
    workflow: str
    arrived_at: float
    finished_at: float
    stage_records: dict[str, StageRecord] = field(default_factory=dict)
    skipped_stages: list[str] = field(default_factory=list)
    slo: Optional[float] = None

    @property
    def latency(self) -> float:
        return self.finished_at - self.arrived_at

    @property
    def compute_time(self) -> float:
        return sum(r.compute_time for r in self.stage_records.values())

    @property
    def egress_time(self) -> float:
        """Time spent draining exit-stage outputs to host memory."""
        return sum(r.egress_time for r in self.stage_records.values())

    @property
    def data_time(self) -> float:
        return sum(
            r.get_time + r.put_time + r.egress_time
            for r in self.stage_records.values()
        )

    @property
    def slo_met(self) -> Optional[bool]:
        if self.slo is None:
            return None
        return self.latency <= self.slo


class RequestState(enum.Enum):
    ARRIVED = "arrived"
    ADMITTED = "admitted"
    EGRESS = "egress"
    FINISHED = "finished"
    REJECTED = "rejected"


_TRANSITIONS: dict[RequestState, tuple[RequestState, ...]] = {
    RequestState.ARRIVED: (RequestState.ADMITTED, RequestState.REJECTED),
    RequestState.ADMITTED: (RequestState.EGRESS,),
    RequestState.EGRESS: (RequestState.FINISHED,),
    RequestState.FINISHED: (),
    RequestState.REJECTED: (),
}


class RequestLifecycle:
    """One request's walk through the pipeline; owns result + telemetry."""

    def __init__(
        self,
        env: Environment,
        request_id: str,
        workflow: str,
        slo: Optional[float] = None,
    ) -> None:
        self.env = env
        self.request_id = request_id
        self.workflow = workflow
        self.state = RequestState.ARRIVED
        self.result = RequestResult(
            request_id=request_id,
            workflow=workflow,
            arrived_at=env.now,
            finished_at=env.now,
            slo=slo,
        )
        bus = env.telemetry
        if bus is not None:
            bus.publish(RequestArrived(
                t=env.now, request_id=request_id, workflow=workflow
            ))

    # -- state machine -------------------------------------------------------
    def _transition(self, to: RequestState) -> None:
        if to not in _TRANSITIONS[self.state]:
            raise SimulationError(
                f"request {self.request_id}: illegal lifecycle transition "
                f"{self.state.value} -> {to.value}"
            )
        self.state = to

    def admit(self, queue_depth: int) -> None:
        self._transition(RequestState.ADMITTED)
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(RequestAdmitted(
                t=self.env.now,
                request_id=self.request_id,
                workflow=self.workflow,
                queue_depth=queue_depth,
            ))

    def reject(self, reason: str) -> RequestRejected:
        self._transition(RequestState.REJECTED)
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(RequestRejectedEvent(
                t=self.env.now,
                request_id=self.request_id,
                workflow=self.workflow,
                reason=reason,
            ))
        return RequestRejected(
            request_id=self.request_id,
            workflow=self.workflow,
            arrived_at=self.result.arrived_at,
            reason=reason,
        )

    def begin_egress(self) -> None:
        self._transition(RequestState.EGRESS)

    def finish(self) -> RequestResult:
        self._transition(RequestState.FINISHED)
        result = self.result
        result.finished_at = self.env.now
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(RequestFinished(
                t=self.env.now,
                request_id=self.request_id,
                workflow=self.workflow,
                latency=result.latency,
                slo_met=result.slo_met,
            ))
        return result

    # -- per-stage accounting ------------------------------------------------
    def begin_stage(self, stage: str) -> StageRecord:
        record = StageRecord(stage=stage)
        self.result.stage_records[stage] = record
        return record

    def skip_stage(self, stage: str) -> None:
        self.result.skipped_stages.append(stage)

    def publish_span(
        self,
        stage: str,
        kind: str,
        start: float,
        device_id: str = "",
        replica: str = "",
    ) -> None:
        """Publish one timed span ending now (no-op without a bus)."""
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(StageSpan(
                t=self.env.now,
                request_id=self.request_id,
                stage=stage,
                kind=kind,
                start=start,
                end=self.env.now,
                device_id=device_id,
                replica=replica,
            ))
