"""The serverless inference platform (INFless-style substrate, §5).

Ties together topology, data plane, placement, pre-warming and the
workflow engine.  A :class:`Deployment` pins one workflow's stages onto
devices; :meth:`ServerlessPlatform.submit` drives one request through
the DAG:

1. the request input lands in host memory (I/O ingress);
2. each stage waits for its (taken) in-edges, ``Get``s every input to
   its own device, executes on its time-shared GPU, and ``Put``s its
   output once for downstream consumers;
3. exit-stage outputs are drained to host memory (egress) — the
   gFn-host leg of Fig. 3's breakdown.

The platform also maintains the pending-request queue that backs
GROUTER's queue-aware eviction oracle (§4.4.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.common.errors import SchedulingError
from repro.common.units import MS
from repro.dataplane.base import DataPlane
from repro.functions.instance import FnContext, FunctionInstance
from repro.functions.spec import (
    SPEED_FACTORS,
    ComputeProfile,
    DeviceKind,
    FunctionSpec,
    OutputModel,
)
from repro.scheduler.placement import (
    PlacementPolicy,
    PlacementResult,
    make_placement,
    publish_placement,
)
from repro.scheduler.prewarm import PrewarmManager
from repro.sim.core import Environment, Process
from repro.sim.resources import Resource
from repro.storage.objects import DataRef
from repro.telemetry.bus import EventBus
from repro.telemetry.events import RequestArrived, RequestFinished, StageSpan
from repro.topology.cluster import ClusterTopology
from repro.topology.devices import Gpu
from repro.topology.node import PCIE3_BW
from repro.traces.azure import Trace
from repro.workflow.dag import Stage, Workflow, WorkloadSpec

INGRESS = "__ingress__"
EGRESS = "__egress__"
SLO_FLOOR_SLACK = 1 * MS


def _io_spec(name: str) -> FunctionSpec:
    return FunctionSpec(
        name=name,
        kind=DeviceKind.CPU,
        compute=ComputeProfile(base_latency=0.0),
        output=OutputModel(),
    )


@dataclass
class StageRecord:
    """Per-stage timing of one request."""

    stage: str
    get_time: float = 0.0
    compute_time: float = 0.0
    put_time: float = 0.0
    queued_time: float = 0.0
    cold_start: float = 0.0
    input_bytes: float = 0.0
    output_bytes: float = 0.0


@dataclass
class RequestResult:
    """Outcome of one workflow request."""

    request_id: str
    workflow: str
    arrived_at: float
    finished_at: float
    stage_records: dict[str, StageRecord] = field(default_factory=dict)
    skipped_stages: list[str] = field(default_factory=list)
    slo: Optional[float] = None

    @property
    def latency(self) -> float:
        return self.finished_at - self.arrived_at

    @property
    def compute_time(self) -> float:
        return sum(r.compute_time for r in self.stage_records.values())

    @property
    def data_time(self) -> float:
        return sum(
            r.get_time + r.put_time for r in self.stage_records.values()
        )

    @property
    def slo_met(self) -> Optional[bool]:
        if self.slo is None:
            return None
        return self.latency <= self.slo


@dataclass
class Deployment:
    """One workflow pinned onto the cluster.

    ``replica_sets`` maps each stage to one or more warm instances
    (autoscaled replicas on distinct GPUs); requests are spread over
    them round-robin.  ``instances`` keeps the first replica of each
    stage for convenience.
    """

    workflow_id: str
    workload: WorkloadSpec
    placement: PlacementResult
    replica_sets: dict[str, list[FunctionInstance]]
    batch: int
    stage_inputs: dict[str, float]  # statically propagated input sizes
    stage_slos: dict[str, float]
    slo: Optional[float]
    # SLO-multiplier-scaled critical path (exec + nominal transfers):
    # the request-level deadline budget used for egress transfers.
    e2e_slo_estimate: float = 0.0
    rng: random.Random = field(default_factory=random.Random)
    ingress: FunctionInstance = None
    egress: FunctionInstance = None
    _dispatch_seq: int = 0

    @property
    def workflow(self) -> Workflow:
        return self.workload.workflow

    @property
    def instances(self) -> dict[str, FunctionInstance]:
        return {name: replicas[0] for name, replicas in self.replica_sets.items()}

    def next_dispatch(self) -> int:
        """Per-request sequence used to spread load over replicas."""
        seq = self._dispatch_seq
        self._dispatch_seq += 1
        return seq

    def instance_for(self, stage_name: str, dispatch: int) -> FunctionInstance:
        replicas = self.replica_sets[stage_name]
        return replicas[dispatch % len(replicas)]


class _PendingQueue:
    """Arrival-ordered pending requests; backs the eviction oracle."""

    def __init__(self) -> None:
        self._pending: list[str] = []
        self._object_request: dict[str, str] = {}

    def enqueue(self, request_id: str) -> None:
        self._pending.append(request_id)

    def finish(self, request_id: str) -> None:
        if request_id in self._pending:
            self._pending.remove(request_id)

    def bind_object(self, object_id: str, request_id: str) -> None:
        self._object_request[object_id] = request_id

    def position_of(self, object_id: str) -> Optional[int]:
        request_id = self._object_request.get(object_id)
        if request_id is None:
            return None
        try:
            return self._pending.index(request_id)
        except ValueError:
            return None

    @property
    def depth(self) -> int:
        return len(self._pending)


class ServerlessPlatform:
    """Deploys workflows and executes requests over a data plane."""

    def __init__(
        self,
        env: Environment,
        cluster: ClusterTopology,
        plane: DataPlane,
        placement: str | PlacementPolicy = "mapa",
        prewarm: bool = True,
        cpu_capacity: int = 32,
        slo_multiplier: float = 1.5,
        gpu_sharing: str = "temporal",
        spatial_slots: int = 2,
        spatial_slowdown: float = 1.3,
    ) -> None:
        self.env = env
        self.cluster = cluster
        self.plane = plane
        if isinstance(placement, str):
            placement = make_placement(placement)
        self.placement_policy = placement
        self.slo_multiplier = slo_multiplier
        self.prewarm_enabled = prewarm
        self.prewarmer = PrewarmManager()
        if gpu_sharing not in ("temporal", "spatial"):
            raise SchedulingError(
                f"unknown gpu_sharing mode {gpu_sharing!r}"
            )
        if spatial_slots < 1 or spatial_slowdown < 1.0:
            raise SchedulingError("invalid spatial sharing parameters")
        self.gpu_sharing = gpu_sharing
        self.spatial_slots = spatial_slots
        self.spatial_slowdown = spatial_slowdown
        slots = spatial_slots if gpu_sharing == "spatial" else 1
        self.gpu_resources: dict[str, Resource] = {
            gpu.device_id: Resource(env, capacity=slots)
            for gpu in cluster.all_gpus()
        }
        self.cpu_resources: dict[str, Resource] = {
            node.node_id: Resource(env, capacity=cpu_capacity)
            for node in cluster.nodes
        }
        self.speed_factor = SPEED_FACTORS.get(
            cluster.nodes[0].spec.name, 1.0
        )
        self.queue = _PendingQueue()
        if hasattr(plane, "queue_oracle"):
            plane.queue_oracle = self.queue
        self._instance_load: dict[str, int] = {}
        self.results: list[RequestResult] = []
        self._tracer = None

    # -- tracing -------------------------------------------------------------
    @property
    def tracer(self):
        """The attached :class:`~repro.tracing.SpanTracer`, or ``None``.

        Assigning a tracer subscribes it to the environment's telemetry
        bus (created on demand): the platform publishes
        :class:`StageSpan` events and the tracer consumes them, so any
        other bus subscriber sees the same spans.  ``None`` (default)
        costs nothing when no bus is attached.
        """
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        if self._tracer is not None:
            self._tracer.detach()
        self._tracer = tracer
        if tracer is not None:
            bus = self.env.telemetry
            if bus is None:
                bus = EventBus()
                self.env.telemetry = bus
            tracer.attach(bus)

    def _publish_span(
        self,
        request_id: str,
        stage: str,
        kind: str,
        start: float,
        device_id: str = "",
    ) -> None:
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(StageSpan(
                t=self.env.now,
                request_id=request_id,
                stage=stage,
                kind=kind,
                start=start,
                end=self.env.now,
                device_id=device_id,
            ))

    # -- deployment -----------------------------------------------------------
    def deploy(
        self,
        workload: WorkloadSpec,
        workflow_id: Optional[str] = None,
        batch: Optional[int] = None,
        allowed_gpus: Optional[Sequence[Gpu]] = None,
        slo: Optional[float] = None,
        seed: int = 0,
        replicas: int = 1,
        slo_multiplier: Optional[float] = None,
    ) -> Deployment:
        """Place and instantiate every stage of *workload*.

        ``replicas > 1`` provisions that many warm instances per stage
        (each placed independently); requests fan over them round-robin
        — the simple horizontal autoscaling of serverless platforms.

        ``slo_multiplier`` overrides the platform default for this
        deployment: latency-critical services run tight multipliers,
        throughput-oriented ones looser, which is what steers GROUTER's
        SLO-gated bandwidth allocation between co-located workflows.
        """
        if replicas < 1:
            raise SchedulingError(f"replicas must be >= 1, got {replicas}")
        workflow = workload.workflow
        workflow_id = workflow_id or f"wf-{workflow.name}"
        batch = batch if batch is not None else workload.default_batch
        replica_sets: dict[str, list[FunctionInstance]] = {
            stage.name: [] for stage in workflow.topological_order()
        }
        placement = None
        for _replica in range(replicas):
            placement = self.placement_policy.place(
                workflow,
                self.cluster,
                load=self._instance_load,
                allowed_gpus=allowed_gpus,
            )
            publish_placement(
                self.env, self.placement_policy, workflow, placement
            )
            for stage in workflow.topological_order():
                replica_sets[stage.name].append(
                    self._instantiate(stage, placement)
                )
        self.plane.acl.register_workflow(
            workflow_id, workflow.function_names() + [INGRESS, EGRESS]
        )
        stage_inputs = self._propagate_sizes(workload, batch)
        multiplier = (
            slo_multiplier if slo_multiplier is not None
            else self.slo_multiplier
        )
        stage_slos = self._stage_slos(
            workflow, stage_inputs, batch, multiplier
        )
        entry_node = replica_sets[workflow.entry_stages[0].name][0].node
        ingress = FunctionInstance(self.env, _io_spec(INGRESS), entry_node)
        egress = FunctionInstance(self.env, _io_spec(EGRESS), entry_node)
        finish: dict[str, float] = {}
        for stage in workflow.topological_order():
            preds = workflow.predecessors(stage.name)
            start = max((finish[p] for p in preds), default=0.0)
            finish[stage.name] = start + stage_slos[stage.name]
        e2e_slo_estimate = max(finish.values())
        deployment = Deployment(
            workflow_id=workflow_id,
            workload=workload,
            placement=placement,
            replica_sets=replica_sets,
            batch=batch,
            stage_inputs=stage_inputs,
            stage_slos=stage_slos,
            slo=slo,
            e2e_slo_estimate=e2e_slo_estimate,
            rng=random.Random(seed),
            ingress=ingress,
            egress=egress,
        )
        if self.prewarm_enabled:
            for replicas_list in replica_sets.values():
                for instance in replicas_list:
                    self.prewarmer.prewarm(instance.instance_id, self.env.now)
        return deployment

    def _instantiate(
        self, stage: Stage, placement: PlacementResult
    ) -> FunctionInstance:
        if stage.spec.is_gpu:
            device_id = placement.gpu_of(stage.name)
            gpu = self.cluster.gpu(device_id)
            node = self.cluster.node_of_device(device_id)
            effective_speed = self.speed_factor
            if self.gpu_sharing == "spatial":
                # Concurrent kernels interfere: each spatial tenant
                # runs slower than a temporally exclusive one.
                effective_speed = self.speed_factor / self.spatial_slowdown
            instance = FunctionInstance(
                self.env,
                stage.spec,
                node,
                gpu=gpu,
                gpu_resource=self.gpu_resources[device_id],
                speed_factor=effective_speed,
                alias=stage.name,
            )
            # Warm instances hold their model weights on the device.
            self.plane.device_memory[device_id].reserve(
                f"weights:{instance.instance_id}", stage.spec.memory_footprint
            )
            self._instance_load[device_id] = (
                self._instance_load.get(device_id, 0) + 1
            )
        else:
            node = self.cluster.nodes[0]
            instance = FunctionInstance(
                self.env,
                stage.spec,
                node,
                cpu_resource=self.cpu_resources[node.node_id],
                alias=stage.name,
            )
        return instance

    # -- static size/SLO propagation -------------------------------------------
    def _propagate_sizes(
        self, workload: WorkloadSpec, batch: int
    ) -> dict[str, float]:
        """Expected input bytes per stage, ignoring branch probability."""
        workflow = workload.workflow
        inputs: dict[str, float] = {}
        outputs: dict[str, float] = {}
        for stage in workflow.topological_order():
            preds = workflow.predecessors(stage.name)
            if not preds:
                size = workload.input_size(batch)
            else:
                size = sum(
                    outputs[p] * workflow.edge(p, stage.name).fraction
                    for p in preds
                )
            inputs[stage.name] = size
            outputs[stage.name] = stage.spec.output_size(batch, size)
        return inputs

    def _stage_slos(
        self,
        workflow: Workflow,
        stage_inputs: dict[str, float],
        batch: int,
        multiplier: Optional[float] = None,
    ) -> dict[str, float]:
        """Per-stage SLO: multiplier x (profiled exec + nominal transfer)."""
        if multiplier is None:
            multiplier = self.slo_multiplier
        slos = {}
        for stage in workflow.topological_order():
            exec_latency = stage.spec.execution_latency(
                batch, stage_inputs[stage.name], self.speed_factor
            )
            transfer = stage_inputs[stage.name] / PCIE3_BW
            slos[stage.name] = multiplier * (exec_latency + transfer)
        return slos

    def estimated_critical_path(self, deployment: Deployment) -> float:
        """Sum of profiled exec latencies along the longest path."""
        workflow = deployment.workflow
        finish: dict[str, float] = {}
        for stage in workflow.topological_order():
            exec_latency = stage.spec.execution_latency(
                deployment.batch,
                deployment.stage_inputs[stage.name],
                self.speed_factor,
            )
            preds = workflow.predecessors(stage.name)
            start = max((finish[p] for p in preds), default=0.0)
            finish[stage.name] = start + exec_latency
        return max(finish.values())

    # -- request execution ---------------------------------------------------
    def submit(self, deployment: Deployment) -> Process:
        """Run one request through the workflow; yields a RequestResult."""
        request_id = self.plane.ids.next("req")
        return self.env.process(self._run_request(deployment, request_id))

    def _run_request(self, deployment: Deployment, request_id: str):
        arrived = self.env.now
        dispatch = deployment.next_dispatch()
        self.queue.enqueue(request_id)
        workflow = deployment.workflow
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(RequestArrived(
                t=arrived, request_id=request_id, workflow=workflow.name
            ))
        result = RequestResult(
            request_id=request_id,
            workflow=workflow.name,
            arrived_at=arrived,
            finished_at=arrived,
            slo=deployment.slo,
        )

        # Ingress: the request payload lands in host memory via I/O.
        entries = workflow.entry_stages
        ingress_ref = self.plane.ingress_put(
            deployment.ingress.node.node_id,
            deployment.workload.input_size(deployment.batch),
            deployment.workflow_id,
            expected_consumers=len(entries),
        )
        self.queue.bind_object(ingress_ref.object_id, request_id)

        done_events = {
            name: self.env.event() for name in workflow.stages
        }
        for stage in workflow.topological_order():
            self.env.process(
                self._run_stage(
                    deployment, request_id, stage, ingress_ref,
                    done_events, result, dispatch,
                )
            )
        exit_events = [done_events[s.name] for s in workflow.exit_stages]
        yield self.env.all_of(exit_events)

        # Egress: drain every exit stage's output to host memory.  The
        # drain shares the request's end-to-end deadline so SLO-gated
        # scheduling does not starve it behind foreground transfers.
        egress_deadline = arrived + (
            deployment.slo
            if deployment.slo is not None
            else deployment.e2e_slo_estimate
        )
        egress_ctx = FnContext(
            deployment.egress, deployment.workflow_id, request_id,
            slo_deadline=egress_deadline,
        )
        for exit_stage in workflow.exit_stages:
            payload = done_events[exit_stage.name].value
            if payload is None:
                continue
            started = self.env.now
            yield self.plane.get(egress_ctx, payload)
            record = result.stage_records[exit_stage.name]
            record.put_time += self.env.now - started
        result.finished_at = self.env.now
        self.queue.finish(request_id)
        self.results.append(result)
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(RequestFinished(
                t=self.env.now,
                request_id=request_id,
                workflow=workflow.name,
                latency=result.latency,
                slo_met=result.slo_met,
            ))
        return result

    def _run_stage(
        self,
        deployment: Deployment,
        request_id: str,
        stage: Stage,
        ingress_ref: DataRef,
        done_events: dict,
        result: RequestResult,
        dispatch: int = 0,
    ):
        workflow = deployment.workflow
        preds = workflow.predecessors(stage.name)
        inputs: list[DataRef] = []
        if not preds:
            inputs.append(ingress_ref)
        else:
            yield self.env.all_of([done_events[p] for p in preds])
            for pred in preds:
                upstream = done_events[pred].value
                if upstream is None:
                    continue  # upstream skipped
                edge = workflow.edge(pred, stage.name)
                if deployment.rng.random() <= edge.probability:
                    inputs.append(upstream)
                else:
                    # Branch not taken: release our claim on the data.
                    self.plane.release_claim(upstream)
            if not inputs:
                result.skipped_stages.append(stage.name)
                done_events[stage.name].succeed(None)
                return

        instance = deployment.instance_for(stage.name, dispatch)
        record = StageRecord(stage=stage.name)
        result.stage_records[stage.name] = record
        stage_slo = deployment.stage_slos[stage.name]
        exec_estimate = instance.execution_latency(
            deployment.batch, deployment.stage_inputs[stage.name]
        )

        # Acquire the device slot FIRST: inputs are fetched when the
        # function instance actually starts, so intermediate data waits
        # in storage while the invocation is queued (paper Fig. 11).
        if instance.is_gpu:
            resource = self.gpu_resources[instance.device_id]
        else:
            resource = self.cpu_resources[instance.node.node_id]
        ready_at = self.env.now
        slot = resource.request()
        yield slot
        record.queued_time = self.env.now - ready_at
        if record.queued_time > 0:
            self._publish_span(
                request_id, stage.name, "queue", ready_at,
                instance.device_id,
            )

        # The transfer deadline reflects the slack the invocation has
        # *now* (queueing already consumed its share): this is what
        # SLO-gated rate control keys on (§4.3.2).
        deadline = self.env.now + max(
            stage_slo - exec_estimate, SLO_FLOOR_SLACK
        )
        ctx = FnContext(
            instance, deployment.workflow_id, request_id,
            slo_deadline=deadline,
        )
        try:
            # Fetch all inputs in parallel.
            t_get = self.env.now
            gets = [self.plane.get(ctx, ref) for ref in inputs]
            yield self.env.all_of(gets)
            record.get_time = self.env.now - t_get
            record.input_bytes = sum(ref.size for ref in inputs)
            self._publish_span(
                request_id, stage.name, "get", t_get, instance.device_id
            )

            # Cold start penalty (container + model load) if not warm.
            if self.prewarm_enabled:
                penalty = self.prewarmer.startup_penalty(
                    instance.instance_id, self.env.now,
                    stage.spec.memory_footprint,
                )
            else:
                penalty = 0.0
            if penalty > 0:
                record.cold_start = penalty
                t_cold = self.env.now
                yield self.env.timeout(penalty)
                self._publish_span(
                    request_id, stage.name, "cold-start", t_cold,
                    instance.device_id,
                )

            t_exec = self.env.now
            execution = yield instance.execute_held(
                deployment.batch, record.input_bytes
            )
            record.compute_time = execution.duration
            self._publish_span(
                request_id, stage.name, "exec", t_exec, instance.device_id
            )

            # Publish the output for downstream consumers.
            out_edges = workflow.out_edges(stage.name)
            consumers = len(out_edges) if out_edges else 1
            output_size = stage.spec.output_size(
                deployment.batch, record.input_bytes
            )
            record.output_bytes = output_size
            t_put = self.env.now
            ref = yield self.plane.put(
                ctx, output_size, expected_consumers=consumers
            )
            record.put_time = self.env.now - t_put
            self._publish_span(
                request_id, stage.name, "put", t_put, instance.device_id
            )
        finally:
            resource.release(slot)
        self.queue.bind_object(ref.object_id, request_id)
        done_events[stage.name].succeed(ref)

    # -- trace replay ------------------------------------------------------------
    def run_trace(
        self,
        deployment: Deployment,
        trace: Trace,
        drain: float = 60.0,
    ) -> list[RequestResult]:
        """Replay *trace* against *deployment* and return its results."""
        procs: list[Process] = []

        def driver():
            for arrival in trace:
                if arrival > self.env.now:
                    yield self.env.timeout(arrival - self.env.now)
                procs.append(self.submit(deployment))

        self.env.process(driver())
        horizon = self.env.now + trace.config.duration + drain
        self.env.run(until=horizon)
        return [p.value for p in procs if p.triggered and p.ok]

    def run_traces(
        self,
        runs: list[tuple[Deployment, Trace]],
        drain: float = 60.0,
    ) -> dict[str, list[RequestResult]]:
        """Replay several traces concurrently (interference studies)."""
        all_procs: dict[str, list[Process]] = {}

        def driver(deployment, trace):
            start = self.env.now
            procs = all_procs.setdefault(deployment.workflow_id, [])
            for arrival in trace:
                target = start + arrival
                if target > self.env.now:
                    yield self.env.timeout(target - self.env.now)
                procs.append(self.submit(deployment))

        for deployment, trace in runs:
            self.env.process(driver(deployment, trace))
        horizon = self.env.now + max(
            trace.config.duration for _d, trace in runs
        ) + drain
        self.env.run(until=horizon)
        return {
            wf: [p.value for p in procs if p.triggered and p.ok]
            for wf, procs in all_procs.items()
        }


def build_platform(
    preset: str = "dgx-v100",
    num_nodes: int = 1,
    plane_name: str = "grouter",
    placement: str = "mapa",
    plane_kwargs: Optional[dict] = None,
    **platform_kwargs,
) -> ServerlessPlatform:
    """One-call construction of env + cluster + plane + platform."""
    from repro.dataplane import make_plane
    from repro.topology import make_cluster

    env = Environment()
    cluster = make_cluster(preset, num_nodes=num_nodes)
    plane = make_plane(plane_name, env, cluster, **(plane_kwargs or {}))
    return ServerlessPlatform(
        env, cluster, plane, placement=placement, **platform_kwargs
    )
