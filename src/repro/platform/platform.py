"""The serverless inference platform (INFless-style substrate, §5).

Ties together topology, data plane, placement, pre-warming and the
workflow engine.  Since the lifecycle refactor the request path is an
explicit pipeline of composable pieces, each in its own module:

- :mod:`repro.platform.admission` — concurrency caps and token-bucket
  load shedding in front of the queue (default: unlimited);
- :mod:`repro.platform.queueing` — the indexed pending-request
  structure backing GROUTER's eviction oracle, plus per-stage
  FIFO/priority queues with optional backpressure;
- :mod:`repro.platform.lifecycle` — the ARRIVED → ADMITTED → stage
  spans → EGRESS → FINISHED/REJECTED state machine that owns
  :class:`RequestResult` construction and telemetry;
- :mod:`repro.platform.dispatch` — replica selection policies
  (round-robin, least-outstanding, queue-depth-aware);
- :mod:`repro.platform.scaling` — pluggable autoscaling of per-stage
  replica sets against queue depth.

This module keeps the engine: :class:`Deployment` pins one workflow's
stages onto devices; :meth:`ServerlessPlatform.submit` drives one
request through the DAG:

1. admission control accepts (or sheds) the arrival;
2. the request input lands in host memory (I/O ingress);
3. each stage waits for its (taken) in-edges, enters its stage queue,
   ``Get``s every input to its own device, executes on its time-shared
   GPU, and ``Put``s its output once for downstream consumers;
4. exit-stage outputs are drained to host memory (egress) — the
   gFn-host leg of Fig. 3's breakdown, accounted separately in
   ``RequestResult.egress_time``.

With the default policies (unlimited admission, FIFO stage queues,
round-robin dispatch, no autoscaler) the engine's event sequence is
bit-identical to the pre-refactor monolith; ``tests/platform/
test_differential.py`` pins that against golden seed outputs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence, Union

from repro.common.errors import SchedulingError
from repro.common.units import MS
from repro.dataplane.base import DataPlane
from repro.functions.instance import FnContext, FunctionInstance
from repro.functions.spec import (
    SPEED_FACTORS,
    ComputeProfile,
    DeviceKind,
    FunctionSpec,
    OutputModel,
)
from repro.platform.admission import (
    AdmissionConfig,
    AdmissionController,
    RequestRejected,
)
from repro.platform.dispatch import DispatchPolicy, make_dispatch
from repro.platform.lifecycle import (
    RequestLifecycle,
    RequestResult,
    StageRecord,
)
from repro.platform.queueing import PendingQueue, StageQueue
from repro.platform.scaling import Autoscaler, make_autoscaler
from repro.scheduler.placement import (
    PlacementPolicy,
    PlacementResult,
    make_placement,
    publish_placement,
)
from repro.scheduler.prewarm import PrewarmManager
from repro.sim.core import Environment, Process
from repro.sim.resources import Resource
from repro.storage.objects import DataRef
from repro.telemetry.bus import EventBus
from repro.telemetry.events import AdmissionTokens, ReplicaScaled
from repro.topology.cluster import ClusterTopology
from repro.topology.devices import Gpu
from repro.topology.node import PCIE3_BW
from repro.traces.azure import Trace
from repro.workflow.dag import Stage, Workflow, WorkloadSpec

__all__ = [
    "Deployment",
    "RequestResult",
    "ServerlessPlatform",
    "StageRecord",
    "build_platform",
]

INGRESS = "__ingress__"
EGRESS = "__egress__"
SLO_FLOOR_SLACK = 1 * MS


def _io_spec(name: str) -> FunctionSpec:
    return FunctionSpec(
        name=name,
        kind=DeviceKind.CPU,
        compute=ComputeProfile(base_latency=0.0),
        output=OutputModel(),
    )


@dataclass
class Deployment:
    """One workflow pinned onto the cluster.

    ``replica_sets`` maps each stage to one or more warm instances
    (autoscaled replicas on distinct GPUs); the platform's dispatch
    policy spreads requests over them.  ``stage_queues`` gate entry to
    each stage's replica set.  ``instances`` keeps the first replica
    of each stage for convenience.
    """

    workflow_id: str
    workload: WorkloadSpec
    placement: PlacementResult
    replica_sets: dict[str, list[FunctionInstance]]
    batch: int
    stage_inputs: dict[str, float]  # statically propagated input sizes
    stage_slos: dict[str, float]
    slo: Optional[float]
    # SLO-multiplier-scaled critical path (exec + nominal transfers):
    # the request-level deadline budget used for egress transfers.
    e2e_slo_estimate: float = 0.0
    rng: random.Random = field(default_factory=random.Random)
    ingress: FunctionInstance = None
    egress: FunctionInstance = None
    stage_queues: dict[str, StageQueue] = field(default_factory=dict)
    _dispatch_seq: int = 0

    @property
    def workflow(self) -> Workflow:
        return self.workload.workflow

    @property
    def instances(self) -> dict[str, FunctionInstance]:
        return {name: replicas[0] for name, replicas in self.replica_sets.items()}

    def next_dispatch(self) -> int:
        """Per-request sequence used to spread load over replicas."""
        seq = self._dispatch_seq
        self._dispatch_seq += 1
        return seq

    def instance_for(self, stage_name: str, dispatch: int) -> FunctionInstance:
        """Round-robin replica lookup (kept for compatibility)."""
        replicas = self.replica_sets[stage_name]
        return replicas[dispatch % len(replicas)]


class ServerlessPlatform:
    """Deploys workflows and executes requests over a data plane."""

    def __init__(
        self,
        env: Environment,
        cluster: ClusterTopology,
        plane: DataPlane,
        placement: str | PlacementPolicy = "mapa",
        prewarm: bool = True,
        cpu_capacity: int = 32,
        slo_multiplier: float = 1.5,
        gpu_sharing: str = "temporal",
        spatial_slots: int = 2,
        spatial_slowdown: float = 1.3,
        admission: Union[AdmissionConfig, AdmissionController, None] = None,
        dispatch: str | DispatchPolicy = "round-robin",
        autoscaler: Union[str, Autoscaler, None] = None,
        queue_policy: str = "fifo",
        stage_queue_limit: Optional[int] = None,
        result_sink: Optional[Callable[[RequestResult], None]] = None,
        keep_results: bool = True,
    ) -> None:
        self.env = env
        self.cluster = cluster
        self.plane = plane
        if isinstance(placement, str):
            placement = make_placement(placement)
        self.placement_policy = placement
        self.slo_multiplier = slo_multiplier
        self.prewarm_enabled = prewarm
        self.prewarmer = PrewarmManager()
        if gpu_sharing not in ("temporal", "spatial"):
            raise SchedulingError(
                f"unknown gpu_sharing mode {gpu_sharing!r}"
            )
        if spatial_slots < 1 or spatial_slowdown < 1.0:
            raise SchedulingError("invalid spatial sharing parameters")
        if queue_policy not in ("fifo", "priority"):
            raise SchedulingError(
                f"unknown stage queue policy {queue_policy!r}"
            )
        self.gpu_sharing = gpu_sharing
        self.spatial_slots = spatial_slots
        self.spatial_slowdown = spatial_slowdown
        slots = spatial_slots if gpu_sharing == "spatial" else 1
        self.gpu_resources: dict[str, Resource] = {
            gpu.device_id: Resource(env, capacity=slots)
            for gpu in cluster.all_gpus()
        }
        self.cpu_resources: dict[str, Resource] = {
            node.node_id: Resource(env, capacity=cpu_capacity)
            for node in cluster.nodes
        }
        self.speed_factor = SPEED_FACTORS.get(
            cluster.nodes[0].spec.name, 1.0
        )
        # -- lifecycle pipeline pieces ------------------------------------
        if admission is None:
            admission = AdmissionController()
        elif isinstance(admission, AdmissionConfig):
            admission = AdmissionController(admission)
        self.admission = admission
        if isinstance(dispatch, str):
            dispatch = make_dispatch(dispatch)
        self.dispatch = dispatch
        if isinstance(autoscaler, str):
            autoscaler = make_autoscaler(autoscaler)
        self.autoscaler = autoscaler
        self.queue_policy = queue_policy
        self.stage_queue_limit = stage_queue_limit
        self.queue = PendingQueue()
        plane.attach_queue_oracle(self.queue)
        self._instance_load: dict[str, int] = {}
        # Result retirement: with a result_sink and keep_results=False,
        # every completed RequestResult is folded into the sink and
        # dropped, so memory stays flat in request count.  The default
        # (no sink, keep_results=True) materializes the full lists the
        # experiments assert on.
        self.result_sink = result_sink
        self.keep_results = keep_results
        if not keep_results:
            # The plane's per-transfer accounting records are the other
            # per-request list; a streaming run drops them too (exact
            # byte/copy counters survive, latency distributions do not).
            plane.metrics.keep_records = False
        self.results: list[RequestResult] = []
        self.rejections: list[RequestRejected] = []
        self.completed_count = 0
        self.rejection_count = 0
        self._tracer = None

    # -- tracing -------------------------------------------------------------
    @property
    def tracer(self):
        """The attached :class:`~repro.tracing.SpanTracer`, or ``None``.

        Assigning a tracer subscribes it to the environment's telemetry
        bus (created on demand): the lifecycle publishes
        :class:`StageSpan` events and the tracer consumes them, so any
        other bus subscriber sees the same spans.  ``None`` (default)
        costs nothing when no bus is attached.
        """
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        if self._tracer is not None:
            self._tracer.detach()
        self._tracer = tracer
        if tracer is not None:
            bus = self.env.telemetry
            if bus is None:
                bus = EventBus()
                self.env.telemetry = bus
            tracer.attach(bus)

    # -- deployment -----------------------------------------------------------
    def deploy(
        self,
        workload: WorkloadSpec,
        workflow_id: Optional[str] = None,
        batch: Optional[int] = None,
        allowed_gpus: Optional[Sequence[Gpu]] = None,
        slo: Optional[float] = None,
        seed: int = 0,
        replicas: int = 1,
        slo_multiplier: Optional[float] = None,
    ) -> Deployment:
        """Place and instantiate every stage of *workload*.

        ``replicas > 1`` provisions that many warm instances per stage
        (each placed independently); the dispatch policy fans requests
        over them — the simple horizontal autoscaling of serverless
        platforms, which the pluggable autoscaler can later grow or
        shrink per stage.

        ``slo_multiplier`` overrides the platform default for this
        deployment: latency-critical services run tight multipliers,
        throughput-oriented ones looser, which is what steers GROUTER's
        SLO-gated bandwidth allocation between co-located workflows.
        """
        if replicas < 1:
            raise SchedulingError(f"replicas must be >= 1, got {replicas}")
        workflow = workload.workflow
        workflow_id = workflow_id or f"wf-{workflow.name}"
        batch = batch if batch is not None else workload.default_batch
        replica_sets: dict[str, list[FunctionInstance]] = {
            stage.name: [] for stage in workflow.topological_order()
        }
        placement = None
        for _replica in range(replicas):
            placement = self.placement_policy.place(
                workflow,
                self.cluster,
                load=self._instance_load,
                allowed_gpus=allowed_gpus,
            )
            publish_placement(
                self.env, self.placement_policy, workflow, placement
            )
            for stage in workflow.topological_order():
                replica_sets[stage.name].append(
                    self._instantiate(stage, placement)
                )
        self.plane.acl.register_workflow(
            workflow_id, workflow.function_names() + [INGRESS, EGRESS]
        )
        stage_inputs = self._propagate_sizes(workload, batch)
        multiplier = (
            slo_multiplier if slo_multiplier is not None
            else self.slo_multiplier
        )
        stage_slos = self._stage_slos(
            workflow, stage_inputs, batch, multiplier
        )
        entry_node = replica_sets[workflow.entry_stages[0].name][0].node
        ingress = FunctionInstance(self.env, _io_spec(INGRESS), entry_node)
        egress = FunctionInstance(self.env, _io_spec(EGRESS), entry_node)
        finish: dict[str, float] = {}
        for stage in workflow.topological_order():
            preds = workflow.predecessors(stage.name)
            start = max((finish[p] for p in preds), default=0.0)
            finish[stage.name] = start + stage_slos[stage.name]
        e2e_slo_estimate = max(finish.values())
        stage_queues = {
            stage.name: StageQueue(
                self.env,
                stage.name,
                policy=self.queue_policy,
                maxsize=self.stage_queue_limit,
            )
            for stage in workflow.topological_order()
        }
        deployment = Deployment(
            workflow_id=workflow_id,
            workload=workload,
            placement=placement,
            replica_sets=replica_sets,
            batch=batch,
            stage_inputs=stage_inputs,
            stage_slos=stage_slos,
            slo=slo,
            e2e_slo_estimate=e2e_slo_estimate,
            rng=random.Random(seed),
            ingress=ingress,
            egress=egress,
            stage_queues=stage_queues,
        )
        if self.prewarm_enabled:
            for replicas_list in replica_sets.values():
                for instance in replicas_list:
                    self.prewarmer.prewarm(instance.instance_id, self.env.now)
        return deployment

    def _instantiate(
        self, stage: Stage, placement: PlacementResult
    ) -> FunctionInstance:
        if stage.spec.is_gpu:
            device_id = placement.gpu_of(stage.name)
            gpu = self.cluster.gpu(device_id)
            node = self.cluster.node_of_device(device_id)
            effective_speed = self.speed_factor
            if self.gpu_sharing == "spatial":
                # Concurrent kernels interfere: each spatial tenant
                # runs slower than a temporally exclusive one.
                effective_speed = self.speed_factor / self.spatial_slowdown
            instance = FunctionInstance(
                self.env,
                stage.spec,
                node,
                gpu=gpu,
                gpu_resource=self.gpu_resources[device_id],
                speed_factor=effective_speed,
                alias=stage.name,
            )
            # Warm instances hold their model weights on the device.
            self.plane.device_memory[device_id].reserve(
                f"weights:{instance.instance_id}", stage.spec.memory_footprint
            )
            self._instance_load[device_id] = (
                self._instance_load.get(device_id, 0) + 1
            )
        else:
            node = self.cluster.nodes[0]
            instance = FunctionInstance(
                self.env,
                stage.spec,
                node,
                cpu_resource=self.cpu_resources[node.node_id],
                alias=stage.name,
            )
        instance.keep_executions = self.keep_results
        return instance

    # -- replica scaling -------------------------------------------------------
    def scale_stage(
        self, deployment: Deployment, stage_name: str, delta: int
    ) -> int:
        """Grow (+delta) or shrink (-delta) one stage's replica set.

        Growth places each new replica with the platform's placement
        policy (weights reserved, pre-warmed when enabled); shrinking
        decommissions the newest replicas, releasing their weight
        reservations — in-flight work on a removed replica completes,
        it just stops receiving dispatches.  The set never drops below
        one replica.  Returns the new replica count.
        """
        replicas = deployment.replica_sets[stage_name]
        if delta == 0:
            return len(replicas)
        workflow = deployment.workflow
        stage = workflow.stages[stage_name]
        if delta > 0:
            for _ in range(delta):
                placement = self.placement_policy.place(
                    workflow, self.cluster, load=self._instance_load
                )
                publish_placement(
                    self.env, self.placement_policy, workflow, placement
                )
                instance = self._instantiate(stage, placement)
                if self.prewarm_enabled:
                    self.prewarmer.prewarm(instance.instance_id, self.env.now)
                replicas.append(instance)
        else:
            for _ in range(-delta):
                if len(replicas) <= 1:
                    break
                self._decommission(replicas.pop(), stage)
        bus = self.env.telemetry
        if bus is not None:
            queue = deployment.stage_queues.get(stage_name)
            bus.publish(ReplicaScaled(
                t=self.env.now,
                workflow=deployment.workflow_id,
                stage=stage_name,
                delta=delta,
                replicas=len(replicas),
                queue_depth=queue.depth if queue is not None else 0,
            ))
        return len(replicas)

    def _decommission(self, instance: FunctionInstance, stage: Stage) -> None:
        self.prewarmer.forget(instance.instance_id)
        if instance.is_gpu:
            device_id = instance.device_id
            self.plane.device_memory[device_id].release(
                f"weights:{instance.instance_id}",
                stage.spec.memory_footprint,
            )
            self._instance_load[device_id] = max(
                0, self._instance_load.get(device_id, 0) - 1
            )

    def _autoscale(self, deployment: Deployment, stage_name: str) -> None:
        queue = deployment.stage_queues[stage_name]
        replicas = deployment.replica_sets[stage_name]
        delta = self.autoscaler.desired_delta(
            f"{deployment.workflow_id}/{stage_name}",
            len(replicas),
            queue.depth,
            self.env.now,
        )
        if delta:
            self.scale_stage(deployment, stage_name, delta)

    def _device_load(self, instance: FunctionInstance) -> float:
        """Run-queue depth of the device an instance executes on."""
        if instance.is_gpu:
            resource = self.gpu_resources[instance.device_id]
        else:
            resource = self.cpu_resources[instance.node.node_id]
        return resource.count + resource.queue_len

    # -- static size/SLO propagation -------------------------------------------
    def _propagate_sizes(
        self, workload: WorkloadSpec, batch: int
    ) -> dict[str, float]:
        """Expected input bytes per stage, ignoring branch probability."""
        workflow = workload.workflow
        inputs: dict[str, float] = {}
        outputs: dict[str, float] = {}
        for stage in workflow.topological_order():
            preds = workflow.predecessors(stage.name)
            if not preds:
                size = workload.input_size(batch)
            else:
                size = sum(
                    outputs[p] * workflow.edge(p, stage.name).fraction
                    for p in preds
                )
            inputs[stage.name] = size
            outputs[stage.name] = stage.spec.output_size(batch, size)
        return inputs

    def _stage_slos(
        self,
        workflow: Workflow,
        stage_inputs: dict[str, float],
        batch: int,
        multiplier: Optional[float] = None,
    ) -> dict[str, float]:
        """Per-stage SLO: multiplier x (profiled exec + nominal transfer)."""
        if multiplier is None:
            multiplier = self.slo_multiplier
        slos = {}
        for stage in workflow.topological_order():
            exec_latency = stage.spec.execution_latency(
                batch, stage_inputs[stage.name], self.speed_factor
            )
            transfer = stage_inputs[stage.name] / PCIE3_BW
            slos[stage.name] = multiplier * (exec_latency + transfer)
        return slos

    def estimated_critical_path(self, deployment: Deployment) -> float:
        """Sum of profiled exec latencies along the longest path."""
        workflow = deployment.workflow
        finish: dict[str, float] = {}
        for stage in workflow.topological_order():
            exec_latency = stage.spec.execution_latency(
                deployment.batch,
                deployment.stage_inputs[stage.name],
                self.speed_factor,
            )
            preds = workflow.predecessors(stage.name)
            start = max((finish[p] for p in preds), default=0.0)
            finish[stage.name] = start + exec_latency
        return max(finish.values())

    # -- request execution ---------------------------------------------------
    def submit(self, deployment: Deployment) -> Process:
        """Run one request through the workflow.

        The process value is a :class:`RequestResult` for requests that
        completed, or a typed
        :class:`~repro.platform.admission.RequestRejected` outcome for
        requests shed by admission control.
        """
        request_id = self.plane.ids.next("req")
        return self.env.process(self._run_request(deployment, request_id))

    def _run_request(self, deployment: Deployment, request_id: str):
        workflow = deployment.workflow
        lifecycle = RequestLifecycle(
            self.env, request_id, workflow.name, slo=deployment.slo
        )

        # Admission: shed before the request consumes any resources.
        reject_reason = self.admission.check(
            deployment.workflow_id, self.env.now, self.queue.depth
        )
        bus = self.env.telemetry
        if bus is not None:
            level = self.admission.bucket_level(deployment.workflow_id)
            if level is not None:
                tokens, burst = level
                bus.publish(AdmissionTokens(
                    t=self.env.now,
                    workflow=deployment.workflow_id,
                    tokens=tokens,
                    burst=burst,
                ))
        if reject_reason is not None:
            outcome = lifecycle.reject(reject_reason)
            self.rejection_count += 1
            if self.keep_results:
                self.rejections.append(outcome)
            return outcome
        dispatch = deployment.next_dispatch()
        self.queue.enqueue(request_id)
        lifecycle.admit(self.queue.depth)
        result = lifecycle.result

        # Ingress: the request payload lands in host memory via I/O.
        entries = workflow.entry_stages
        ingress_ref = self.plane.ingress_put(
            deployment.ingress.node.node_id,
            deployment.workload.input_size(deployment.batch),
            deployment.workflow_id,
            expected_consumers=len(entries),
        )
        self.queue.bind_object(ingress_ref.object_id, request_id)

        done_events = {
            name: self.env.event() for name in workflow.stages
        }
        for stage in workflow.topological_order():
            self.env.process(
                self._run_stage(
                    deployment, lifecycle, stage, ingress_ref,
                    done_events, dispatch,
                )
            )
        exit_events = [done_events[s.name] for s in workflow.exit_stages]
        yield self.env.all_of(exit_events)

        # Egress: drain every exit stage's output to host memory.  The
        # drain shares the request's end-to-end deadline so SLO-gated
        # scheduling does not starve it behind foreground transfers.
        lifecycle.begin_egress()
        egress_deadline = result.arrived_at + (
            deployment.slo
            if deployment.slo is not None
            else deployment.e2e_slo_estimate
        )
        egress_ctx = FnContext(
            deployment.egress, deployment.workflow_id, request_id,
            slo_deadline=egress_deadline,
        )
        for exit_stage in workflow.exit_stages:
            payload = done_events[exit_stage.name].value
            if payload is None:
                continue
            started = self.env.now
            yield self.plane.get(egress_ctx, payload)
            record = result.stage_records[exit_stage.name]
            record.egress_time += self.env.now - started
            lifecycle.publish_span(
                exit_stage.name, "egress", started,
                deployment.egress.device_id,
            )
        self.queue.finish(request_id)
        result = lifecycle.finish()
        self.completed_count += 1
        if self.result_sink is not None:
            self.result_sink(result)
        if self.keep_results:
            self.results.append(result)
        return result

    def _run_stage(
        self,
        deployment: Deployment,
        lifecycle: RequestLifecycle,
        stage: Stage,
        ingress_ref: DataRef,
        done_events: dict,
        dispatch: int = 0,
    ):
        workflow = deployment.workflow
        request_id = lifecycle.request_id
        preds = workflow.predecessors(stage.name)
        inputs: list[DataRef] = []
        if not preds:
            inputs.append(ingress_ref)
        else:
            yield self.env.all_of([done_events[p] for p in preds])
            for pred in preds:
                upstream = done_events[pred].value
                if upstream is None:
                    continue  # upstream skipped
                edge = workflow.edge(pred, stage.name)
                if deployment.rng.random() <= edge.probability:
                    inputs.append(upstream)
                else:
                    # Branch not taken: release our claim on the data.
                    self.plane.release_claim(upstream)
            if not inputs:
                lifecycle.skip_stage(stage.name)
                done_events[stage.name].succeed(None)
                return

        # Enter the stage queue (backpressure when bounded), consult
        # the autoscaler with the observed depth, then dispatch.
        stage_queue = deployment.stage_queues[stage.name]
        gate = stage_queue.enter()
        if gate is not None:
            yield gate
        try:
            if self.autoscaler is not None:
                self._autoscale(deployment, stage.name)
            instance = self.dispatch.select(
                deployment.replica_sets[stage.name], dispatch,
                self._device_load,
            )
            instance.begin_work()
            try:
                ref = yield from self._execute_stage(
                    deployment, lifecycle, stage, instance, inputs
                )
            finally:
                instance.end_work()
        finally:
            stage_queue.leave()
        self.queue.bind_object(ref.object_id, request_id)
        done_events[stage.name].succeed(ref)

    def _execute_stage(
        self,
        deployment: Deployment,
        lifecycle: RequestLifecycle,
        stage: Stage,
        instance: FunctionInstance,
        inputs: list[DataRef],
    ):
        """Generator: one stage span on a chosen replica; returns its put."""
        workflow = deployment.workflow
        request_id = lifecycle.request_id
        record = lifecycle.begin_stage(stage.name)
        stage_slo = deployment.stage_slos[stage.name]
        exec_estimate = instance.execution_latency(
            deployment.batch, deployment.stage_inputs[stage.name]
        )

        # Acquire the device slot FIRST: inputs are fetched when the
        # function instance actually starts, so intermediate data waits
        # in storage while the invocation is queued (paper Fig. 11).
        if instance.is_gpu:
            resource = self.gpu_resources[instance.device_id]
        else:
            resource = self.cpu_resources[instance.node.node_id]
        ready_at = self.env.now
        slot = resource.request()
        yield slot
        record.queued_time = self.env.now - ready_at
        if record.queued_time > 0:
            lifecycle.publish_span(
                stage.name, "queue", ready_at, instance.device_id,
                replica=instance.instance_id,
            )

        # The transfer deadline reflects the slack the invocation has
        # *now* (queueing already consumed its share): this is what
        # SLO-gated rate control keys on (§4.3.2).
        deadline = self.env.now + max(
            stage_slo - exec_estimate, SLO_FLOOR_SLACK
        )
        ctx = FnContext(
            instance, deployment.workflow_id, request_id,
            slo_deadline=deadline,
        )
        try:
            # Fetch all inputs in parallel.
            t_get = self.env.now
            gets = [self.plane.get(ctx, ref) for ref in inputs]
            yield self.env.all_of(gets)
            record.get_time = self.env.now - t_get
            record.input_bytes = sum(ref.size for ref in inputs)
            lifecycle.publish_span(
                stage.name, "get", t_get, instance.device_id,
                replica=instance.instance_id,
            )

            # Cold start penalty (container + model load) if not warm.
            if self.prewarm_enabled:
                penalty = self.prewarmer.startup_penalty(
                    instance.instance_id, self.env.now,
                    stage.spec.memory_footprint,
                )
            else:
                penalty = 0.0
            if penalty > 0:
                record.cold_start = penalty
                t_cold = self.env.now
                yield self.env.timeout(penalty)
                lifecycle.publish_span(
                    stage.name, "cold-start", t_cold, instance.device_id,
                    replica=instance.instance_id,
                )

            t_exec = self.env.now
            execution = yield instance.execute_held(
                deployment.batch, record.input_bytes
            )
            record.compute_time = execution.duration
            lifecycle.publish_span(
                stage.name, "exec", t_exec, instance.device_id,
                replica=instance.instance_id,
            )

            # Publish the output for downstream consumers.
            out_edges = workflow.out_edges(stage.name)
            consumers = len(out_edges) if out_edges else 1
            output_size = stage.spec.output_size(
                deployment.batch, record.input_bytes
            )
            record.output_bytes = output_size
            t_put = self.env.now
            ref = yield self.plane.put(
                ctx, output_size, expected_consumers=consumers
            )
            record.put_time = self.env.now - t_put
            lifecycle.publish_span(
                stage.name, "put", t_put, instance.device_id,
                replica=instance.instance_id,
            )
        finally:
            resource.release(slot)
        return ref

    # -- trace replay ------------------------------------------------------------
    def run_trace(
        self,
        deployment: Deployment,
        trace: Trace,
        drain: float = 60.0,
    ) -> list[RequestResult]:
        """Replay *trace* against *deployment* and return its results.

        Only completed requests appear in the returned list; shed
        requests accumulate in :attr:`rejections`.
        """
        procs: list[Process] = []

        def driver():
            for arrival in trace:
                if arrival > self.env.now:
                    yield self.env.timeout(arrival - self.env.now)
                procs.append(self.submit(deployment))

        self.env.process(driver())
        horizon = self.env.now + trace.config.duration + drain
        self.env.run(until=horizon)
        return [
            p.value for p in procs
            if p.triggered and p.ok and isinstance(p.value, RequestResult)
        ]

    def run_trace_streaming(
        self,
        deployment: Deployment,
        trace: Union[Trace, Iterable[float]],
        drain: float = 60.0,
        monitor=None,
    ) -> int:
        """Replay *trace* without retaining per-request state.

        The bounded-memory counterpart of :meth:`run_trace`: arrivals
        may come from any iterable (typically a generator-backed
        :class:`~repro.traces.ArrivalStream`, so no arrival array is
        materialized), per-request :class:`Process` handles are not
        kept, and completed results reach only :attr:`result_sink`.
        Callers who want the results list anyway can leave
        ``keep_results=True``; the streaming harness sets it False.

        ``monitor`` (a :class:`~repro.telemetry.heartbeat.RunMonitor`)
        is ticked on every arrival so heartbeats fire even while a
        burst keeps completions scarce.  Returns the number of
        requests submitted; completions/rejections are available as
        :attr:`completed_count` / :attr:`rejection_count`.
        """
        submitted = 0
        config = getattr(trace, "config", None)
        duration = config.duration if config is not None else None

        def driver():
            nonlocal submitted
            last_arrival = self.env.now
            for arrival in trace:
                if arrival > self.env.now:
                    yield self.env.timeout(arrival - self.env.now)
                last_arrival = self.env.now
                self.submit(deployment)
                submitted += 1
                if monitor is not None:
                    monitor.tick()
            if duration is None:
                # No config to bound the horizon: idle out the drain
                # window after the last arrival instead.
                yield self.env.timeout(
                    max(last_arrival + drain - self.env.now, 0.0)
                )

        self.env.process(driver())
        if duration is not None:
            self.env.run(until=self.env.now + duration + drain)
        else:
            self.env.run()
        return submitted

    def run_traces(
        self,
        runs: list[tuple[Deployment, Trace]],
        drain: float = 60.0,
    ) -> dict[str, list[RequestResult]]:
        """Replay several traces concurrently (interference studies)."""
        all_procs: dict[str, list[Process]] = {}

        def driver(deployment, trace):
            start = self.env.now
            procs = all_procs.setdefault(deployment.workflow_id, [])
            for arrival in trace:
                target = start + arrival
                if target > self.env.now:
                    yield self.env.timeout(target - self.env.now)
                procs.append(self.submit(deployment))

        for deployment, trace in runs:
            self.env.process(driver(deployment, trace))
        horizon = self.env.now + max(
            trace.config.duration for _d, trace in runs
        ) + drain
        self.env.run(until=horizon)
        return {
            wf: [
                p.value for p in procs
                if p.triggered and p.ok
                and isinstance(p.value, RequestResult)
            ]
            for wf, procs in all_procs.items()
        }


def build_platform(
    preset: str = "dgx-v100",
    num_nodes: int = 1,
    plane_name: str = "grouter",
    placement: str = "mapa",
    plane_kwargs: Optional[dict] = None,
    **platform_kwargs,
) -> ServerlessPlatform:
    """One-call construction of env + cluster + plane + platform."""
    from repro.dataplane import make_plane
    from repro.topology import make_cluster

    env = Environment()
    cluster = make_cluster(preset, num_nodes=num_nodes)
    plane = make_plane(plane_name, env, cluster, **(plane_kwargs or {}))
    return ServerlessPlatform(
        env, cluster, plane, placement=placement, **platform_kwargs
    )
