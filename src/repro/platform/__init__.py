"""Serverless platform: deployment, workflow engine, trace replay."""

from repro.platform.platform import (
    Deployment,
    RequestResult,
    ServerlessPlatform,
    StageRecord,
    build_platform,
)

__all__ = [
    "Deployment",
    "RequestResult",
    "ServerlessPlatform",
    "StageRecord",
    "build_platform",
]
