"""Serverless platform: a pipeline of composable lifecycle stages.

``platform`` keeps the engine (deployment, workflow execution, trace
replay); the request path is assembled from sibling modules —
``admission`` (load shedding), ``queueing`` (pending-request index +
per-stage queues), ``lifecycle`` (request state machine + results),
``dispatch`` (replica selection) and ``scaling`` (autoscaling).
"""

from repro.platform.admission import (
    AdmissionConfig,
    AdmissionController,
    RequestRejected,
    TokenBucket,
)
from repro.platform.dispatch import (
    DISPATCHERS,
    DispatchPolicy,
    LeastOutstandingDispatch,
    QueueDepthDispatch,
    RoundRobinDispatch,
    make_dispatch,
)
from repro.platform.lifecycle import (
    RequestLifecycle,
    RequestResult,
    RequestState,
    StageRecord,
)
from repro.platform.platform import (
    Deployment,
    ServerlessPlatform,
    build_platform,
)
from repro.platform.queueing import PendingQueue, StageQueue
from repro.platform.scaling import (
    AUTOSCALERS,
    Autoscaler,
    QueueDepthAutoscaler,
    make_autoscaler,
)

__all__ = [
    "AUTOSCALERS",
    "AdmissionConfig",
    "AdmissionController",
    "Autoscaler",
    "DISPATCHERS",
    "Deployment",
    "DispatchPolicy",
    "LeastOutstandingDispatch",
    "PendingQueue",
    "QueueDepthAutoscaler",
    "QueueDepthDispatch",
    "RequestLifecycle",
    "RequestRejected",
    "RequestResult",
    "RequestState",
    "RoundRobinDispatch",
    "ServerlessPlatform",
    "StageQueue",
    "StageRecord",
    "TokenBucket",
    "build_platform",
    "make_autoscaler",
    "make_dispatch",
]
