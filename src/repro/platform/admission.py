"""Admission control: concurrency caps, token buckets, load shedding.

Sits at the very front of the request lifecycle (ARRIVED -> ADMITTED or
REJECTED).  The default configuration is *unlimited*: every request is
admitted with one dict-free comparison, so platforms that never touch
the knobs behave bit-identically to a platform without admission
control.

Two independent limits can be set:

- ``max_concurrent`` caps the platform-wide pending-queue depth; a
  request arriving while the queue is at the cap is shed immediately.
- ``rate``/``burst`` run one token bucket per deployment: buckets
  refill continuously at ``rate`` tokens/sec up to ``burst``, and a
  request that finds its deployment's bucket empty is shed.

Shedding produces a typed :class:`RequestRejected` outcome (the value
of the submitted process) and a
:class:`~repro.telemetry.events.RequestRejected` bus event, so both
callers and telemetry consumers can tell rejection from completion
without sniffing attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import SchedulingError

REJECT_CONCURRENCY = "concurrency"
REJECT_RATE = "rate"


@dataclass(frozen=True)
class RequestRejected:
    """Typed outcome of a request shed by admission control."""

    request_id: str
    workflow: str
    arrived_at: float
    reason: str  # REJECT_CONCURRENCY | REJECT_RATE


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs for :class:`AdmissionController`; defaults admit all."""

    max_concurrent: Optional[int] = None  # platform-wide queue-depth cap
    rate: Optional[float] = None  # per-deployment tokens/sec
    burst: float = 1.0  # per-deployment bucket capacity

    def __post_init__(self) -> None:
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise SchedulingError(
                f"max_concurrent must be >= 1, got {self.max_concurrent}"
            )
        if self.rate is not None and self.rate <= 0:
            raise SchedulingError(f"rate must be positive, got {self.rate}")
        if self.burst < 1.0:
            raise SchedulingError(f"burst must be >= 1, got {self.burst}")

    @property
    def unlimited(self) -> bool:
        return self.max_concurrent is None and self.rate is None


class TokenBucket:
    """Continuously refilling token bucket (starts full)."""

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self._last_refill = now

    def try_take(self, now: float) -> bool:
        self.tokens = min(
            self.burst, self.tokens + self.rate * (now - self._last_refill)
        )
        self._last_refill = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Decides, per arrival, whether a request enters the pipeline."""

    def __init__(self, config: Optional[AdmissionConfig] = None) -> None:
        self.config = config if config is not None else AdmissionConfig()
        self._buckets: dict[str, TokenBucket] = {}
        self.admitted = 0
        self.rejected = 0

    def check(
        self, workflow_id: str, now: float, queue_depth: int
    ) -> Optional[str]:
        """Return ``None`` to admit, or the rejection reason string."""
        config = self.config
        if (
            config.max_concurrent is not None
            and queue_depth >= config.max_concurrent
        ):
            self.rejected += 1
            return REJECT_CONCURRENCY
        if config.rate is not None:
            bucket = self._buckets.get(workflow_id)
            if bucket is None:
                bucket = TokenBucket(config.rate, config.burst, now)
                self._buckets[workflow_id] = bucket
            if not bucket.try_take(now):
                self.rejected += 1
                return REJECT_RATE
        self.admitted += 1
        return None

    def bucket_level(self, workflow_id: str) -> Optional[tuple[float, float]]:
        """Current ``(tokens, burst)`` of a deployment's bucket, or ``None``.

        ``None`` means rate limiting is off or no request for this
        deployment has been checked yet (buckets materialise lazily).
        """
        if self.config.rate is None:
            return None
        bucket = self._buckets.get(workflow_id)
        if bucket is None:
            return None
        return (bucket.tokens, bucket.burst)
