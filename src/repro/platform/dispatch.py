"""Replica dispatch policies: which warm instance serves a stage.

Extracted from ``Deployment`` so placement (:mod:`repro.scheduler`)
and the engine consume one interface, and policies can be swapped
without touching execution:

- ``round-robin`` reproduces the seed behaviour exactly: one dispatch
  sequence number per request, every stage of that request served by
  ``replicas[seq % len(replicas)]``.
- ``least-outstanding`` picks the replica with the fewest requests
  currently dispatched to it (waiting or executing), using the
  outstanding-work counter instances report; ties break toward the
  earliest replica so the choice is deterministic.
- ``queue-depth`` picks the replica whose *device* has the shallowest
  run queue (held + waiting slots on its GPU/CPU resource) — distinct
  from least-outstanding when several stages share one device.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional, Sequence

from repro.common.errors import SchedulingError
from repro.functions.instance import FunctionInstance

DeviceLoadFn = Callable[[FunctionInstance], float]


class DispatchPolicy(abc.ABC):
    """Strategy interface for choosing among a stage's replicas."""

    name = "abstract"

    @abc.abstractmethod
    def select(
        self,
        replicas: Sequence[FunctionInstance],
        dispatch: int,
        device_load: Optional[DeviceLoadFn] = None,
    ) -> FunctionInstance:
        """Pick the replica serving one stage invocation.

        *dispatch* is the request's per-deployment sequence number;
        *device_load* (engine-provided) maps an instance to its
        device's current run-queue depth.
        """


class RoundRobinDispatch(DispatchPolicy):
    """Spread requests over replicas by arrival sequence (seed default)."""

    name = "round-robin"

    def select(self, replicas, dispatch, device_load=None):
        return replicas[dispatch % len(replicas)]


class LeastOutstandingDispatch(DispatchPolicy):
    """Pick the replica with the fewest outstanding invocations."""

    name = "least-outstanding"

    def select(self, replicas, dispatch, device_load=None):
        best = replicas[0]
        for replica in replicas[1:]:
            if replica.outstanding < best.outstanding:
                best = replica
        return best


class QueueDepthDispatch(DispatchPolicy):
    """Pick the replica on the device with the shallowest run queue."""

    name = "queue-depth"

    def select(self, replicas, dispatch, device_load=None):
        if device_load is None:
            raise SchedulingError(
                "queue-depth dispatch needs a device_load callback"
            )
        best = replicas[0]
        best_load = device_load(best)
        for replica in replicas[1:]:
            load = device_load(replica)
            if load < best_load:
                best = replica
                best_load = load
        return best


DISPATCHERS = {
    RoundRobinDispatch.name: RoundRobinDispatch,
    LeastOutstandingDispatch.name: LeastOutstandingDispatch,
    QueueDepthDispatch.name: QueueDepthDispatch,
}


def make_dispatch(name: str, **kwargs) -> DispatchPolicy:
    """Instantiate a dispatch policy by name."""
    try:
        return DISPATCHERS[name](**kwargs)
    except KeyError:
        raise SchedulingError(
            f"unknown dispatch policy {name!r}; "
            f"choose from {sorted(DISPATCHERS)}"
        ) from None
