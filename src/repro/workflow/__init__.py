"""Workflow DAGs and the evaluation workload suite."""

from repro.workflow.dag import Edge, Stage, Workflow, WorkloadSpec
from repro.workflow.workloads import (
    WORKLOADS,
    driving_workload,
    get_workload,
    image_workload,
    recognition_workload,
    traffic_workload,
    video_workload,
)

__all__ = [
    "Edge",
    "Stage",
    "Workflow",
    "WorkloadSpec",
    "WORKLOADS",
    "driving_workload",
    "get_workload",
    "image_workload",
    "recognition_workload",
    "traffic_workload",
    "video_workload",
]
