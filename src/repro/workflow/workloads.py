"""The evaluation workflow suite (paper Fig. 12).

Six real-world inference workflows spanning the four DAG patterns
(sequence, condition, fan-out, fan-in):

- **traffic** (Boggart): detection + per-class recognition (condition)
- **driving** (AdaInf): denoise -> segmentation -> colorize (sequence)
- **video** (Aquatope): parallel face detection -> recognition (fan-out/in)
- **image** (Cocktail): denoise -> classifier ensemble -> aggregate
- **recognition** (Astraea-style): audio+visual features -> joint model.
  The paper names only five of its six workflows; this one is our
  reconstruction of the sixth, documented in DESIGN.md.
- The sixth named workflow, **moa** (Mixture-of-Agents), is an LLM
  workflow and lives in :mod:`repro.llm.moa`.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import ConfigError
from repro.common.units import MB
from repro.functions.profiles import get_spec
from repro.workflow.dag import Edge, Stage, Workflow, WorkloadSpec


def traffic_workload() -> WorkloadSpec:
    """Traffic monitoring (Fig. 1): conditional recognition branches."""
    stages = [
        Stage("video-decode", get_spec("video-decode")),
        Stage("gpu-preprocess", get_spec("gpu-preprocess")),
        Stage("yolo-det", get_spec("yolo-det")),
        Stage("gpu-postprocess", get_spec("gpu-postprocess")),
        Stage("person-rec", get_spec("person-rec")),
        Stage("car-rec", get_spec("car-rec")),
    ]
    edges = [
        Edge("video-decode", "gpu-preprocess"),
        Edge("gpu-preprocess", "yolo-det"),
        Edge("yolo-det", "gpu-postprocess"),
        # Crops are routed by detected class: roughly half the bundle to
        # each recognizer, each branch taken with probability 0.9.
        Edge("gpu-postprocess", "person-rec", fraction=0.5, probability=0.9),
        Edge("gpu-postprocess", "car-rec", fraction=0.5, probability=0.9),
    ]
    return WorkloadSpec(
        workflow=Workflow("traffic", stages, edges),
        input_per_item=0.5 * MB,  # compressed video per frame
        default_batch=8,
        description="traffic monitoring: detect then recognize (condition)",
    )


def driving_workload() -> WorkloadSpec:
    """Road segmentation for auto-driving (AdaInf): pure sequence."""
    stages = [
        Stage("gpu-denoise", get_spec("gpu-denoise")),
        Stage("unet-seg", get_spec("unet-seg")),
        Stage("gpu-colorize", get_spec("gpu-colorize")),
    ]
    edges = [
        Edge("gpu-denoise", "unet-seg"),
        Edge("unet-seg", "gpu-colorize"),
    ]
    return WorkloadSpec(
        workflow=Workflow("driving", stages, edges),
        input_per_item=24 * MB,  # raw camera frame (1080p float)
        default_batch=8,
        description="road segmentation pipeline (sequence)",
    )


def video_workload(parallel_detectors: int = 4) -> WorkloadSpec:
    """Video face search (Aquatope): fan-out detection, fan-in rec."""
    if parallel_detectors < 1:
        raise ConfigError("need at least one detector branch")
    stages = [Stage("chunk-split", get_spec("chunk-split"))]
    edges = []
    for i in range(parallel_detectors):
        det = f"face-det-{i}"
        stages.append(Stage(det, get_spec("face-det")))
        edges.append(
            Edge("chunk-split", det, fraction=1.0 / parallel_detectors)
        )
        edges.append(Edge(det, "face-rec"))
    stages.append(Stage("face-rec", get_spec("face-rec")))
    return WorkloadSpec(
        workflow=Workflow("video", stages, edges),
        input_per_item=8 * MB,  # video chunk per item
        default_batch=8,
        description="parallel face detection then recognition (fan-out/in)",
    )


def image_workload() -> WorkloadSpec:
    """Ensemble image classification (Cocktail): broadcast fan-out."""
    classifiers = ["resnext-cls", "efficientnet-cls", "inception-cls"]
    stages = [Stage("gpu-denoise", get_spec("gpu-denoise"))]
    edges = []
    for cls in classifiers:
        stages.append(Stage(cls, get_spec(cls)))
        edges.append(Edge("gpu-denoise", cls))  # broadcast: fraction 1.0
        edges.append(Edge(cls, "result-aggregate"))
    stages.append(Stage("result-aggregate", get_spec("result-aggregate")))
    return WorkloadSpec(
        workflow=Workflow("image", stages, edges),
        input_per_item=0.5 * MB,
        default_batch=16,
        description="classifier ensemble with aggregation (fan-out/in)",
    )


def recognition_workload() -> WorkloadSpec:
    """Multi-modal recognition (Astraea-style reconstruction)."""
    stages = [
        Stage("chunk-split", get_spec("chunk-split")),
        Stage("audio-feature", get_spec("audio-feature")),
        Stage("visual-feature", get_spec("visual-feature")),
        Stage("joint-recognition", get_spec("joint-recognition")),
    ]
    edges = [
        Edge("chunk-split", "audio-feature", fraction=0.2),
        Edge("chunk-split", "visual-feature", fraction=0.8),
        Edge("audio-feature", "joint-recognition"),
        Edge("visual-feature", "joint-recognition"),
    ]
    return WorkloadSpec(
        workflow=Workflow("recognition", stages, edges),
        input_per_item=2 * MB,
        default_batch=8,
        description="audio+visual feature fusion (fan-in)",
    )


WORKLOADS: dict[str, Callable[[], WorkloadSpec]] = {
    "traffic": traffic_workload,
    "driving": driving_workload,
    "video": video_workload,
    "image": image_workload,
    "recognition": recognition_workload,
}


def get_workload(name: str) -> WorkloadSpec:
    """Instantiate an evaluation workload by name."""
    try:
        return WORKLOADS[name]()
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
