"""Workflow DAGs (paper §2.1, Fig. 12).

A workflow is a DAG of named stages; edges carry how much of the
upstream output flows downstream (``fraction``, for fan-out splits such
as person/vehicle crops) and an execution ``probability`` (for the
conditional-branch pattern).  ``fraction=1.0`` on several out-edges
models broadcast fan-out (every classifier in an ensemble reads the
whole image).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.common.errors import WorkflowError
from repro.functions.spec import FunctionSpec


@dataclass(frozen=True)
class Stage:
    """One node of a workflow DAG."""

    name: str
    spec: FunctionSpec


@dataclass(frozen=True)
class Edge:
    """A data dependency between two stages."""

    src: str
    dst: str
    fraction: float = 1.0
    probability: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise WorkflowError(
                f"edge {self.src}->{self.dst}: fraction must be in (0, 1]"
            )
        if not 0.0 < self.probability <= 1.0:
            raise WorkflowError(
                f"edge {self.src}->{self.dst}: probability must be in (0, 1]"
            )


class Workflow:
    """A validated DAG of stages."""

    def __init__(self, name: str, stages: list[Stage], edges: list[Edge]) -> None:
        if not stages:
            raise WorkflowError(f"workflow {name!r} has no stages")
        self.name = name
        self.stages: dict[str, Stage] = {}
        for stage in stages:
            if stage.name in self.stages:
                raise WorkflowError(f"duplicate stage name {stage.name!r}")
            self.stages[stage.name] = stage
        self.edges = list(edges)
        self._graph = nx.DiGraph()
        self._graph.add_nodes_from(self.stages)
        for edge in self.edges:
            for endpoint in (edge.src, edge.dst):
                if endpoint not in self.stages:
                    raise WorkflowError(
                        f"edge references unknown stage {endpoint!r}"
                    )
            if self._graph.has_edge(edge.src, edge.dst):
                raise WorkflowError(f"duplicate edge {edge.src}->{edge.dst}")
            self._graph.add_edge(edge.src, edge.dst, edge=edge)
        if not nx.is_directed_acyclic_graph(self._graph):
            raise WorkflowError(f"workflow {name!r} contains a cycle")

    # -- structure ---------------------------------------------------------
    @property
    def entry_stages(self) -> list[Stage]:
        """Stages with no predecessors (receive the request input)."""
        return [
            self.stages[n]
            for n in self._graph.nodes
            if self._graph.in_degree(n) == 0
        ]

    @property
    def exit_stages(self) -> list[Stage]:
        """Stages with no successors (produce the response)."""
        return [
            self.stages[n]
            for n in self._graph.nodes
            if self._graph.out_degree(n) == 0
        ]

    def topological_order(self) -> list[Stage]:
        return [
            self.stages[n] for n in nx.lexicographical_topological_sort(self._graph)
        ]

    def predecessors(self, stage_name: str) -> list[str]:
        self._check_stage(stage_name)
        return sorted(self._graph.predecessors(stage_name))

    def successors(self, stage_name: str) -> list[str]:
        self._check_stage(stage_name)
        return sorted(self._graph.successors(stage_name))

    def edge(self, src: str, dst: str) -> Edge:
        try:
            return self._graph.edges[src, dst]["edge"]
        except KeyError:
            raise WorkflowError(f"no edge {src}->{dst}") from None

    def in_edges(self, stage_name: str) -> list[Edge]:
        self._check_stage(stage_name)
        return [
            self._graph.edges[s, d]["edge"]
            for s, d in sorted(self._graph.in_edges(stage_name))
        ]

    def out_edges(self, stage_name: str) -> list[Edge]:
        self._check_stage(stage_name)
        return [
            self._graph.edges[s, d]["edge"]
            for s, d in sorted(self._graph.out_edges(stage_name))
        ]

    def _check_stage(self, stage_name: str) -> None:
        if stage_name not in self.stages:
            raise WorkflowError(f"unknown stage {stage_name!r}")

    # -- composition helpers -------------------------------------------------
    def gpu_stages(self) -> list[Stage]:
        return [s for s in self.stages.values() if s.spec.is_gpu]

    def cpu_stages(self) -> list[Stage]:
        return [s for s in self.stages.values() if not s.spec.is_gpu]

    def function_names(self) -> list[str]:
        """Distinct function (stage) names, for ACL registration."""
        return sorted(self.stages)

    def to_dot(self) -> str:
        """Graphviz DOT rendering (GPU stages boxed, CPU stages oval)."""
        lines = [f'digraph "{self.name}" {{', "  rankdir=LR;"]
        for stage in self.stages.values():
            shape = "box" if stage.spec.is_gpu else "ellipse"
            lines.append(f'  "{stage.name}" [shape={shape}];')
        for edge in self.edges:
            attrs = []
            if edge.fraction != 1.0:
                attrs.append(f"label=\"x{edge.fraction:g}\"")
            if edge.probability != 1.0:
                attrs.append("style=dashed")
            suffix = f" [{', '.join(attrs)}]" if attrs else ""
            lines.append(f'  "{edge.src}" -> "{edge.dst}"{suffix};')
        lines.append("}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.stages)

    def __repr__(self) -> str:
        return (
            f"<Workflow {self.name} stages={len(self.stages)} "
            f"edges={len(self.edges)}>"
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """A workflow plus the request-input model used in the evaluation."""

    workflow: Workflow
    input_per_item: float  # request input bytes per batch item
    default_batch: int = 8
    description: str = ""

    def input_size(self, batch: int | None = None) -> float:
        n = batch if batch is not None else self.default_batch
        return self.input_per_item * n
