"""Function specifications and compute/output models.

Serverless inference mixes *GPU functions* (gFns) running DNN models and
*CPU functions* (cFns) doing data processing (§2.2).  Because DNN
inference latency is highly predictable (§4.3.2 cites this to justify
offline profiling), each function carries a :class:`ComputeProfile`
fitted as ``base + per_item * batch + per_mb * input_megabytes``, scaled
by the GPU generation's speed factor.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigError
from repro.common.units import MB


class DeviceKind(enum.Enum):
    """Where a function executes."""

    CPU = "cpu"
    GPU = "gpu"


# Relative inference speed of each GPU generation (V100 = 1).
SPEED_FACTORS = {
    "dgx-v100": 1.0,
    "dgx-a100": 2.5,
    "h800": 4.0,
    "a10": 0.9,
}


@dataclass(frozen=True)
class ComputeProfile:
    """Profiled execution-latency model for one function."""

    base_latency: float
    per_item_latency: float = 0.0
    per_mb_latency: float = 0.0

    def __post_init__(self) -> None:
        if self.base_latency < 0 or self.per_item_latency < 0 or self.per_mb_latency < 0:
            raise ConfigError("latency components must be non-negative")

    def latency(
        self, batch: int = 1, input_bytes: float = 0.0, speed_factor: float = 1.0
    ) -> float:
        """Predicted execution latency for one invocation."""
        if batch < 1:
            raise ConfigError(f"batch must be >= 1, got {batch}")
        raw = (
            self.base_latency
            + self.per_item_latency * batch
            + self.per_mb_latency * (input_bytes / MB)
        )
        return raw / speed_factor


@dataclass(frozen=True)
class OutputModel:
    """Size of the intermediate data a function emits.

    ``size = base + per_item * batch + factor * input_bytes``
    """

    base: float = 0.0
    per_item: float = 0.0
    factor: float = 0.0

    def size(self, batch: int = 1, input_bytes: float = 0.0) -> float:
        value = self.base + self.per_item * batch + self.factor * input_bytes
        return max(1.0, value)


@dataclass(frozen=True)
class FunctionSpec:
    """A deployable serverless function."""

    name: str
    kind: DeviceKind
    compute: ComputeProfile
    output: OutputModel
    # GPU memory held while the instance is warm (weights + workspace).
    memory_footprint: float = 0.0
    # Latency SLO; per GPUlet/SHEPHERD convention the platform defaults
    # this to 1.5-2x the profiled execution time when unset (§4.3.2).
    slo: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind is DeviceKind.CPU and self.memory_footprint > 0:
            raise ConfigError(
                f"{self.name}: CPU functions hold no GPU memory footprint"
            )
        if self.slo is not None and self.slo <= 0:
            raise ConfigError(f"{self.name}: SLO must be positive")

    @property
    def is_gpu(self) -> bool:
        return self.kind is DeviceKind.GPU

    def execution_latency(
        self, batch: int = 1, input_bytes: float = 0.0, speed_factor: float = 1.0
    ) -> float:
        return self.compute.latency(batch, input_bytes, speed_factor)

    def output_size(self, batch: int = 1, input_bytes: float = 0.0) -> float:
        return self.output.size(batch, input_bytes)

    def default_slo(
        self, batch: int = 1, input_bytes: float = 0.0, speed_factor: float = 1.0,
        multiplier: float = 1.5,
    ) -> float:
        """SLO = multiplier x profiled execution latency (GPUlet style)."""
        if self.slo is not None:
            return self.slo
        return multiplier * self.execution_latency(batch, input_bytes, speed_factor)
