"""Serverless functions: specs, profiled model zoo, instances."""

from repro.functions.instance import ExecutionRecord, FnContext, FunctionInstance
from repro.functions.profiles import MODEL_ZOO, get_spec
from repro.functions.spec import (
    SPEED_FACTORS,
    ComputeProfile,
    DeviceKind,
    FunctionSpec,
    OutputModel,
)

__all__ = [
    "ExecutionRecord",
    "FnContext",
    "FunctionInstance",
    "MODEL_ZOO",
    "get_spec",
    "SPEED_FACTORS",
    "ComputeProfile",
    "DeviceKind",
    "FunctionSpec",
    "OutputModel",
]
