"""Function instances: deployed containers executing on CPU or GPU.

GPU functions time-share their device (capacity-1 execution resource,
matching the paper's temporal-sharing model); CPU functions run on host
cores with ample parallelism.  An instance's placement (which physical
GPU it occupies) is the fact GROUTER exploits and the baselines lack.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.common.errors import SchedulingError
from repro.functions.spec import FunctionSpec
from repro.sim.core import Environment, Process
from repro.sim.resources import Resource
from repro.telemetry.events import ReplicaOutstanding
from repro.topology.devices import Gpu
from repro.topology.node import NodeTopology


@dataclass
class ExecutionRecord:
    """Timing of one completed invocation."""

    started_at: float
    finished_at: float
    queued_for: float

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


class FunctionInstance:
    """A warm container for one function on one device."""

    _ids = itertools.count()

    def __init__(
        self,
        env: Environment,
        spec: FunctionSpec,
        node: NodeTopology,
        gpu: Optional[Gpu] = None,
        gpu_resource: Optional[Resource] = None,
        cpu_resource: Optional[Resource] = None,
        speed_factor: float = 1.0,
        alias: Optional[str] = None,
    ) -> None:
        if spec.is_gpu and (gpu is None or gpu_resource is None):
            raise SchedulingError(
                f"{spec.name}: GPU function needs a gpu and its resource"
            )
        if not spec.is_gpu and gpu is not None:
            raise SchedulingError(f"{spec.name}: CPU function placed on a GPU")
        self.env = env
        self.spec = spec
        self.node = node
        self.gpu = gpu
        self.alias = alias if alias is not None else spec.name
        self.instance_id = f"{self.alias}#{next(FunctionInstance._ids)}"
        self._gpu_resource = gpu_resource
        self._cpu_resource = cpu_resource
        self.speed_factor = speed_factor
        # Per-invocation timing history, used by dispatch-balance
        # assertions and experiment accounting.  Streaming runs set
        # keep_executions=False so a replica's memory stays flat in
        # invocation count; execution_count stays exact either way.
        self.executions: list[ExecutionRecord] = []
        self.keep_executions = True
        self.execution_count = 0
        self.outstanding = 0  # invocations dispatched here, not yet done

    @property
    def device_id(self) -> str:
        """The device this instance runs on (GPU id or node host id)."""
        if self.gpu is not None:
            return self.gpu.device_id
        return self.node.host.device_id

    @property
    def is_gpu(self) -> bool:
        return self.spec.is_gpu

    def execution_latency(self, batch: int, input_bytes: float) -> float:
        return self.spec.execution_latency(batch, input_bytes, self.speed_factor)

    def begin_work(self) -> None:
        """A stage invocation was dispatched to this replica."""
        self.outstanding += 1
        self._publish_outstanding()

    def end_work(self) -> None:
        """The invocation completed (or failed); release its claim."""
        self.outstanding = max(0, self.outstanding - 1)
        self._publish_outstanding()

    def _publish_outstanding(self) -> None:
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(ReplicaOutstanding(
                t=self.env.now,
                replica=self.instance_id,
                device_id=self.device_id,
                outstanding=self.outstanding,
            ))

    def execute(
        self, batch: int = 1, input_bytes: float = 0.0, priority: float = 0.0
    ) -> Process:
        """Run one invocation; yields an :class:`ExecutionRecord`."""
        return self.env.process(self._execute(batch, input_bytes, priority))

    def execute_held(self, batch: int = 1, input_bytes: float = 0.0) -> Process:
        """Run an invocation whose device slot the caller already holds.

        The workflow engine acquires the GPU slot *before* fetching
        inputs (a function starts, then loads its data), so execution
        itself must not re-acquire the resource.
        """
        return self.env.process(self._execute_held(batch, input_bytes))

    def _execute_held(self, batch: int, input_bytes: float):
        started = self.env.now
        yield self.env.timeout(self.execution_latency(batch, input_bytes))
        record = ExecutionRecord(
            started_at=started,
            finished_at=self.env.now,
            queued_for=0.0,
        )
        self.execution_count += 1
        if self.keep_executions:
            self.executions.append(record)
        return record

    def _execute(self, batch: int, input_bytes: float, priority: float):
        resource = self._gpu_resource if self.is_gpu else self._cpu_resource
        arrived = self.env.now
        request = None
        if resource is not None:
            request = resource.request(priority=priority)
            yield request
        started = self.env.now
        try:
            yield self.env.timeout(self.execution_latency(batch, input_bytes))
        finally:
            if resource is not None and request is not None:
                resource.release(request)
        record = ExecutionRecord(
            started_at=started,
            finished_at=self.env.now,
            queued_for=started - arrived,
        )
        self.execution_count += 1
        if self.keep_executions:
            self.executions.append(record)
        return record

    def __repr__(self) -> str:
        return f"<FunctionInstance {self.instance_id} on {self.device_id}>"


@dataclass
class FnContext:
    """Identity a function presents to the data plane on Put/Get.

    Carries everything access control (§7) and SLO-aware transfer
    scheduling (§4.3.2) need.
    """

    instance: FunctionInstance
    workflow_id: str
    request_id: str
    slo_deadline: Optional[float] = None

    @property
    def function_name(self) -> str:
        # The workflow-level stage name (alias), used for ACL and
        # histogram identity; several stages may share one model spec.
        return self.instance.alias

    @property
    def device_id(self) -> str:
        return self.instance.device_id

    @property
    def gpu(self) -> Optional[Gpu]:
        return self.instance.gpu

    @property
    def node(self) -> NodeTopology:
        return self.instance.node

    @property
    def is_gpu(self) -> bool:
        return self.instance.is_gpu
