"""Model zoo: profiled function specs for the evaluation workflows.

Latency figures approximate published V100 measurements for the models
the paper's workflows use (YOLO detection, ResNet recognition, U-Net
segmentation, face detection/recognition, classification ensembles);
other GPU generations scale via :data:`repro.functions.spec.SPEED_FACTORS`.
Output sizes model the intermediate tensors exchanged between stages —
the quantity that actually drives the data-plane experiments.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.common.units import GB, KB, MB, MS
from repro.functions.spec import (
    ComputeProfile,
    DeviceKind,
    FunctionSpec,
    OutputModel,
)

# Raw decoded/preprocessed frame sizes (bytes per batch item).
DECODED_FRAME = 24 * MB  # 1080p RGB float32
PREPROCESSED_FRAME = 4.8 * MB  # 640x640x3 float32
SEG_MASK = 8 * MB
COLORED_FRAME = 24 * MB
CROP_BUNDLE = 1.5 * MB  # detected-object crops per frame
FACE_CROPS = 1 * MB
FEATURE_VECTOR = 4 * KB


def _gpu(name, base_ms, per_item_ms, output, footprint, per_mb_ms=0.0):
    return FunctionSpec(
        name=name,
        kind=DeviceKind.GPU,
        compute=ComputeProfile(
            base_latency=base_ms * MS,
            per_item_latency=per_item_ms * MS,
            per_mb_latency=per_mb_ms * MS,
        ),
        output=output,
        memory_footprint=footprint,
    )


def _cpu(name, base_ms, per_item_ms, output):
    return FunctionSpec(
        name=name,
        kind=DeviceKind.CPU,
        compute=ComputeProfile(
            base_latency=base_ms * MS, per_item_latency=per_item_ms * MS
        ),
        output=output,
    )


MODEL_ZOO: dict[str, FunctionSpec] = {
    # -- CPU data processing ----------------------------------------------
    "video-decode": _cpu(
        "video-decode", 8.0, 2.0, OutputModel(per_item=DECODED_FRAME)
    ),
    "chunk-split": _cpu(
        "chunk-split", 2.0, 0.3, OutputModel(per_item=DECODED_FRAME)
    ),
    "result-aggregate": _cpu(
        "result-aggregate", 1.5, 0.1, OutputModel(base=8 * KB)
    ),
    # -- GPU pre/post processing (CV-CUDA) ----------------------------------
    "gpu-preprocess": _gpu(
        "gpu-preprocess", 0.5, 0.15,
        OutputModel(per_item=PREPROCESSED_FRAME), 0.2 * GB, per_mb_ms=0.01,
    ),
    "gpu-postprocess": _gpu(
        "gpu-postprocess", 0.5, 0.1, OutputModel(factor=1.0), 0.1 * GB
    ),
    "gpu-denoise": _gpu(
        "gpu-denoise", 2.0, 0.5,
        OutputModel(per_item=DECODED_FRAME), 0.3 * GB,
    ),
    "gpu-colorize": _gpu(
        "gpu-colorize", 0.5, 0.2,
        OutputModel(per_item=COLORED_FRAME), 0.1 * GB,
    ),
    # -- detection / segmentation models -------------------------------------
    "yolo-det": _gpu(
        "yolo-det", 4.0, 3.0, OutputModel(per_item=CROP_BUNDLE), 0.5 * GB
    ),
    "unet-seg": _gpu(
        "unet-seg", 4.0, 2.5, OutputModel(per_item=SEG_MASK), 0.6 * GB
    ),
    "face-det": _gpu(
        "face-det", 3.0, 1.5, OutputModel(per_item=FACE_CROPS), 0.4 * GB
    ),
    # -- recognition / classification models --------------------------------
    "person-rec": _gpu(
        "person-rec", 2.0, 0.8, OutputModel(per_item=FEATURE_VECTOR), 0.3 * GB
    ),
    "car-rec": _gpu(
        "car-rec", 2.0, 0.8, OutputModel(per_item=FEATURE_VECTOR), 0.3 * GB
    ),
    "face-rec": _gpu(
        "face-rec", 2.0, 0.7, OutputModel(per_item=FEATURE_VECTOR), 0.3 * GB
    ),
    "resnext-cls": _gpu(
        "resnext-cls", 2.0, 1.0, OutputModel(per_item=FEATURE_VECTOR), 0.35 * GB
    ),
    "efficientnet-cls": _gpu(
        "efficientnet-cls", 1.8, 0.9, OutputModel(per_item=FEATURE_VECTOR),
        0.3 * GB,
    ),
    "inception-cls": _gpu(
        "inception-cls", 2.2, 1.1, OutputModel(per_item=FEATURE_VECTOR),
        0.35 * GB,
    ),
    # -- multi-stage recognition service (Astraea-style) ---------------------
    "audio-feature": _gpu(
        "audio-feature", 2.0, 0.8, OutputModel(per_item=512 * KB), 0.25 * GB
    ),
    "visual-feature": _gpu(
        "visual-feature", 2.5, 1.0, OutputModel(per_item=768 * KB), 0.3 * GB
    ),
    "joint-recognition": _gpu(
        "joint-recognition", 3.0, 1.0, OutputModel(per_item=FEATURE_VECTOR),
        0.4 * GB,
    ),
}


def get_spec(name: str) -> FunctionSpec:
    """Look up a model-zoo spec by name."""
    try:
        return MODEL_ZOO[name]
    except KeyError:
        raise ConfigError(
            f"unknown model {name!r}; choose from {sorted(MODEL_ZOO)}"
        ) from None
