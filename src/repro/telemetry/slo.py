"""Declarative SLOs evaluated over rolling windows of the event stream.

An :class:`SloSpec` names one objective over one request-level metric:

- ``latency``    — end-to-end seconds per request
- ``ttft``       — arrival to first compute output (time-to-first-token
  for the LLM workflows; first ``exec`` span end otherwise)
- ``data_share`` — fraction of end-to-end latency spent moving data
  (get + put + egress spans), the paper's §3 headline ratio
- ``rejection``  — admission sheds (sample per arrival; "bad" = shed)

A sample is **good** when the metric is at or below ``threshold``
(``rejection`` ignores the threshold: good means admitted).  The spec
is met while the fraction of bad samples inside the trailing
``window`` stays within the error budget ``1 - objective``; **burn
rate** is the windowed bad fraction divided by that budget (burn 1.0 =
exactly consuming budget; > 1.0 = violating).  Contiguous stretches
with burn > 1 form **violation episodes** whose length is the
time-to-recovery the chaos harness will assert on.

Evaluation is strictly event-edge driven: state changes only when a
sample arrives or :meth:`~SloTracker.finalize` trims the window at
end of stream, so replaying a spool reproduces attainment, burn and
episodes bit-identically.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.common.errors import ConfigError
from repro.telemetry.bus import EventBus
from repro.telemetry.events import (
    RequestArrived,
    RequestFinished,
    RequestRejected,
    StageSpan,
    TelemetryEvent,
)

SLO_KINDS = ("latency", "ttft", "data_share", "rejection")

#: Span kinds whose durations count as data passing (matches
#: ``RequestResult.data_time``: Get + Put + egress).
DATA_SPAN_KINDS = ("get", "put", "egress")


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective.

    ``objective`` is the target good fraction (0.99 = "99% of requests
    ..."); ``window`` the rolling evaluation horizon in simulation
    seconds; ``threshold`` the per-sample bound in the metric's unit
    (seconds for ``latency``/``ttft``, a fraction for ``data_share``,
    unused for ``rejection``).
    """

    name: str
    kind: str
    threshold: float = 0.0
    objective: float = 0.99
    window: float = 5.0

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ConfigError(
                f"unknown SLO kind {self.kind!r}; choose from {SLO_KINDS}"
            )
        if not 0.0 < self.objective < 1.0:
            raise ConfigError("objective must be in (0, 1)")
        if self.window <= 0:
            raise ConfigError("window must be positive")


@dataclass
class Episode:
    """One contiguous violation (burn rate above 1.0)."""

    start: float
    end: Optional[float] = None

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def ttr(self) -> Optional[float]:
        """Time-to-recovery; None while the episode is still open."""
        if self.end is None:
            return None
        return self.end - self.start


class SloTracker:
    """Rolling-window evaluation of one :class:`SloSpec`."""

    def __init__(self, spec: SloSpec) -> None:
        self.spec = spec
        self.good = 0
        self.bad = 0
        self._window: deque[tuple[float, bool]] = deque()
        self._window_bad = 0
        self.episodes: list[Episode] = []
        self.worst_burn = 0.0
        # Ring-bounded like every other series: the burn trace feeds a
        # Perfetto counter track, not the verdicts, so eviction is safe.
        self.burn_history: deque[tuple[float, float]] = deque(maxlen=4096)
        self._finalized = False

    # -- sampling -------------------------------------------------------------
    def observe(self, t: float, value: float) -> None:
        """Fold one metric sample taken at time *t*."""
        good = value <= self.spec.threshold
        self.observe_outcome(t, good)

    def observe_outcome(self, t: float, good: bool) -> None:
        """Fold one boolean outcome sample (the ``rejection`` path)."""
        if self._finalized:
            raise ConfigError("tracker already finalized")
        if good:
            self.good += 1
        else:
            self.bad += 1
        self._window.append((t, good))
        if not good:
            self._window_bad += 1
        self._trim(t)
        self._update_state(t)

    def finalize(self, t_end: float) -> None:
        """End of stream: trim the window forward and close episodes.

        An empty (fully drained) window is compliant, so a violation
        whose bad samples have aged out recovers at ``t_end`` — giving
        every episode a finite time-to-recovery.  Idempotent.
        """
        if self._finalized:
            return
        self._finalized = True
        self._trim(t_end)
        self._update_state(t_end)
        if self.episodes and self.episodes[-1].open:
            self.episodes[-1].end = t_end

    # -- internals ------------------------------------------------------------
    def _trim(self, now: float) -> None:
        cutoff = now - self.spec.window
        window = self._window
        while window and window[0][0] < cutoff:
            _t, good = window.popleft()
            if not good:
                self._window_bad -= 1

    def _update_state(self, now: float) -> None:
        burn = self.burn_rate
        if burn > self.worst_burn:
            self.worst_burn = burn
        self.burn_history.append((now, burn))
        violating = burn > 1.0
        if violating:
            if not self.episodes or not self.episodes[-1].open:
                self.episodes.append(Episode(start=now))
        elif self.episodes and self.episodes[-1].open:
            self.episodes[-1].end = now

    # -- reporting ------------------------------------------------------------
    @property
    def total(self) -> int:
        return self.good + self.bad

    @property
    def attainment(self) -> float:
        """Overall good fraction (1.0 on an empty stream: nothing broke)."""
        if self.total == 0:
            return 1.0
        return self.good / self.total

    @property
    def burn_rate(self) -> float:
        """Current windowed bad fraction over the error budget."""
        if not self._window:
            return 0.0
        bad_fraction = self._window_bad / len(self._window)
        return bad_fraction / (1.0 - self.spec.objective)

    @property
    def met(self) -> bool:
        """Whether the objective held for the whole stream."""
        return not self.episodes and self.attainment >= self.spec.objective

    def report(self) -> dict:
        spec = self.spec
        return {
            "name": spec.name,
            "kind": spec.kind,
            "threshold": spec.threshold,
            "objective": spec.objective,
            "window": spec.window,
            "total": self.total,
            "good": self.good,
            "bad": self.bad,
            "attainment": self.attainment,
            "worst_burn": self.worst_burn,
            "met": self.met,
            "episodes": [
                {"start": ep.start, "end": ep.end, "ttr": ep.ttr}
                for ep in self.episodes
            ],
        }


def default_specs(
    latency_s: float = 5.0,
    ttft_s: float = 5.0,
    data_share_max: float = 0.9,
    rejection_objective: float = 0.99,
    objective: float = 0.95,
    window: float = 5.0,
) -> tuple[SloSpec, ...]:
    """The standard four-spec board the ``repro health`` CLI evaluates.

    Defaults are deliberately generous: a healthy quick experiment run
    should report 100% attainment everywhere; tighten per-flag to make
    the board bite.
    """
    return (
        SloSpec("latency", "latency", threshold=latency_s,
                objective=objective, window=window),
        SloSpec("ttft", "ttft", threshold=ttft_s,
                objective=objective, window=window),
        SloSpec("data_share", "data_share", threshold=data_share_max,
                objective=objective, window=window),
        SloSpec("rejection", "rejection",
                objective=rejection_objective, window=window),
    )


class _RequestAssembly:
    """Per-request metric accumulation between arrival and finish."""

    __slots__ = ("arrived_at", "first_exec_end", "data_time")

    def __init__(self, arrived_at: float) -> None:
        self.arrived_at = arrived_at
        self.first_exec_end: Optional[float] = None
        self.data_time = 0.0


class SloBoard:
    """Feeds a set of :class:`SloTracker`\\ s from the event stream.

    Works attached to a live bus or fed replayed events; either path
    folds the identical stream, so reports match bit-for-bit.  Per-
    request assembly state is dropped on finish, keeping the board's
    memory proportional to in-flight requests, not stream length.
    """

    def __init__(self, specs: Iterable[SloSpec] = ()) -> None:
        specs = tuple(specs) if specs else default_specs()
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate SLO spec names in {names}")
        self.trackers: dict[str, SloTracker] = {
            spec.name: SloTracker(spec) for spec in specs
        }
        self._pending: dict[str, _RequestAssembly] = {}
        self._subscriptions: list[tuple[EventBus, dict]] = []
        self.max_t = 0.0

    # -- bus plumbing ---------------------------------------------------------
    def attach(self, bus: EventBus) -> "SloBoard":
        handlers = {
            RequestArrived: self._on_arrived,
            RequestRejected: self._on_rejected,
            RequestFinished: self._on_finished,
            StageSpan: self._on_span,
        }
        for event_type, handler in handlers.items():
            bus.subscribe(event_type, handler)
        self._subscriptions.append((bus, handlers))
        return self

    def detach(self) -> None:
        for bus, handlers in self._subscriptions:
            for event_type, handler in handlers.items():
                bus.unsubscribe(event_type, handler)
        self._subscriptions.clear()

    def feed(self, event: TelemetryEvent) -> None:
        if isinstance(event, RequestArrived):
            self._on_arrived(event)
        elif isinstance(event, RequestRejected):
            self._on_rejected(event)
        elif isinstance(event, RequestFinished):
            self._on_finished(event)
        elif isinstance(event, StageSpan):
            self._on_span(event)

    def finalize(self, t_end: Optional[float] = None) -> None:
        """Close the stream: trim windows, close open episodes."""
        end = self.max_t if t_end is None else t_end
        for tracker in self.trackers.values():
            tracker.finalize(end)

    # -- handlers -------------------------------------------------------------
    def _observe_t(self, t: float) -> None:
        if t > self.max_t:
            self.max_t = t

    def _sample(self, name: str, t: float, value: float) -> None:
        tracker = self.trackers.get(name)
        if tracker is not None:
            tracker.observe(t, value)

    def _on_arrived(self, event: RequestArrived) -> None:
        self._observe_t(event.t)
        self._pending[event.request_id] = _RequestAssembly(event.t)
        tracker = self.trackers.get("rejection")
        if tracker is not None:
            tracker.observe_outcome(event.t, good=True)

    def _on_rejected(self, event: RequestRejected) -> None:
        self._observe_t(event.t)
        tracker = self.trackers.get("rejection")
        if tracker is not None:
            tracker.observe_outcome(event.t, good=False)

    def _on_span(self, event: StageSpan) -> None:
        self._observe_t(event.t)
        assembly = self._pending.get(event.request_id)
        if assembly is None:
            return
        if event.kind == "exec" and assembly.first_exec_end is None:
            assembly.first_exec_end = event.end
        elif event.kind in DATA_SPAN_KINDS:
            assembly.data_time += event.end - event.start

    def _on_finished(self, event: RequestFinished) -> None:
        self._observe_t(event.t)
        self._sample("latency", event.t, event.latency)
        assembly = self._pending.pop(event.request_id, None)
        if assembly is None:
            return
        if assembly.first_exec_end is not None:
            self._sample("ttft", event.t,
                         assembly.first_exec_end - assembly.arrived_at)
        if event.latency > 0:
            self._sample("data_share", event.t,
                         assembly.data_time / event.latency)

    # -- reporting ------------------------------------------------------------
    def report(self) -> dict:
        """One report dict per spec, keyed by spec name (sorted)."""
        return {
            name: tracker.report()
            for name, tracker in sorted(self.trackers.items())
        }

    @property
    def met(self) -> bool:
        return all(tracker.met for tracker in self.trackers.values())

    @property
    def episode_count(self) -> int:
        return sum(len(t.episodes) for t in self.trackers.values())
