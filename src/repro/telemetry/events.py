"""Typed telemetry events published on the :class:`~repro.telemetry.EventBus`.

Every modelled resource emits one of these when telemetry is enabled:
the flow network (per-flow link occupancy), the transfer engine
(chunk-batched transfers), the GPU/host stores (residency changes), the
data planes (Put/Get/evictions and route choices), the memory pools
(alloc/free with occupancy), the placement policies, and the platform
(request lifecycle and per-stage spans).

Events are frozen dataclasses so subscribers can keep them forever;
``t`` is always the simulation time the event was published at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class TelemetryEvent:
    """Base class: anything published on the bus."""

    t: float


# -- network -----------------------------------------------------------------
@dataclass(frozen=True)
class FlowStarted(TelemetryEvent):
    """A flow began occupying its link path.

    ``nominal_bw`` is the bottleneck link capacity along the path — the
    rate the flow would sustain alone, which the profiler uses to split
    transfer time into serialization vs. link contention.  ``owner`` is
    the request id the flow moves data for (empty for background work
    such as eviction migrations).  ``capacities`` is aligned
    index-for-index with ``links`` (per-link capacity in bytes/sec), so
    stream consumers can derive per-link utilization fractions without
    a live :class:`~repro.net.network.FlowNetwork` — the property that
    lets a spooled run reproduce health verdicts bit-identically.
    """

    flow_id: int
    tag: str
    size: float
    links: tuple[str, ...]
    src: str
    dst: str
    nominal_bw: float = 0.0
    owner: str = ""
    capacities: tuple[float, ...] = ()


@dataclass(frozen=True)
class FlowFinished(TelemetryEvent):
    """A flow drained its last byte (``t`` is the finish time)."""

    flow_id: int
    tag: str
    size: float
    links: tuple[str, ...]
    src: str
    dst: str
    started_at: float
    owner: str = ""


@dataclass(frozen=True)
class FlowsReallocated(TelemetryEvent):
    """One component-scoped rate recomputation in the flow network.

    Published on every flow arrival/departure for each connected
    component whose rates were recomputed.  ``component`` lists the
    flow ids whose rates were re-derived, ``links`` the links bounding
    them, and ``rescheduled`` the subset whose completion timers were
    actually rearmed (the rest had exactly unchanged rates).

    ``rates`` is aligned index-for-index with ``component``: the rate
    each member flow holds from this instant until the next
    reallocation that includes it — the *bandwidth epochs* the
    profiler's contention attributor integrates over.
    """

    trigger: str  # "start" | "finish" | "cancel"
    flow_id: int  # the flow whose arrival/departure triggered it
    component: tuple[int, ...]
    links: tuple[str, ...]
    rescheduled: tuple[int, ...]
    rates: tuple[float, ...] = ()


@dataclass(frozen=True)
class TransferStarted(TelemetryEvent):
    """A (possibly multi-path, chunk-batched) transfer began."""

    transfer_id: int
    tag: str
    size: float
    src: str
    dst: str
    num_paths: int
    owner: str = ""


@dataclass(frozen=True)
class TransferFinished(TelemetryEvent):
    """The transfer's last path completed."""

    transfer_id: int
    tag: str
    size: float
    src: str
    dst: str
    started_at: float
    owner: str = ""


@dataclass(frozen=True)
class RouteSelected(TelemetryEvent):
    """A data plane picked the link paths for one transfer."""

    category: str
    src: str
    dst: str
    routes: tuple[str, ...]


# -- storage ------------------------------------------------------------------
@dataclass(frozen=True)
class StorePut(TelemetryEvent):
    """An object became resident on a GPU or host store."""

    object_id: str
    device_id: str
    size: float
    placement: str  # "gpu" | "host"


@dataclass(frozen=True)
class StoreGet(TelemetryEvent):
    """A plane-level Get completed (``t`` is the completion time)."""

    object_id: str
    device_id: str
    size: float
    category: str
    latency: float


@dataclass(frozen=True)
class StoreEvict(TelemetryEvent):
    """An object's bytes were migrated off a GPU under pressure."""

    object_id: str
    src_device: str
    dst_device: str
    size: float


# -- memory --------------------------------------------------------------------
@dataclass(frozen=True)
class PoolAlloc(TelemetryEvent):
    """A pool allocation completed; carries post-alloc occupancy.

    ``requested_at`` is when the allocation was asked for; ``t`` minus
    ``requested_at`` is the allocation delay (pool hit latency or the
    ``cudaMalloc``-scale growth cost), otherwise unrecoverable from the
    stream.
    """

    device_id: str
    size: float
    reserved: float
    in_use: float
    grew: bool
    requested_at: float = 0.0


@dataclass(frozen=True)
class PoolFree(TelemetryEvent):
    """An allocation returned to its pool."""

    device_id: str
    size: float
    reserved: float
    in_use: float


@dataclass(frozen=True)
class PoolTrim(TelemetryEvent):
    """An elastic trim released reserved-but-idle bytes."""

    device_id: str
    released: float
    reserved: float
    in_use: float


# -- scheduler ------------------------------------------------------------------
@dataclass(frozen=True)
class PlacementDecision(TelemetryEvent):
    """A placement policy mapped a workflow's GPU stages to devices."""

    policy: str
    workflow: str
    assignment: tuple[tuple[str, str], ...]  # (stage, device_id) pairs


# -- requests -------------------------------------------------------------------
@dataclass(frozen=True)
class RequestArrived(TelemetryEvent):
    """A request entered the platform's pending queue."""

    request_id: str
    workflow: str


@dataclass(frozen=True)
class RequestAdmitted(TelemetryEvent):
    """Admission control accepted a request into the pending queue."""

    request_id: str
    workflow: str
    queue_depth: int


@dataclass(frozen=True)
class RequestRejected(TelemetryEvent):
    """Admission control shed a request before it entered the queue."""

    request_id: str
    workflow: str
    reason: str  # "concurrency" | "rate"


@dataclass(frozen=True)
class ReplicaScaled(TelemetryEvent):
    """The autoscaler grew or shrank one stage's replica set."""

    workflow: str
    stage: str
    delta: int
    replicas: int
    queue_depth: int


@dataclass(frozen=True)
class RequestFinished(TelemetryEvent):
    """A request drained its egress output."""

    request_id: str
    workflow: str
    latency: float
    slo_met: Optional[bool]


@dataclass(frozen=True)
class StageSpan(TelemetryEvent):
    """One timed region of a request stage.

    ``kind`` is one of ``queue`` / ``get`` / ``cold-start`` / ``exec``
    / ``put`` / ``egress``.  ``replica`` is the instance id dispatch
    chose for this stage invocation (empty for I/O spans), so span
    consumers can tell apart replicas co-resident on one device.
    """

    request_id: str
    stage: str
    kind: str
    start: float
    end: float
    device_id: str
    replica: str = ""


@dataclass(frozen=True)
class ReplicaOutstanding(TelemetryEvent):
    """A replica's in-flight work count changed (counter-track sample).

    Published by :class:`~repro.functions.instance.FunctionInstance` on
    every ``begin_work``/``end_work`` edge, so consumers can reconstruct
    per-replica load without polling the instance registry.
    """

    replica: str
    device_id: str
    outstanding: int


@dataclass(frozen=True)
class StageQueueDepth(TelemetryEvent):
    """A stage queue's depth or backlog changed (counter-track sample)."""

    stage: str
    depth: int
    backlog: int


@dataclass(frozen=True)
class AdmissionTokens(TelemetryEvent):
    """Post-check level of a deployment's admission token bucket."""

    workflow: str
    tokens: float
    burst: float


# -- data plane ----------------------------------------------------------------
@dataclass(frozen=True)
class PlaneInfo(TelemetryEvent):
    """A data plane came up on this environment (labels the run)."""

    plane: str
