"""The telemetry event bus.

A bus is attached to a simulation :class:`~repro.sim.Environment` as
``env.telemetry`` (``None`` by default).  Publishers across the stack
follow the zero-overhead-when-disabled pattern::

    bus = self.env.telemetry
    if bus is not None:
        bus.publish(FlowStarted(...))

so a disabled run pays one attribute load and an ``is None`` test per
potential event — events are never even constructed.

Subscribers register for a concrete event type (exact class match, no
subclass dispatch — event types are flat) or for every event with
``subscribe(None, cb)``.
"""

from __future__ import annotations

from typing import Callable, Optional, Type

from repro.telemetry.events import TelemetryEvent

Callback = Callable[[TelemetryEvent], None]


class EventBus:
    """Synchronous publish/subscribe fan-out of telemetry events."""

    def __init__(self) -> None:
        self._by_type: dict[Type[TelemetryEvent], list[Callback]] = {}
        self._all: list[Callback] = []
        self.published = 0

    def subscribe(
        self,
        event_type: Optional[Type[TelemetryEvent]],
        callback: Callback,
    ) -> Callback:
        """Register *callback* for *event_type* (``None`` = every event)."""
        if event_type is None:
            self._all.append(callback)
        else:
            self._by_type.setdefault(event_type, []).append(callback)
        return callback

    def unsubscribe(
        self,
        event_type: Optional[Type[TelemetryEvent]],
        callback: Callback,
    ) -> None:
        """Remove a previously registered callback (no-op if absent)."""
        listeners = (
            self._all if event_type is None else self._by_type.get(event_type, [])
        )
        if callback in listeners:
            listeners.remove(callback)

    def publish(self, event: TelemetryEvent) -> None:
        """Deliver *event* synchronously to every matching subscriber.

        Delivery iterates over a snapshot of each callback list, so a
        subscriber may ``unsubscribe`` (itself or another callback) or
        ``subscribe`` during delivery without corrupting the fan-out.
        A callback removed mid-publish still receives the in-flight
        event; one added mid-publish first sees the next event.
        """
        self.published += 1
        typed = self._by_type.get(type(event))
        if typed:
            for callback in tuple(typed):
                callback(event)
        if self._all:
            for callback in tuple(self._all):
                callback(event)

    @property
    def subscriber_count(self) -> int:
        return len(self._all) + sum(
            len(cbs) for cbs in self._by_type.values()
        )
