"""Telemetry sessions: turn telemetry on for one env or a whole block.

Two entry points:

- :func:`TelemetrySession.attach` wires one existing
  :class:`~repro.sim.Environment` with a bus, raw-event capture, and
  standard metrics.
- :func:`capture` is a context manager that installs an
  ``Environment`` creation hook so **every** environment built inside
  the block (experiments construct a fresh one per measurement) is
  attached to the same session::

      with capture() as session:
          tables = fig13.run_pattern("intra")
      session.export_chrome_trace("trace.json")
      print(session.metrics.summary())
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.sim.core import Environment
from repro.telemetry.bus import EventBus
from repro.telemetry.chrome import export_chrome_trace
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.recorder import StandardMetrics


class TelemetrySession:
    """Shared sink for one or more instrumented simulation runs."""

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.events: list[tuple[int, object]] = []
        self.run_count = 0

    def attach(self, env: Environment) -> EventBus:
        """Instrument *env*: bus + event capture + standard metrics."""
        run = self.run_count
        self.run_count += 1
        bus = EventBus()
        env.telemetry = bus

        def _capture(event, _run=run):
            self.events.append((_run, event))

        bus.subscribe(None, _capture)
        StandardMetrics(self.metrics).attach(bus)
        return bus

    def export_chrome_trace(self, path: Optional[str] = None) -> dict:
        """Write/return the session as a Chrome ``trace_event`` doc."""
        return export_chrome_trace(
            self.events, path=path, multi_run=self.run_count > 1
        )

    def __len__(self) -> int:
        return len(self.events)


@contextlib.contextmanager
def capture(
    session: Optional[TelemetrySession] = None,
) -> Iterator[TelemetrySession]:
    """Attach every Environment created in this block to one session."""
    session = session if session is not None else TelemetrySession()
    previous = Environment.telemetry_hook
    Environment.telemetry_hook = session.attach
    try:
        yield session
    finally:
        Environment.telemetry_hook = previous
