"""Telemetry sessions: turn telemetry on for one env or a whole block.

Two entry points:

- :func:`TelemetrySession.attach` wires one existing
  :class:`~repro.sim.Environment` with a bus, event capture, and
  standard metrics.
- :func:`capture` is a context manager that installs an
  ``Environment`` creation hook so **every** environment built inside
  the block (experiments construct a fresh one per measurement) is
  attached to the same session::

      with capture() as session:
          tables = fig13.run_pattern("intra")
      session.export_chrome_trace("trace.json")
      print(session.metrics.summary())

A session can run in two capture modes:

- **buffered** (default): every event lands in ``session.events`` —
  the original in-memory recorder path, fine for thousands of
  requests.
- **streaming**: pass ``sinks=[...]``
  (:class:`~repro.telemetry.sinks.StreamingSink` instances) and events
  are spooled to disk incrementally instead of accumulating in RAM;
  combine with ``metrics_mode="bounded"`` for a memory footprint that
  is flat in event count.  ``keep_events`` overrides the default
  (buffered keeps, streaming drops) when both are wanted::

      sinks = [JsonlEventSink("events.jsonl")]
      with capture(sinks=sinks, metrics_mode="bounded") as session:
          run_the_million_request_trace()
      # sinks flushed+closed on block exit, even on a crash.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional, Sequence

from repro.common.errors import ConfigError
from repro.sim.core import Environment
from repro.telemetry.bus import EventBus
from repro.telemetry.chrome import export_chrome_trace
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.recorder import StandardMetrics
from repro.telemetry.sinks import StreamingSink


class TelemetrySession:
    """Shared sink for one or more instrumented simulation runs."""

    def __init__(
        self,
        sinks: Optional[Sequence[StreamingSink]] = None,
        keep_events: Optional[bool] = None,
        metrics_mode: str = "exact",
    ) -> None:
        self.metrics = MetricsRegistry(mode=metrics_mode)
        self.sinks: list[StreamingSink] = list(sinks) if sinks else []
        # Streaming sessions drop the in-memory event list by default;
        # buffered sessions keep it (the pre-streaming behaviour).
        self.keep_events = (
            keep_events if keep_events is not None else not self.sinks
        )
        self.events: list[tuple[int, object]] = []
        self.run_count = 0
        self.events_seen = 0

    def attach(self, env: Environment) -> EventBus:
        """Instrument *env*: bus + event capture + standard metrics."""
        run = self.run_count
        self.run_count += 1
        bus = EventBus()
        env.telemetry = bus

        keep = self.keep_events
        sinks = self.sinks

        def _capture(event, _run=run):
            self.events_seen += 1
            if keep:
                self.events.append((_run, event))
            for sink in sinks:
                sink.handle(_run, event)

        bus.subscribe(None, _capture)
        StandardMetrics(self.metrics).attach(bus)
        return bus

    # -- streaming lifecycle -------------------------------------------------
    @property
    def event_backlog(self) -> int:
        """Events buffered in sinks but not yet pushed to the OS."""
        return sum(getattr(sink, "backlog", 0) for sink in self.sinks)

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        """Flush and finalize every sink (idempotent)."""
        for sink in self.sinks:
            sink.close()

    def export_chrome_trace(self, path: Optional[str] = None) -> dict:
        """Write/return the session as a Chrome ``trace_event`` doc."""
        if not self.keep_events and self.events_seen:
            raise ConfigError(
                "session streamed its events to sinks (keep_events=False); "
                "use a ChromeStreamingSink for the trace, or pass "
                "keep_events=True"
            )
        return export_chrome_trace(
            self.events, path=path, multi_run=self.run_count > 1
        )

    def __len__(self) -> int:
        return len(self.events)


@contextlib.contextmanager
def capture(
    session: Optional[TelemetrySession] = None,
    sinks: Optional[Sequence[StreamingSink]] = None,
    keep_events: Optional[bool] = None,
    metrics_mode: str = "exact",
) -> Iterator[TelemetrySession]:
    """Attach every Environment created in this block to one session.

    When *session* is omitted, one is constructed from the remaining
    arguments and its sinks are **closed** (flushed + finalized) when
    the block exits — normally or by exception — which is the crash-
    safe finalization contract for spooled telemetry.  A caller-
    provided session is only flushed, since its sinks may outlive the
    block.
    """
    own_session = session is None
    if own_session:
        session = TelemetrySession(
            sinks=sinks, keep_events=keep_events, metrics_mode=metrics_mode
        )
    elif sinks is not None or keep_events is not None:
        raise ConfigError(
            "pass sinks/keep_events either to the session or to capture(), "
            "not both"
        )
    previous = Environment.telemetry_hook
    Environment.telemetry_hook = session.attach
    try:
        yield session
    finally:
        Environment.telemetry_hook = previous
        if own_session:
            session.close()
        else:
            session.flush()
