"""Per-entity bounded time series derived from the telemetry stream.

The registry's gauges and histograms answer "what happened overall";
the :class:`TimeSeriesStore` answers "what was each entity doing over
time" — per-link utilization and contention, per-stage queue depth,
per-workflow admission tokens, per-device pool occupancy, per-replica
outstanding work, and fast-path engagement — each as a bounded
ring-buffer :class:`EntitySeries` with windowed aggregates.

Everything here is derived **purely from published events**, never
from live simulator objects: link utilization comes from
``FlowStarted.capacities`` plus the per-flow rates carried by
``FlowsReallocated``, not from polling the network.  That is the
property the health pipeline (:mod:`repro.telemetry.health`) builds
on — replaying a JSONL spool through a fresh store reproduces every
series, and therefore every verdict, bit-identically.

Samples use edge semantics (same rule as
:meth:`~repro.metrics.stats.Timeline.sample_edge`): multiple
transitions at one instant collapse to the final value.  An event
whose timestamp precedes the series tail (a macro-flow split replaying
virtual-timestamp batches) is clamped to the tail time and counted in
the store's ``virtual_replays`` series rather than corrupting the
ordering invariant.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

import numpy as np

from repro.common.errors import ConfigError
from repro.telemetry.bus import EventBus
from repro.telemetry.events import (
    AdmissionTokens,
    FlowFinished,
    FlowsReallocated,
    FlowStarted,
    PoolAlloc,
    PoolFree,
    PoolTrim,
    ReplicaOutstanding,
    StageQueueDepth,
    TelemetryEvent,
)

DEFAULT_SERIES_CAPACITY = 4096


class EntitySeries:
    """A bounded ring buffer of (t, value) samples for one entity."""

    __slots__ = ("name", "kind", "times", "values", "capacity",
                 "total_samples", "clamped")

    def __init__(self, name: str, kind: str = "",
                 capacity: int = DEFAULT_SERIES_CAPACITY) -> None:
        if capacity < 2:
            raise ConfigError(f"series capacity must be >= 2, got {capacity}")
        self.name = name
        self.kind = kind
        self.capacity = capacity
        self.times: deque[float] = deque(maxlen=capacity)
        self.values: deque[float] = deque(maxlen=capacity)
        self.total_samples = 0  # including edge-collapsed and evicted
        self.clamped = 0  # out-of-order samples clamped to the tail time

    def record(self, t: float, value: float) -> None:
        """Record a sample with edge semantics and out-of-order clamping."""
        self.total_samples += 1
        if self.times:
            last = self.times[-1]
            if t < last:
                self.clamped += 1
                t = last
            if t == last:
                self.values[-1] = value
                return
        self.times.append(t)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    @property
    def last_t(self) -> float:
        return self.times[-1] if self.times else float("nan")

    @property
    def last_value(self) -> float:
        return self.values[-1] if self.values else float("nan")

    def window_samples(
        self, window: Optional[float] = None
    ) -> tuple[list[float], list[float]]:
        """(times, values) of the trailing *window* seconds (all if None)."""
        if window is None or not self.times:
            return list(self.times), list(self.values)
        cutoff = self.times[-1] - window
        times: list[float] = []
        values: list[float] = []
        for t, v in zip(reversed(self.times), reversed(self.values)):
            if t < cutoff:
                break
            times.append(t)
            values.append(v)
        times.reverse()
        values.reverse()
        return times, values

    def aggregates(self, window: Optional[float] = None,
                   percentiles: Iterable[float] = (50, 95)) -> dict:
        """min/mean/max/pXX over the trailing window (sample-weighted)."""
        _times, values = self.window_samples(window)
        if not values:
            return {"count": 0}
        arr = np.asarray(values, dtype=float)
        out = {
            "count": len(values),
            "min": float(arr.min()),
            "mean": float(arr.mean()),
            "max": float(arr.max()),
            "last": float(arr[-1]),
        }
        for p in percentiles:
            out[f"p{p:g}"] = float(np.percentile(arr, p))
        return out


class _FlowState:
    """Live view of one flow, reconstructed from the event stream."""

    __slots__ = ("links", "started_at", "rate", "size")

    def __init__(self, links: tuple[str, ...], started_at: float,
                 size: float) -> None:
        self.links = links
        self.started_at = started_at
        self.size = size
        self.rate = 0.0


class TimeSeriesStore:
    """Folds bus events into per-entity bounded series.

    Usable both as a live bus consumer (:meth:`attach`/:meth:`detach`,
    the :class:`~repro.telemetry.recorder.StandardMetrics` pattern) and
    as a replay folder (:meth:`feed` one event at a time from a spool).

    Series namespace (entity id after the last dot-segment prefix):

    - ``link.util.<link_id>`` — allocated/capacity utilization fraction
    - ``link.flows.<link_id>`` — flows concurrently on the link
    - ``queue.depth.<stage>`` — stage queue depth
    - ``admission.tokens.<workflow>`` — token-bucket level
    - ``pool.in_use.<device>`` / ``pool.reserved.<device>`` — bytes
    - ``replica.outstanding.<replica>`` — in-flight invocations
    - ``net.virtual_replays`` — cumulative virtual-timestamp events
      observed (macro/epoch fast-path engagement indicator)
    """

    def __init__(self, capacity: int = DEFAULT_SERIES_CAPACITY) -> None:
        self.capacity = capacity
        self.series: dict[str, EntitySeries] = {}
        self.max_t = 0.0
        self.flows: dict[int, _FlowState] = {}
        self._link_capacity: dict[str, float] = {}
        self._link_flows: dict[str, set[int]] = {}
        self._virtual_replays = 0
        self._subscriptions: list[tuple[EventBus, dict]] = []

    # -- series access --------------------------------------------------------
    def get(self, name: str, kind: str = "") -> EntitySeries:
        series = self.series.get(name)
        if series is None:
            series = EntitySeries(name, kind=kind, capacity=self.capacity)
            self.series[name] = series
        return series

    def names(self, prefix: str = "") -> list[str]:
        return sorted(n for n in self.series if n.startswith(prefix))

    def link_capacity(self, link_id: str) -> float:
        """Capacity learned from the stream (0.0 if never seen)."""
        return self._link_capacity.get(link_id, 0.0)

    @property
    def active_flows(self) -> dict[int, _FlowState]:
        """Flows started but not finished at the current stream point."""
        return self.flows

    # -- bus plumbing ---------------------------------------------------------
    def attach(self, bus: EventBus) -> "TimeSeriesStore":
        handlers = {
            FlowStarted: self._on_flow_started,
            FlowsReallocated: self._on_flows_reallocated,
            FlowFinished: self._on_flow_finished,
            StageQueueDepth: self._on_queue_depth,
            AdmissionTokens: self._on_admission_tokens,
            PoolAlloc: self._on_pool,
            PoolFree: self._on_pool,
            PoolTrim: self._on_pool,
            ReplicaOutstanding: self._on_replica,
        }
        for event_type, handler in handlers.items():
            bus.subscribe(event_type, handler)
        self._subscriptions.append((bus, handlers))
        return self

    def detach(self) -> None:
        for bus, handlers in self._subscriptions:
            for event_type, handler in handlers.items():
                bus.unsubscribe(event_type, handler)
        self._subscriptions.clear()

    def feed(self, event: TelemetryEvent) -> None:
        """Fold one replayed event (spool path; same folds as live)."""
        if isinstance(event, FlowStarted):
            self._on_flow_started(event)
        elif isinstance(event, FlowsReallocated):
            self._on_flows_reallocated(event)
        elif isinstance(event, FlowFinished):
            self._on_flow_finished(event)
        elif isinstance(event, StageQueueDepth):
            self._on_queue_depth(event)
        elif isinstance(event, AdmissionTokens):
            self._on_admission_tokens(event)
        elif isinstance(event, (PoolAlloc, PoolFree, PoolTrim)):
            self._on_pool(event)
        elif isinstance(event, ReplicaOutstanding):
            self._on_replica(event)

    # -- shared helpers -------------------------------------------------------
    def _observe_t(self, t: float) -> None:
        """Track stream progress; count virtual-timestamp replays."""
        if t < self.max_t:
            self._virtual_replays += 1
            self.get("net.virtual_replays", kind="engagement").record(
                self.max_t, float(self._virtual_replays)
            )
        else:
            self.max_t = t

    def _sample_link(self, link_id: str, t: float) -> None:
        capacity = self._link_capacity.get(link_id, 0.0)
        members = self._link_flows.get(link_id, ())
        allocated = 0.0
        for flow_id in members:
            state = self.flows.get(flow_id)
            if state is not None:
                allocated += state.rate
        util = allocated / capacity if capacity > 0 else 0.0
        self.get(f"link.util.{link_id}", kind="link").record(t, util)
        self.get(f"link.flows.{link_id}", kind="link").record(
            t, float(len(members))
        )

    # -- handlers -------------------------------------------------------------
    def _on_flow_started(self, event: FlowStarted) -> None:
        self._observe_t(event.t)
        state = _FlowState(event.links, event.t, event.size)
        self.flows[event.flow_id] = state
        for index, link_id in enumerate(event.links):
            if index < len(event.capacities):
                self._link_capacity[link_id] = event.capacities[index]
            self._link_flows.setdefault(link_id, set()).add(event.flow_id)
        for link_id in event.links:
            self._sample_link(link_id, event.t)

    def _on_flows_reallocated(self, event: FlowsReallocated) -> None:
        self._observe_t(event.t)
        for flow_id, rate in zip(event.component, event.rates):
            state = self.flows.get(flow_id)
            if state is not None:
                state.rate = rate
        for link_id in event.links:
            self._sample_link(link_id, event.t)

    def _on_flow_finished(self, event: FlowFinished) -> None:
        self._observe_t(event.t)
        self.flows.pop(event.flow_id, None)
        for link_id in event.links:
            members = self._link_flows.get(link_id)
            if members is not None:
                members.discard(event.flow_id)
        for link_id in event.links:
            self._sample_link(link_id, event.t)

    def _on_queue_depth(self, event: StageQueueDepth) -> None:
        self._observe_t(event.t)
        self.get(f"queue.depth.{event.stage}", kind="queue").record(
            event.t, float(event.depth)
        )

    def _on_admission_tokens(self, event: AdmissionTokens) -> None:
        self._observe_t(event.t)
        self.get(f"admission.tokens.{event.workflow}", kind="admission").record(
            event.t, event.tokens
        )

    def _on_pool(self, event) -> None:
        self._observe_t(event.t)
        self.get(f"pool.in_use.{event.device_id}", kind="pool").record(
            event.t, event.in_use
        )
        self.get(f"pool.reserved.{event.device_id}", kind="pool").record(
            event.t, event.reserved
        )

    def _on_replica(self, event: ReplicaOutstanding) -> None:
        self._observe_t(event.t)
        self.get(
            f"replica.outstanding.{event.replica}", kind="replica"
        ).record(event.t, float(event.outstanding))
