"""Unified telemetry: event bus, metrics registry, Perfetto export.

Every layer of the data plane publishes typed events to an
:class:`EventBus` attached to the simulation environment
(``env.telemetry``, ``None`` by default — a disabled run pays one
attribute check per potential event).  Consumers aggregate the stream:
:class:`StandardMetrics` into a namespaced :class:`MetricsRegistry`,
:class:`TraceRecorder` into a raw event list, and
:func:`export_chrome_trace` into a ``trace.json`` any run can open in
``ui.perfetto.dev``.  ``python -m repro trace <experiment>`` wires it
all together from the command line.
"""

from repro.telemetry.bus import EventBus
from repro.telemetry.chrome import export_chrome_trace, to_trace_events
from repro.telemetry.events import (
    AdmissionTokens,
    FlowFinished,
    FlowsReallocated,
    FlowStarted,
    PlacementDecision,
    PlaneInfo,
    PoolAlloc,
    PoolFree,
    PoolTrim,
    ReplicaOutstanding,
    RequestArrived,
    RequestFinished,
    RouteSelected,
    StageQueueDepth,
    StageSpan,
    StoreEvict,
    StoreGet,
    StorePut,
    TelemetryEvent,
    TransferFinished,
    TransferStarted,
)
from repro.telemetry.health import (
    build_health,
    build_run_health,
    fold_runs,
    format_dashboard,
    health_trace_events,
)
from repro.telemetry.heartbeat import RunMonitor, current_rss_bytes
from repro.telemetry.metrics import (
    BoundedGauge,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.recorder import StandardMetrics, TraceRecorder
from repro.telemetry.session import TelemetrySession, capture
from repro.telemetry.slo import (
    Episode,
    SloBoard,
    SloSpec,
    SloTracker,
    default_specs,
)
from repro.telemetry.timeseries import EntitySeries, TimeSeriesStore
from repro.telemetry.sinks import (
    ChromeStreamingSink,
    JsonlEventSink,
    StreamingSink,
    decode_event,
    encode_event,
    iter_jsonl_events,
    replay_metrics,
)

__all__ = [
    "AdmissionTokens",
    "BoundedGauge",
    "ChromeStreamingSink",
    "Counter",
    "EntitySeries",
    "Episode",
    "EventBus",
    "FlowFinished",
    "FlowStarted",
    "FlowsReallocated",
    "Gauge",
    "Histogram",
    "JsonlEventSink",
    "MetricsRegistry",
    "PlacementDecision",
    "PlaneInfo",
    "PoolAlloc",
    "PoolFree",
    "PoolTrim",
    "ReplicaOutstanding",
    "RequestArrived",
    "RequestFinished",
    "RouteSelected",
    "RunMonitor",
    "SloBoard",
    "SloSpec",
    "SloTracker",
    "StageQueueDepth",
    "StageSpan",
    "StandardMetrics",
    "StoreEvict",
    "StoreGet",
    "StorePut",
    "StreamingSink",
    "TelemetryEvent",
    "TelemetrySession",
    "TimeSeriesStore",
    "TraceRecorder",
    "TransferFinished",
    "TransferStarted",
    "build_health",
    "build_run_health",
    "capture",
    "current_rss_bytes",
    "decode_event",
    "default_specs",
    "encode_event",
    "export_chrome_trace",
    "fold_runs",
    "format_dashboard",
    "health_trace_events",
    "iter_jsonl_events",
    "replay_metrics",
    "to_trace_events",
]
