"""Unified telemetry: event bus, metrics registry, Perfetto export.

Every layer of the data plane publishes typed events to an
:class:`EventBus` attached to the simulation environment
(``env.telemetry``, ``None`` by default — a disabled run pays one
attribute check per potential event).  Consumers aggregate the stream:
:class:`StandardMetrics` into a namespaced :class:`MetricsRegistry`,
:class:`TraceRecorder` into a raw event list, and
:func:`export_chrome_trace` into a ``trace.json`` any run can open in
``ui.perfetto.dev``.  ``python -m repro trace <experiment>`` wires it
all together from the command line.
"""

from repro.telemetry.bus import EventBus
from repro.telemetry.chrome import export_chrome_trace, to_trace_events
from repro.telemetry.events import (
    AdmissionTokens,
    FlowFinished,
    FlowsReallocated,
    FlowStarted,
    PlacementDecision,
    PlaneInfo,
    PoolAlloc,
    PoolFree,
    PoolTrim,
    RequestArrived,
    RequestFinished,
    RouteSelected,
    StageQueueDepth,
    StageSpan,
    StoreEvict,
    StoreGet,
    StorePut,
    TelemetryEvent,
    TransferFinished,
    TransferStarted,
)
from repro.telemetry.heartbeat import RunMonitor, current_rss_bytes
from repro.telemetry.metrics import (
    BoundedGauge,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.recorder import StandardMetrics, TraceRecorder
from repro.telemetry.session import TelemetrySession, capture
from repro.telemetry.sinks import (
    ChromeStreamingSink,
    JsonlEventSink,
    StreamingSink,
    decode_event,
    encode_event,
    iter_jsonl_events,
    replay_metrics,
)

__all__ = [
    "AdmissionTokens",
    "BoundedGauge",
    "ChromeStreamingSink",
    "Counter",
    "EventBus",
    "FlowFinished",
    "FlowStarted",
    "FlowsReallocated",
    "Gauge",
    "Histogram",
    "JsonlEventSink",
    "MetricsRegistry",
    "PlacementDecision",
    "PlaneInfo",
    "PoolAlloc",
    "PoolFree",
    "PoolTrim",
    "RequestArrived",
    "RequestFinished",
    "RouteSelected",
    "RunMonitor",
    "StageQueueDepth",
    "StageSpan",
    "StandardMetrics",
    "StoreEvict",
    "StoreGet",
    "StorePut",
    "StreamingSink",
    "TelemetryEvent",
    "TelemetrySession",
    "TraceRecorder",
    "TransferFinished",
    "TransferStarted",
    "capture",
    "current_rss_bytes",
    "decode_event",
    "encode_event",
    "export_chrome_trace",
    "iter_jsonl_events",
    "replay_metrics",
    "to_trace_events",
]
