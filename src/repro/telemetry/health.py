"""Fleet health snapshots: series + SLO state -> per-entity verdicts.

The assembler rolls one run's :class:`~repro.telemetry.timeseries.
TimeSeriesStore` and :class:`~repro.telemetry.slo.SloBoard` into a
verdict per entity — ``ok`` / ``degraded`` / ``violated`` — plus an
overall verdict per run and for the whole capture:

- SLO state drives ``violated``: any spec with a violation episode
  marks the run's plane entity (and the run) violated.
- Anomaly detectors drive ``degraded``: monotone queue growth,
  link-utilization collapse with work still in flight, and starved
  flows (active but rate-zero at end of stream).

Everything derives from the typed event stream alone, so
:func:`build_health` produces bit-identical reports whether fed a live
session's events or a replayed JSONL spool — the reproducibility
contract ``repro health --replay`` asserts.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional, Sequence, Union

from repro.telemetry.chrome import PLATFORM_PID, _counter
from repro.telemetry.events import PlaneInfo, TelemetryEvent
from repro.telemetry.sinks import iter_jsonl_events
from repro.telemetry.slo import SloBoard, SloSpec
from repro.telemetry.timeseries import EntitySeries, TimeSeriesStore

VERDICTS = ("ok", "degraded", "violated")

# -- anomaly detectors --------------------------------------------------------

#: Minimum final depth before monotone queue growth is anomalous.
QUEUE_GROWTH_MIN_DEPTH = 4.0
#: Samples the growth must span without a single decrease.
QUEUE_GROWTH_MIN_POINTS = 8
#: Peak utilization below which a collapse cannot be claimed.
COLLAPSE_MIN_PEAK = 0.5
#: Final utilization at or below this fraction counts as collapsed.
COLLAPSE_FLOOR = 0.05
#: A still-active flow older than this with ~zero rate is starved.
STARVED_MIN_AGE = 1.0
STARVED_RATE_EPS = 1e-6


def detect_queue_growth(series: EntitySeries) -> Optional[dict]:
    """Monotone growth: the tail never decreases and ends deep.

    Checks the trailing ``QUEUE_GROWTH_MIN_POINTS`` samples; a healthy
    queue drains (some decrease appears), an overloaded one only grows.
    """
    if len(series) < QUEUE_GROWTH_MIN_POINTS:
        return None
    values = list(series.values)[-QUEUE_GROWTH_MIN_POINTS:]
    if values[-1] < QUEUE_GROWTH_MIN_DEPTH:
        return None
    if any(b < a for a, b in zip(values, values[1:])):
        return None
    if values[-1] <= values[0]:
        return None
    return {
        "detector": "queue_monotone_growth",
        "entity": series.name,
        "detail": f"depth grew {values[0]:g} -> {values[-1]:g} "
                  f"over last {len(values)} samples without draining",
    }


def detect_utilization_collapse(
    series: EntitySeries, store: TimeSeriesStore
) -> Optional[dict]:
    """A once-busy link went quiet while flows still traverse it."""
    if len(series) < 2:
        return None
    link_id = series.name.rsplit(".", 1)[-1]
    in_flight = any(
        link_id in state.links for state in store.active_flows.values()
    )
    if not in_flight:
        return None
    values = list(series.values)
    peak = max(values)
    if peak < COLLAPSE_MIN_PEAK or values[-1] > COLLAPSE_FLOOR * peak:
        return None
    return {
        "detector": "utilization_collapse",
        "entity": series.name,
        "detail": f"utilization fell from peak {peak:.3f} to "
                  f"{values[-1]:.3f} with flows still in flight",
    }


def detect_starved_flows(store: TimeSeriesStore) -> list[dict]:
    """Active flows holding ~zero rate for longer than the age bound."""
    anomalies = []
    for flow_id in sorted(store.active_flows):
        state = store.active_flows[flow_id]
        age = store.max_t - state.started_at
        if state.rate <= STARVED_RATE_EPS and age >= STARVED_MIN_AGE:
            anomalies.append({
                "detector": "starved_flow",
                "entity": f"flow.{flow_id}",
                "detail": f"flow {flow_id} active {age:.3f}s on "
                          f"{'/'.join(state.links)} at rate "
                          f"{state.rate:g} B/s",
                "links": list(state.links),
            })
    return anomalies


# -- assembly -----------------------------------------------------------------

def _worst(verdicts: Iterable[str]) -> str:
    rank = {v: i for i, v in enumerate(VERDICTS)}
    worst = "ok"
    for verdict in verdicts:
        if rank[verdict] > rank[worst]:
            worst = verdict
    return worst


def build_run_health(
    store: TimeSeriesStore,
    board: SloBoard,
    plane: str = "",
    window: Optional[float] = None,
) -> dict:
    """Assemble one run's health document (board must not be finalized).

    Finalizes the board at the later of the two stream clocks, runs the
    detectors, and rolls verdicts up: entity -> run.
    """
    t_end = max(store.max_t, board.max_t)
    board.finalize(t_end)
    slo = board.report()

    anomalies: list[dict] = []
    degraded: set[str] = set()
    for name in store.names("queue.depth."):
        hit = detect_queue_growth(store.series[name])
        if hit is not None:
            anomalies.append(hit)
            degraded.add(name)
    for name in store.names("link.util."):
        hit = detect_utilization_collapse(store.series[name], store)
        if hit is not None:
            anomalies.append(hit)
            degraded.add(name)
    for hit in detect_starved_flows(store):
        anomalies.append(hit)
        for link_id in hit.get("links", ()):
            degraded.add(f"link.util.{link_id}")

    entities: dict[str, dict] = {}
    for name in store.names():
        series = store.series[name]
        entities[name] = {
            "kind": series.kind,
            "verdict": "degraded" if name in degraded else "ok",
            "aggregates": series.aggregates(window=window),
            "samples": len(series),
            "clamped": series.clamped,
        }

    plane_verdict = "ok"
    if any(report["episodes"] for report in slo.values()):
        plane_verdict = "violated"
    elif anomalies:
        plane_verdict = "degraded"
    entities[f"plane.{plane or 'run'}"] = {
        "kind": "plane",
        "verdict": plane_verdict,
        "aggregates": {"count": 0},
        "samples": 0,
        "clamped": 0,
    }

    verdict = _worst(
        [entity["verdict"] for entity in entities.values()]
    )
    return {
        "plane": plane,
        "t_end": t_end,
        "slo": slo,
        "attainment": {
            name: report["attainment"] for name, report in slo.items()
        },
        "episodes": sum(len(r["episodes"]) for r in slo.values()),
        "anomalies": anomalies,
        "entities": entities,
        "verdict": verdict,
    }


def fold_runs(
    source: Union[str, Iterable[tuple[int, TelemetryEvent]]],
    specs: Sequence[SloSpec] = (),
    series_capacity: int = 4096,
) -> tuple[dict[int, TimeSeriesStore], dict[int, SloBoard], dict[int, str]]:
    """Fold a (run, event) stream into per-run stores/boards/plane labels."""
    if isinstance(source, (str, os.PathLike)):
        source = iter_jsonl_events(source)
    stores: dict[int, TimeSeriesStore] = {}
    boards: dict[int, SloBoard] = {}
    planes: dict[int, str] = {}
    for run, event in source:
        store = stores.get(run)
        if store is None:
            store = stores[run] = TimeSeriesStore(capacity=series_capacity)
            boards[run] = SloBoard(specs)
        if isinstance(event, PlaneInfo):
            planes[run] = event.plane
        store.feed(event)
        boards[run].feed(event)
    return stores, boards, planes


def build_health(
    source: Union[str, Iterable[tuple[int, TelemetryEvent]]],
    specs: Sequence[SloSpec] = (),
    series_capacity: int = 4096,
    window: Optional[float] = None,
    state: Optional[tuple] = None,
) -> dict:
    """Fold a (run, event) stream — or a JSONL spool path — into health.

    Each run gets its own store and board (experiments build a fresh
    environment, and therefore a fresh time base, per measurement).
    The same stream always produces the same document, byte for byte
    once JSON-serialized: the spool-replay reproducibility contract.
    Pass a :func:`fold_runs` result as *state* to reuse already-folded
    stream state (the CLI does, to also emit counter tracks).
    """
    if state is None:
        state = fold_runs(source, specs, series_capacity)
    stores, boards, planes = state
    runs = [
        {"run": run, **build_run_health(
            stores[run], boards[run],
            plane=planes.get(run, ""), window=window,
        )}
        for run in sorted(stores)
    ]
    return {
        "runs": runs,
        "overall": _worst([run["verdict"] for run in runs]) if runs else "ok",
        "total_episodes": sum(run["episodes"] for run in runs),
        "attainment": {
            # Worst attainment per spec across runs: the fleet view.
            name: min(run["attainment"][name] for run in runs)
            for name in (runs[0]["attainment"] if runs else {})
        },
    }


# -- presentation -------------------------------------------------------------

_VERDICT_MARK = {"ok": "+", "degraded": "~", "violated": "!"}


def format_dashboard(health: dict) -> str:
    """ASCII dashboard: one block per run, one line per noteworthy row."""
    lines = [f"overall: {health['overall']}  "
             f"episodes={health['total_episodes']}"]
    for run in health["runs"]:
        label = run["plane"] or f"run{run['run']}"
        lines.append("")
        lines.append(f"[{_VERDICT_MARK[run['verdict']]}] {label}  "
                     f"verdict={run['verdict']}  t_end={run['t_end']:.2f}s")
        for name, report in run["slo"].items():
            episodes = report["episodes"]
            ttrs = ", ".join(
                f"{ep['ttr']:.2f}s" for ep in episodes
                if ep["ttr"] is not None
            )
            lines.append(
                f"    slo {name:<11} attainment={report['attainment']:.4f} "
                f"worst_burn={report['worst_burn']:.2f} "
                f"episodes={len(episodes)}"
                + (f" ttr=[{ttrs}]" if ttrs else "")
            )
        flagged = [
            (name, entity)
            for name, entity in run["entities"].items()
            if entity["verdict"] != "ok"
        ]
        for name, entity in flagged:
            lines.append(f"    {_VERDICT_MARK[entity['verdict']]} {name}: "
                         f"{entity['verdict']}")
        for anomaly in run["anomalies"]:
            lines.append(f"    anomaly {anomaly['detector']} "
                         f"@ {anomaly['entity']}: {anomaly['detail']}")
        if not flagged and not run["anomalies"]:
            lines.append(f"    all {len(run['entities'])} entities ok")
    return "\n".join(lines)


def health_trace_events(boards: dict[int, SloBoard],
                        multi_run: bool = False) -> list[dict]:
    """Perfetto counter tracks: per-spec attainment and burn rate."""
    records: list[dict] = []
    for run in sorted(boards):
        board = boards[run]
        prefix = f"run{run}:" if multi_run else ""
        for name, tracker in sorted(board.trackers.items()):
            for t, burn in tracker.burn_history:
                records.append(_counter(
                    f"slo {name}", t, prefix + PLATFORM_PID,
                    f"slo:{name}", {"burn_rate": burn},
                ))
    return records
