"""Critical-path extraction over a request's span tree.

Walks one :class:`~repro.telemetry.profiler.spans.RequestTree` backward
from its finish time, following — at every stage — the predecessor that
actually gated it (the platform joins on *all* predecessors, so the
gating one is the last to produce its output).  The result is a single
causal chain of :class:`Segment` regions that tiles ``[arrived,
finished]`` with **no gaps and no overlaps**, which is what makes the
blame decomposition exact: the per-category durations sum to the
request's end-to-end latency by construction, not approximately.

Blame categories
----------------
``admission``   arrival to the entry stage's first span (dispatch,
                admission bookkeeping, ingress registration)
``queue``       waiting for a device slot (published queue spans)
``stage-wait``  gap between the gating predecessor finishing and this
                stage's first span (all-of join + dispatch delay)
``cold-start``  container + model load penalty
``compute``     function execution
``data-get``    input materialization (Get)
``data-put``    output storage (Put)
``egress``      final drain of exit-stage outputs to the host
``other``       intra-stage slack not covered by a published span
                (control-plane floors, lookup latencies)

``data-get`` + ``data-put`` + ``egress`` together are the paper's
"data passing" share (Fig. 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.telemetry.profiler.spans import RequestTree, Span

CATEGORIES = (
    "admission",
    "queue",
    "stage-wait",
    "cold-start",
    "compute",
    "data-get",
    "data-put",
    "egress",
    "other",
)

DATA_CATEGORIES = ("data-get", "data-put", "egress")

_KIND_TO_CATEGORY = {
    "queue": "queue",
    "get": "data-get",
    "cold-start": "cold-start",
    "exec": "compute",
    "put": "data-put",
    "egress": "egress",
}

# Exact-tiling tolerance: segment boundaries come from identical
# ``env.now`` reads so they should match bit-for-bit; the blame sum
# accumulates one float add per segment, hence the epsilon.
SUM_TOLERANCE = 1e-9


@dataclass(frozen=True)
class Segment:
    """One region of the critical path."""

    start: float
    end: float
    category: str
    stage: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPath:
    """The longest causal chain of one request, tiled into segments."""

    request_id: str
    segments: list[Segment] = field(default_factory=list)

    @property
    def blame(self) -> dict[str, float]:
        """Per-category time; keys restricted to non-zero categories."""
        out: dict[str, float] = {}
        for category in CATEGORIES:
            total = math.fsum(
                s.duration for s in self.segments if s.category == category
            )
            if total > 0:
                out[category] = total
        return out

    @property
    def total(self) -> float:
        return math.fsum(s.duration for s in self.segments)

    @property
    def data_passing_time(self) -> float:
        return math.fsum(
            s.duration
            for s in self.segments
            if s.category in DATA_CATEGORIES
        )

    def verify(self, latency: float) -> bool:
        """True iff the segments tile exactly and sum to *latency*."""
        if not self.segments:
            return latency == 0.0
        for before, after in zip(self.segments, self.segments[1:]):
            if before.end != after.start:
                return False
        span = self.segments[-1].end - self.segments[0].start
        if abs(span - latency) > SUM_TOLERANCE:
            return False
        return abs(self.total - latency) <= SUM_TOLERANCE


def extract_critical_path(
    tree: RequestTree, workflow=None
) -> Optional[CriticalPath]:
    """The critical path of a completed request (None if unfinished).

    *workflow* is the :class:`~repro.workflow.dag.Workflow` the request
    executed, used to follow real DAG edges; without it the walk falls
    back to timing inference (the stage whose span block finishes
    closest before the cursor is assumed to gate it), which is exact
    for chains and still tiles correctly for general DAGs.
    """
    if not tree.complete:
        return None
    finished = tree.finished
    arrived = tree.arrived
    segments_rev: list[Segment] = []

    blocks = {
        stage: _sorted_block(spans)
        for stage, spans in tree.stage_spans.items()
        if spans
    }
    done_memo: dict[str, float] = {}

    def block_done(stage: str) -> float:
        """When *stage*'s output became available."""
        memo = done_memo.get(stage)
        if memo is not None:
            return memo
        if stage in blocks:
            value = blocks[stage][-1].end
        elif workflow is not None and _known_stage(workflow, stage):
            # Skipped (conditional branch): ready when its inputs were.
            preds = workflow.predecessors(stage)
            value = max((block_done(p) for p in preds), default=arrived)
        else:
            value = arrived
        done_memo[stage] = value
        return value

    # -- egress tail: tile [last put/egress begin, finished] ----------------
    cursor = finished
    for span in sorted(
        tree.egress_spans, key=lambda s: (s.start, s.end), reverse=True
    ):
        cursor = _emit_span(segments_rev, span, cursor)

    # -- choose the exit stage that gated the egress ------------------------
    stage = _gating_exit(tree, blocks, block_done, workflow)
    visited: set[str] = set()
    while stage is not None and stage in blocks and stage not in visited:
        visited.add(stage)
        block = blocks[stage]
        block_end = block[-1].end
        if block_end < cursor:
            segments_rev.append(
                Segment(block_end, cursor, "stage-wait", stage)
            )
            cursor = block_end
        for span in reversed(block):
            cursor = _emit_span(segments_rev, span, cursor)
        stage = _gating_predecessor(
            stage, blocks, block_done, workflow, visited, cursor
        )

    if cursor > arrived:
        segments_rev.append(Segment(arrived, cursor, "admission", ""))

    path = CriticalPath(
        request_id=tree.request_id, segments=list(reversed(segments_rev))
    )
    return path


# -- helpers -------------------------------------------------------------------
def _sorted_block(spans: list[Span]) -> list[Span]:
    return sorted(spans, key=lambda s: (s.start, s.end))


def _known_stage(workflow, stage: str) -> bool:
    try:
        workflow.predecessors(stage)
        return True
    except Exception:
        return False


def _emit_span(
    segments_rev: list[Segment], span: Span, cursor: float
) -> float:
    """Append *span* (clamped to end at *cursor*) walking backward."""
    s_end = min(span.end, cursor)
    s_start = min(span.start, s_end)
    if s_end < cursor:
        # Un-spanned slack inside the block: control-plane floors etc.
        segments_rev.append(Segment(s_end, cursor, "other", span.stage))
    if s_start < s_end:
        category = _KIND_TO_CATEGORY.get(span.kind, "other")
        segments_rev.append(
            Segment(s_start, s_end, category, span.stage)
        )
    return s_start


def _gating_exit(tree, blocks, block_done, workflow) -> Optional[str]:
    """The exit stage whose output gated egress (last to finish)."""
    if workflow is not None:
        candidates = [s.name for s in workflow.exit_stages]
        # Resolve skipped exits down to their executed ancestors.
        resolved = [
            _resolve_executed(name, blocks, workflow)
            for name in candidates
        ]
        executed = [name for name in resolved if name in blocks]
        if executed:
            return max(executed, key=block_done)
    if tree.egress_spans:
        names = {s.stage for s in tree.egress_spans if s.stage in blocks}
        if names:
            return max(names, key=block_done)
    if blocks:
        return max(blocks, key=block_done)
    return None


def _resolve_executed(stage, blocks, workflow) -> Optional[str]:
    """Walk a skipped stage up to the executed ancestor gating it."""
    seen = set()
    while stage is not None and stage not in blocks:
        if stage in seen or not _known_stage(workflow, stage):
            return None
        seen.add(stage)
        preds = workflow.predecessors(stage)
        executed = [p for p in preds if p in blocks]
        if executed:
            # The last-finishing executed predecessor gated it.
            return max(
                executed, key=lambda p: blocks[p][-1].end
            )
        if not preds:
            return None
        stage = preds[0]
    return stage


def _gating_predecessor(
    stage, blocks, block_done, workflow, visited, cursor
) -> Optional[str]:
    """The predecessor that gated *stage* (walk target), or None."""
    if workflow is not None and _known_stage(workflow, stage):
        preds = workflow.predecessors(stage)
        if not preds:
            return None
        resolved = [
            _resolve_executed(p, blocks, workflow) for p in preds
        ]
        executed = [
            p for p in resolved if p is not None and p not in visited
        ]
        if not executed:
            return None
        return max(executed, key=block_done)
    # Timing fallback: the unvisited block finishing last at/before the
    # cursor is assumed to be the gating producer.
    candidates = [
        name
        for name, block in blocks.items()
        if name not in visited and block[-1].end <= cursor + SUM_TOLERANCE
    ]
    if not candidates:
        return None
    return max(candidates, key=block_done)
