"""Causal span trees: one tree of typed spans per request.

The :class:`SpanTreeBuilder` subscribes to a telemetry bus (or is fed a
recorded event stream after the fact) and assembles, per request id,
every timed region the platform published for it: queue waits, cold
starts, stage compute, per-edge data transfers, pool-allocation delays,
and the final egress drain.  Flows are kept with their full bandwidth
history (one rate per :class:`~repro.telemetry.events.FlowsReallocated`
epoch) so the contention attributor can integrate shortfall over time.

Builders are pure accumulators: they never touch the simulation, so
they can be attached live (zero extra events) or replayed offline from
a :class:`~repro.telemetry.TraceRecorder` / session event list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.telemetry.bus import EventBus
from repro.telemetry.events import (
    FlowFinished,
    FlowsReallocated,
    FlowStarted,
    PlaneInfo,
    PoolAlloc,
    RequestArrived,
    RequestFinished,
    StageSpan,
    TelemetryEvent,
    TransferFinished,
    TransferStarted,
)


@dataclass(frozen=True)
class Span:
    """One timed region of a request (``kind`` as in StageSpan)."""

    kind: str
    start: float
    end: float
    stage: str = ""
    device_id: str = ""
    replica: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class FlowRecord:
    """One flow's life, including its full bandwidth-epoch history."""

    flow_id: int
    tag: str
    owner: str
    links: tuple[str, ...]
    size: float
    nominal_bw: float
    started: float
    finished: Optional[float] = None
    # (t, rate) samples: the rate held from t until the next sample.
    rate_points: list[tuple[float, float]] = field(default_factory=list)

    @property
    def duration(self) -> Optional[float]:
        if self.finished is None:
            return None
        return self.finished - self.started

    def epochs(self) -> list[tuple[float, float, float]]:
        """Piecewise-constant ``(t0, t1, rate)`` history of this flow."""
        if self.finished is None or not self.rate_points:
            return []
        out: list[tuple[float, float, float]] = []
        for i, (t0, rate) in enumerate(self.rate_points):
            t1 = (
                self.rate_points[i + 1][0]
                if i + 1 < len(self.rate_points)
                else self.finished
            )
            if t1 > t0:
                out.append((t0, t1, rate))
        return out


@dataclass
class TransferSpan:
    """One engine-level transfer (possibly many flows underneath)."""

    transfer_id: int
    tag: str
    owner: str
    size: float
    src: str
    dst: str
    start: float
    end: Optional[float] = None

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start


@dataclass(frozen=True)
class PoolWait:
    """One pool allocation: request-to-grant delay on a device."""

    device_id: str
    requested_at: float
    granted_at: float
    size: float
    grew: bool

    @property
    def delay(self) -> float:
        return self.granted_at - self.requested_at


@dataclass
class RequestTree:
    """Everything the profiler knows about one request."""

    request_id: str
    workflow: str
    arrived: float
    finished: Optional[float] = None
    latency: Optional[float] = None
    slo_met: Optional[bool] = None
    # stage name -> spans in publish order (queue/get/cold-start/exec/put)
    stage_spans: dict[str, list[Span]] = field(default_factory=dict)
    egress_spans: list[Span] = field(default_factory=list)
    transfers: list[TransferSpan] = field(default_factory=list)
    flow_ids: list[int] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.finished is not None


class SpanTreeBuilder:
    """Assembles :class:`RequestTree` objects from a telemetry stream."""

    def __init__(self) -> None:
        self.plane: str = ""
        self.requests: dict[str, RequestTree] = {}
        self.flows: dict[int, FlowRecord] = {}
        self.pool_waits: list[PoolWait] = []
        self._bus: Optional[EventBus] = None

    # -- live attachment ---------------------------------------------------
    def attach(self, bus: EventBus) -> "SpanTreeBuilder":
        """Subscribe to every event on *bus* (detachable later)."""
        self._bus = bus
        bus.subscribe(None, self.feed)
        return self

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(None, self.feed)
            self._bus = None

    # -- event intake ------------------------------------------------------
    def feed(self, event: TelemetryEvent) -> None:
        """Fold one event into the trees (order must be publish order)."""
        if isinstance(event, StageSpan):
            tree = self.requests.get(event.request_id)
            if tree is None:
                return
            span = Span(
                kind=event.kind,
                start=event.start,
                end=event.end,
                stage=event.stage,
                device_id=event.device_id,
                replica=event.replica,
            )
            if event.kind == "egress":
                tree.egress_spans.append(span)
            else:
                tree.stage_spans.setdefault(event.stage, []).append(span)
        elif isinstance(event, RequestArrived):
            self.requests[event.request_id] = RequestTree(
                request_id=event.request_id,
                workflow=event.workflow,
                arrived=event.t,
            )
        elif isinstance(event, RequestFinished):
            tree = self.requests.get(event.request_id)
            if tree is not None:
                tree.finished = event.t
                tree.latency = event.latency
                tree.slo_met = event.slo_met
        elif isinstance(event, FlowStarted):
            record = FlowRecord(
                flow_id=event.flow_id,
                tag=event.tag,
                owner=event.owner,
                links=event.links,
                size=event.size,
                nominal_bw=event.nominal_bw,
                started=event.t,
            )
            self.flows[event.flow_id] = record
            if event.owner:
                tree = self.requests.get(event.owner)
                if tree is not None:
                    tree.flow_ids.append(event.flow_id)
        elif isinstance(event, FlowsReallocated):
            for flow_id, rate in zip(event.component, event.rates):
                record = self.flows.get(flow_id)
                if record is None:
                    continue
                points = record.rate_points
                if points and points[-1][0] == event.t:
                    points[-1] = (event.t, rate)
                else:
                    points.append((event.t, rate))
        elif isinstance(event, FlowFinished):
            record = self.flows.get(event.flow_id)
            if record is not None:
                record.finished = event.t
        elif isinstance(event, TransferStarted):
            span = TransferSpan(
                transfer_id=event.transfer_id,
                tag=event.tag,
                owner=event.owner,
                size=event.size,
                src=event.src,
                dst=event.dst,
                start=event.t,
            )
            if event.owner:
                tree = self.requests.get(event.owner)
                if tree is not None:
                    tree.transfers.append(span)
        elif isinstance(event, TransferFinished):
            if event.owner:
                tree = self.requests.get(event.owner)
                if tree is not None:
                    for span in reversed(tree.transfers):
                        if span.transfer_id == event.transfer_id:
                            span.end = event.t
                            break
        elif isinstance(event, PoolAlloc):
            self.pool_waits.append(PoolWait(
                device_id=event.device_id,
                requested_at=event.requested_at,
                granted_at=event.t,
                size=event.size,
                grew=event.grew,
            ))
        elif isinstance(event, PlaneInfo):
            self.plane = event.plane

    # -- convenience -------------------------------------------------------
    @property
    def completed(self) -> list[RequestTree]:
        """Finished requests, in arrival order."""
        return [t for t in self.requests.values() if t.complete]


def build_profiles(
    events: Iterable,
) -> dict[int, SpanTreeBuilder]:
    """Replay a recorded stream into one builder per run.

    Accepts either plain events or the ``(run_index, event)`` tuples a
    :class:`~repro.telemetry.TelemetrySession` stores; plain events all
    land in run 0.
    """
    builders: dict[int, SpanTreeBuilder] = {}
    for item in events:
        if isinstance(item, tuple):
            run, event = item
        else:
            run, event = 0, item
        builder = builders.get(run)
        if builder is None:
            builder = builders[run] = SpanTreeBuilder()
        builder.feed(event)
    return builders
