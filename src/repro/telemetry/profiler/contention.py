"""Link-contention attribution for transfer flows (paper §3.2.2).

Splits every finished flow's wall time into *serialization* (the time
its bytes take at the path's nominal bottleneck bandwidth — what the
flow would pay alone) and *contention* (everything above that).  The
contention is then attributed by name: for each bandwidth epoch the
flow lived through, the shortfall bytes ``(nominal - granted) * dt``
are charged to the co-resident flows sharing at least one link, in
proportion to the bandwidth those flows were granted during the epoch.

This is the observability counterpart of the asymmetric-NVLink story:
on DGX-V100, a topology-blind route that relays over PCIe shares the
source GPU's uplink with the host transfer it is supposed to
accelerate, and the attribution names exactly which flow stole how
much time from which.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.telemetry.profiler.spans import FlowRecord

_EPS = 1e-12


@dataclass
class ContentionShare:
    """How much one co-resident flow slowed the victim down."""

    flow_id: int
    owner: str
    tag: str
    shared_links: tuple[str, ...]
    stolen_time: float = 0.0
    stolen_bytes: float = 0.0


@dataclass
class FlowContention:
    """Serialization/contention split of one finished flow."""

    flow_id: int
    owner: str
    tag: str
    serialization_time: float
    contention_time: float
    duration: float
    shares: list[ContentionShare] = field(default_factory=list)


def attribute_contention(
    flows: dict[int, FlowRecord],
) -> dict[int, FlowContention]:
    """Per-flow contention attribution over a set of recorded flows.

    Only finished flows with a known nominal bandwidth are analysed;
    the rest are skipped (they cannot have a serialization baseline).
    """
    out: dict[int, FlowContention] = {}
    finished = [
        f
        for f in flows.values()
        if f.finished is not None and f.nominal_bw > _EPS
    ]
    for flow in finished:
        serialization = flow.size / flow.nominal_bw
        duration = flow.finished - flow.started
        contention = max(0.0, duration - serialization)
        record = FlowContention(
            flow_id=flow.flow_id,
            owner=flow.owner,
            tag=flow.tag,
            serialization_time=serialization,
            contention_time=contention,
            duration=duration,
            shares=[],
        )
        out[flow.flow_id] = record
        if contention <= _EPS:
            continue
        shares = _attribute_flow(flow, flows)
        # Scale raw shortfall bytes onto the actual contention time so
        # the named shares sum to (at most) the observed slowdown even
        # when chunking/batch overheads inflate the raw estimate.
        total_bytes = math.fsum(s.stolen_bytes for s in shares)
        if total_bytes > _EPS:
            for share in shares:
                share.stolen_time = contention * (
                    share.stolen_bytes / total_bytes
                )
        record.shares = sorted(
            shares, key=lambda s: s.stolen_time, reverse=True
        )
    return out


def _attribute_flow(
    victim: FlowRecord, flows: dict[int, FlowRecord]
) -> list[ContentionShare]:
    """Distribute the victim's shortfall bytes over link-sharing flows."""
    victim_links = set(victim.links)
    suspects: dict[int, ContentionShare] = {}
    neighbours: list[tuple[FlowRecord, tuple[str, ...]]] = []
    for other in flows.values():
        if other.flow_id == victim.flow_id:
            continue
        shared = victim_links.intersection(other.links)
        if not shared:
            continue
        if other.finished is not None and other.finished <= victim.started:
            continue
        if other.started >= (victim.finished or other.started):
            continue
        neighbours.append((other, tuple(sorted(shared))))
    if not neighbours:
        return []

    for t0, t1, rate in victim.epochs():
        shortfall = max(0.0, (victim.nominal_bw - rate) * (t1 - t0))
        if shortfall <= _EPS:
            continue
        # Co-resident during this epoch, weighted by their granted rate
        # (they consumed the bandwidth the victim did not get).
        active: list[tuple[FlowRecord, tuple[str, ...], float]] = []
        for other, shared in neighbours:
            o_end = other.finished if other.finished is not None else t1
            if other.started >= t1 or o_end <= t0:
                continue
            weight = _mean_rate_over(other, t0, t1)
            active.append((other, shared, weight))
        if not active:
            continue
        total_weight = math.fsum(w for _o, _s, w in active)
        for other, shared, weight in active:
            fraction = (
                weight / total_weight
                if total_weight > _EPS
                else 1.0 / len(active)
            )
            share = suspects.get(other.flow_id)
            if share is None:
                share = suspects[other.flow_id] = ContentionShare(
                    flow_id=other.flow_id,
                    owner=other.owner,
                    tag=other.tag,
                    shared_links=shared,
                )
            stolen = shortfall * fraction
            share.stolen_bytes += stolen
            if victim.nominal_bw > _EPS:
                share.stolen_time += stolen / victim.nominal_bw
    return list(suspects.values())


def _mean_rate_over(flow: FlowRecord, t0: float, t1: float) -> float:
    """Flow's average granted rate across ``[t0, t1]`` overlap."""
    if t1 <= t0:
        return 0.0
    moved = 0.0
    covered = 0.0
    for e0, e1, rate in flow.epochs():
        lo = max(e0, t0)
        hi = min(e1, t1)
        if hi > lo:
            moved += rate * (hi - lo)
            covered += hi - lo
    if covered <= _EPS:
        return 0.0
    return moved / covered
