"""Blame aggregation and reporting over profiled runs.

Takes the per-run :class:`~repro.telemetry.profiler.spans.SpanTreeBuilder`
output, extracts each completed request's critical path, attributes
transfer contention, and folds everything into:

- a ``profile.json``-shaped document (:func:`profile_document`) with
  per-request critical paths and per-plane category aggregates;
- ASCII :class:`~repro.experiments.harness.ExperimentTable` views
  (:func:`breakdown_table`): the per-category percentile breakdown and
  the Fig.-3-shaped "data-passing share of latency" comparison;
- Chrome ``trace_event`` slices for the critical-path track
  (:func:`critical_path_trace_events`) that ``repro trace`` appends to
  its Perfetto export.

Imports of the experiment harness are deferred into function bodies:
this module is reachable from ``repro.telemetry.profiler`` and must not
drag the platform (and its telemetry imports) into a cycle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.telemetry.profiler.contention import attribute_contention
from repro.telemetry.profiler.critical_path import (
    CATEGORIES,
    DATA_CATEGORIES,
    extract_critical_path,
)
from repro.telemetry.profiler.spans import SpanTreeBuilder

SCHEMA_VERSION = 1


@dataclass
class BlameBreakdown:
    """Aggregate blame for one plane across its completed requests."""

    plane: str
    requests: int = 0
    latencies: list[float] = field(default_factory=list)
    # category -> per-request critical-path durations
    category_times: dict[str, list[float]] = field(default_factory=dict)

    def add(self, latency: float, blame: dict[str, float]) -> None:
        self.requests += 1
        self.latencies.append(latency)
        for category in CATEGORIES:
            self.category_times.setdefault(category, []).append(
                blame.get(category, 0.0)
            )

    def total(self, category: str) -> float:
        return math.fsum(self.category_times.get(category, ()))

    @property
    def total_latency(self) -> float:
        return math.fsum(self.latencies)

    def share(self, category: str) -> float:
        denominator = self.total_latency
        if denominator <= 0:
            return 0.0
        return self.total(category) / denominator

    @property
    def data_passing_share(self) -> float:
        """Critical-path data-passing fraction (Fig.-3 shape)."""
        return math.fsum(self.share(c) for c in DATA_CATEGORIES)


def _percentile(values: list[float], q: float) -> float:
    """Linear-interpolated percentile; 0.0 on an empty list."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    fraction = rank - lo
    return ordered[lo] * (1 - fraction) + ordered[hi] * fraction


def _workflow_for(name: str):
    """The Workflow DAG behind a deployed workload name, or None."""
    from repro.workflow import WORKLOADS, get_workload

    if name in WORKLOADS:
        return get_workload(name).workflow
    return None


def profile_document(
    builders: dict[int, SpanTreeBuilder],
    experiment: str = "",
) -> dict:
    """Build the ``profile.json`` document for a profiled session.

    One entry per run (environment) with every completed request's
    critical path, plus per-plane aggregates.  Requests whose blame
    does not tile exactly to their latency are flagged ``exact: false``
    (none should be, the property suite enforces it).
    """
    workflow_cache: dict[str, object] = {}
    breakdowns: dict[str, BlameBreakdown] = {}
    runs = []
    for run_index in sorted(builders):
        builder = builders[run_index]
        plane = builder.plane or f"run{run_index}"
        contention = attribute_contention(builder.flows)
        requests = []
        for tree in builder.completed:
            if tree.workflow not in workflow_cache:
                workflow_cache[tree.workflow] = _workflow_for(tree.workflow)
            workflow = workflow_cache[tree.workflow]
            path = extract_critical_path(tree, workflow)
            if path is None:
                continue
            blame = path.blame
            serialization = math.fsum(
                contention[fid].serialization_time
                for fid in tree.flow_ids
                if fid in contention
            )
            stolen = math.fsum(
                contention[fid].contention_time
                for fid in tree.flow_ids
                if fid in contention
            )
            requests.append({
                "request_id": tree.request_id,
                "workflow": tree.workflow,
                "arrived": tree.arrived,
                "finished": tree.finished,
                "latency": tree.latency,
                "slo_met": tree.slo_met,
                "exact": path.verify(tree.latency),
                "blame": blame,
                "data_passing_time": path.data_passing_time,
                "serialization_time": serialization,
                "contention_time": stolen,
                "critical_path": [
                    {
                        "start": s.start,
                        "end": s.end,
                        "category": s.category,
                        "stage": s.stage,
                    }
                    for s in path.segments
                ],
            })
            breakdown = breakdowns.get(plane)
            if breakdown is None:
                breakdown = breakdowns[plane] = BlameBreakdown(plane)
            breakdown.add(tree.latency, blame)
        runs.append({
            "run": run_index,
            "plane": plane,
            "requests": requests,
        })

    planes = {}
    for plane, breakdown in breakdowns.items():
        categories = {}
        for category in CATEGORIES:
            times = breakdown.category_times.get(category, [])
            total = math.fsum(times)
            if total <= 0:
                continue
            categories[category] = {
                "total_s": total,
                "share": breakdown.share(category),
                "p50_ms": _percentile(times, 0.50) * 1e3,
                "p99_ms": _percentile(times, 0.99) * 1e3,
            }
        planes[plane] = {
            "requests": breakdown.requests,
            "p50_ms": _percentile(breakdown.latencies, 0.50) * 1e3,
            "p99_ms": _percentile(breakdown.latencies, 0.99) * 1e3,
            "data_passing_share": breakdown.data_passing_share,
            "categories": categories,
        }

    return {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "repro profile",
        "experiment": experiment,
        "runs": runs,
        "planes": planes,
    }


def breakdown_table(document: dict):
    """ASCII tables for a :func:`profile_document` result.

    Returns ``[per-category breakdown, data-passing share]`` as
    :class:`~repro.experiments.harness.ExperimentTable` rows.
    """
    from repro.experiments.harness import ExperimentTable

    breakdown = ExperimentTable(
        name="critical-path blame breakdown",
        columns=[
            "plane", "category", "share_pct", "total_s",
            "p50_ms", "p99_ms",
        ],
        notes=(
            "Per-plane critical-path time by blame category; shares "
            "sum to 100% of end-to-end latency by construction."
        ),
    )
    share = ExperimentTable(
        name="data-passing share of latency (Fig. 3 shape)",
        columns=[
            "plane", "requests", "p50_ms", "p99_ms", "data_passing_pct",
        ],
        notes="data-get + data-put + egress on the critical path.",
    )
    for plane, stats in document.get("planes", {}).items():
        for category in CATEGORIES:
            entry = stats["categories"].get(category)
            if entry is None:
                continue
            breakdown.add(
                plane=plane,
                category=category,
                share_pct=entry["share"] * 100.0,
                total_s=entry["total_s"],
                p50_ms=entry["p50_ms"],
                p99_ms=entry["p99_ms"],
            )
        share.add(
            plane=plane,
            requests=stats["requests"],
            p50_ms=stats["p50_ms"],
            p99_ms=stats["p99_ms"],
            data_passing_pct=stats["data_passing_share"] * 100.0,
        )
    return [breakdown, share]


def critical_path_trace_events(
    builders: dict[int, SpanTreeBuilder],
    multi_run: Optional[bool] = None,
) -> list[dict]:
    """Chrome ``trace_event`` slices for every request's critical path.

    One dedicated pid per run (``critical-path`` or
    ``run<N>:critical-path`` when several runs share the trace), one
    tid per request, one complete ("X") slice per segment named after
    its blame category — so the gating chain reads left-to-right in
    Perfetto alongside the regular spans.
    """
    if multi_run is None:
        multi_run = len(builders) > 1
    events: list[dict] = []
    workflow_cache: dict[str, object] = {}
    for run_index in sorted(builders):
        builder = builders[run_index]
        pid = (
            f"run{run_index}:critical-path"
            if multi_run
            else "critical-path"
        )
        for tree in builder.completed:
            if tree.workflow not in workflow_cache:
                workflow_cache[tree.workflow] = _workflow_for(tree.workflow)
            path = extract_critical_path(
                tree, workflow_cache[tree.workflow]
            )
            if path is None:
                continue
            for segment in path.segments:
                if segment.duration <= 0:
                    continue
                name = segment.category
                if segment.stage:
                    name = f"{segment.category}:{segment.stage}"
                events.append({
                    "name": name,
                    "cat": "critical-path",
                    "ph": "X",
                    "ts": segment.start * 1e6,
                    "dur": segment.duration * 1e6,
                    "pid": pid,
                    "tid": tree.request_id,
                    "args": {"category": segment.category},
                })
    return events
