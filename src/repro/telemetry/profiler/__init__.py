"""Causal profiler: span trees, critical paths, contention, blame.

Turns a recorded telemetry stream (or a live bus) into per-request
causal span trees, extracts each request's critical path with exact
blame tiling (categories sum to end-to-end latency), names the flows
that stole bandwidth from each transfer, and aggregates everything
into the ``repro profile`` report.

This subpackage is intentionally *not* re-exported from
``repro.telemetry``: its reporting layer reaches into the experiment
harness, which builds on the platform, which publishes telemetry —
importing it from the package root would create a cycle.  Import it
explicitly::

    from repro.telemetry.profiler import build_profiles, profile_document
"""

from repro.telemetry.profiler.blame import (
    BlameBreakdown,
    breakdown_table,
    critical_path_trace_events,
    profile_document,
)
from repro.telemetry.profiler.contention import (
    ContentionShare,
    FlowContention,
    attribute_contention,
)
from repro.telemetry.profiler.critical_path import (
    CATEGORIES,
    DATA_CATEGORIES,
    SUM_TOLERANCE,
    CriticalPath,
    Segment,
    extract_critical_path,
)
from repro.telemetry.profiler.spans import (
    FlowRecord,
    PoolWait,
    RequestTree,
    Span,
    SpanTreeBuilder,
    TransferSpan,
    build_profiles,
)

__all__ = [
    "BlameBreakdown",
    "CATEGORIES",
    "ContentionShare",
    "CriticalPath",
    "DATA_CATEGORIES",
    "FlowContention",
    "FlowRecord",
    "PoolWait",
    "RequestTree",
    "SUM_TOLERANCE",
    "Segment",
    "Span",
    "SpanTreeBuilder",
    "TransferSpan",
    "attribute_contention",
    "breakdown_table",
    "build_profiles",
    "critical_path_trace_events",
    "extract_critical_path",
    "profile_document",
]
