"""Namespaced metrics registry: counters, gauges, histograms.

Built on the statistics primitives the experiments already use
(:class:`~repro.metrics.LatencyRecorder` for histograms,
:class:`~repro.metrics.Timeline` for gauges).  Metric names are
dot-namespaced — ``net.bytes_moved``, ``memory.pool_in_use.n0.g0`` —
and the first component is the subsystem namespace the summary groups
by.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.common.errors import ConfigError
from repro.metrics.stats import LatencyRecorder, Timeline


class Counter:
    """A monotonically increasing count (or byte total)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError(f"counter {self.name} increment must be >= 0")
        self.value += amount


class Gauge:
    """A sampled time-varying value, backed by a :class:`Timeline`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.timeline = Timeline()

    def set(self, t: float, value: float) -> None:
        # A registry can outlive several simulation runs (capture()
        # spans many fresh environments), so the clock may restart;
        # clamp to keep the backing timeline monotonic.
        if self.timeline.times and t < self.timeline.times[-1]:
            t = self.timeline.times[-1]
        self.timeline.sample(t, value)

    @property
    def last(self) -> float:
        return self.timeline.values[-1] if len(self.timeline) else float("nan")

    @property
    def peak(self) -> float:
        return self.timeline.peak

    @property
    def mean(self) -> float:
        return self.timeline.mean


class Histogram:
    """A distribution of observations, backed by a LatencyRecorder."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.recorder = LatencyRecorder(name)

    def observe(self, value: float) -> None:
        self.recorder.add(value)

    def __len__(self) -> int:
        return len(self.recorder)


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Creates and holds metrics under dot-separated namespaces."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get(self, name: str, cls):
        if "." not in name:
            raise ConfigError(
                f"metric name {name!r} needs a namespace (e.g. 'net.{name}')"
            )
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ConfigError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    # -- introspection ------------------------------------------------------
    def names(self) -> list[str]:
        return sorted(self._metrics)

    def namespaces(self) -> list[str]:
        return sorted({name.split(".", 1)[0] for name in self._metrics})

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def summary(self) -> dict[str, dict[str, dict]]:
        """Nested ``{namespace: {metric: {stat: value}}}`` snapshot."""
        out: dict[str, dict[str, dict]] = {}
        for name in self.names():
            namespace, short = name.split(".", 1)
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                stats = {"type": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                stats = {
                    "type": "gauge",
                    "last": metric.last,
                    "peak": metric.peak,
                    "mean": metric.mean,
                    "samples": len(metric.timeline),
                }
            else:
                rec = metric.recorder
                stats = {
                    "type": "histogram",
                    "count": len(rec),
                    "mean": rec.mean,
                    "p50": rec.p50,
                    "p99": rec.p99,
                    "max": rec.maximum,
                }
            out.setdefault(namespace, {})[short] = stats
        return out
