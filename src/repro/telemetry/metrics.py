"""Namespaced metrics registry: counters, gauges, histograms.

Built on the statistics primitives the experiments already use
(:class:`~repro.metrics.LatencyRecorder` for histograms,
:class:`~repro.metrics.Timeline` for gauges).  Metric names are
dot-namespaced — ``net.bytes_moved``, ``memory.pool_in_use.n0.g0`` —
and the first component is the subsystem namespace the summary groups
by.

Two registry modes share an identical summary shape:

- ``exact`` (default): histograms keep every sample, gauges keep their
  full :class:`~repro.metrics.Timeline` — the differential oracle.
- ``bounded``: histograms use a fixed-size
  :class:`~repro.metrics.ReservoirRecorder` (count/mean/max exact,
  quantiles within :func:`~repro.metrics.reservoir_rank_error` bounds)
  and gauges keep O(1) scalar aggregates (last/peak/samples exact,
  mean as a running sum).  Memory is flat in event count, which is
  what lets million-request trace runs keep full metric summaries.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.common.errors import ConfigError
from repro.metrics.stats import (
    DEFAULT_RESERVOIR_CAPACITY,
    LatencyRecorder,
    ReservoirRecorder,
    Timeline,
)

REGISTRY_MODES = ("exact", "bounded")


class Counter:
    """A monotonically increasing count (or byte total)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError(f"counter {self.name} increment must be >= 0")
        self.value += amount


class Gauge:
    """A sampled time-varying value, backed by a :class:`Timeline`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.timeline = Timeline()

    def set(self, t: float, value: float) -> None:
        # A registry can outlive several simulation runs (capture()
        # spans many fresh environments), so the clock may restart;
        # clamp to keep the backing timeline monotonic.
        if self.timeline.times and t < self.timeline.times[-1]:
            t = self.timeline.times[-1]
        self.timeline.sample(t, value)

    def __len__(self) -> int:
        return len(self.timeline)

    @property
    def last(self) -> float:
        return self.timeline.values[-1] if len(self.timeline) else float("nan")

    @property
    def peak(self) -> float:
        return self.timeline.peak

    @property
    def mean(self) -> float:
        return self.timeline.mean


class BoundedGauge:
    """O(1) gauge: exact last/peak/count, mean as a running sum.

    Drops the per-sample timeline (no ``value_at`` lookups), which is
    the trade a million-request streaming run makes; ``last``/``peak``
    are exact, ``mean`` differs from the exact oracle only by running-
    vs-pairwise float summation.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._count = 0
        self._sum = 0.0
        self._last = float("nan")
        self._last_t = float("-inf")
        self._peak = float("-inf")

    def set(self, t: float, value: float) -> None:
        # Same clock-restart clamp as Gauge: time never runs backwards.
        if t < self._last_t:
            t = self._last_t
        self._last_t = t
        self._last = value
        self._count += 1
        self._sum += value
        if value > self._peak:
            self._peak = value

    def __len__(self) -> int:
        return self._count

    @property
    def last(self) -> float:
        return self._last

    @property
    def peak(self) -> float:
        return self._peak if self._count else float("nan")

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else float("nan")


class Histogram:
    """A distribution of observations.

    ``exact`` mode is backed by a :class:`LatencyRecorder` holding
    every sample; ``bounded`` mode by a fixed-capacity
    :class:`ReservoirRecorder`.
    """

    def __init__(self, name: str, mode: str = "exact",
                 reservoir_capacity: int = DEFAULT_RESERVOIR_CAPACITY) -> None:
        self.name = name
        self.mode = mode
        if mode == "exact":
            self.recorder: Union[LatencyRecorder, ReservoirRecorder] = (
                LatencyRecorder(name)
            )
        elif mode == "bounded":
            self.recorder = ReservoirRecorder(
                name, capacity=reservoir_capacity
            )
        else:
            raise ConfigError(
                f"unknown histogram mode {mode!r}; choose from "
                f"{REGISTRY_MODES}"
            )

    def observe(self, value: float) -> None:
        self.recorder.add(value)

    def __len__(self) -> int:
        return len(self.recorder)


Metric = Union[Counter, Gauge, BoundedGauge, Histogram]
_GAUGE_TYPES = (Gauge, BoundedGauge)


class MetricsRegistry:
    """Creates and holds metrics under dot-separated namespaces."""

    def __init__(self, mode: str = "exact",
                 reservoir_capacity: int = DEFAULT_RESERVOIR_CAPACITY) -> None:
        if mode not in REGISTRY_MODES:
            raise ConfigError(
                f"unknown registry mode {mode!r}; choose from "
                f"{REGISTRY_MODES}"
            )
        self.mode = mode
        self.reservoir_capacity = reservoir_capacity
        self._metrics: dict[str, Metric] = {}

    def _get(self, name: str, kinds, factory):
        if "." not in name:
            raise ConfigError(
                f"metric name {name!r} needs a namespace (e.g. 'net.{name}')"
            )
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory(name)
            self._metrics[name] = metric
        elif not isinstance(metric, kinds):
            raise ConfigError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Union[Gauge, BoundedGauge]:
        factory = Gauge if self.mode == "exact" else BoundedGauge
        return self._get(name, _GAUGE_TYPES, factory)

    def histogram(self, name: str) -> Histogram:
        def factory(metric_name: str) -> Histogram:
            return Histogram(
                metric_name,
                mode=self.mode,
                reservoir_capacity=self.reservoir_capacity,
            )

        return self._get(name, Histogram, factory)

    # -- introspection ------------------------------------------------------
    def names(self) -> list[str]:
        return sorted(self._metrics)

    def namespaces(self) -> list[str]:
        return sorted({name.split(".", 1)[0] for name in self._metrics})

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def summary(self) -> dict[str, dict[str, dict]]:
        """Nested ``{namespace: {metric: {stat: value}}}`` snapshot.

        The shape is identical in both registry modes, so an exact and
        a bounded registry fed the same event stream can be compared
        key-for-key.
        """
        out: dict[str, dict[str, dict]] = {}
        for name in self.names():
            namespace, short = name.split(".", 1)
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                stats = {"type": "counter", "value": metric.value}
            elif isinstance(metric, _GAUGE_TYPES):
                stats = {
                    "type": "gauge",
                    "last": metric.last,
                    "peak": metric.peak,
                    "mean": metric.mean,
                    "samples": len(metric),
                }
            else:
                rec = metric.recorder
                stats = {
                    "type": "histogram",
                    "count": len(rec),
                    "mean": rec.mean,
                    "p50": rec.p50,
                    "p99": rec.p99,
                    "max": rec.maximum,
                }
            out.setdefault(namespace, {})[short] = stats
        return out
