"""Chrome / Perfetto ``trace_event`` JSON export.

Maps the telemetry event stream onto the Trace Event Format that
``chrome://tracing`` and https://ui.perfetto.dev render:

- one **process** (``pid``) per node (device ids are ``n0.g3``-style,
  so the node is the prefix before the first dot);
- one **thread** (``tid``) per GPU, link, or host device;
- transfers, flows, and request stage spans become complete (``"X"``)
  slices; store operations become instants (``"i"``); pool occupancy,
  stage-queue depth, and admission token-bucket levels become counter
  (``"C"``) tracks.

Simulation seconds map to trace microseconds.  A telemetry session may
span several independent simulation runs (an experiment builds a fresh
``Environment`` per measurement); runs are kept apart by prefixing the
pid with ``run<N>:``.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional, Union

from repro.telemetry.events import (
    AdmissionTokens,
    FlowFinished,
    PlacementDecision,
    PoolAlloc,
    PoolFree,
    PoolTrim,
    ReplicaOutstanding,
    RequestArrived,
    RequestFinished,
    StageQueueDepth,
    StageSpan,
    StoreEvict,
    StoreGet,
    StorePut,
    TelemetryEvent,
    TransferFinished,
)

_US_PER_SECOND = 1e6
PLATFORM_PID = "platform"


def _node_of(device_id: str) -> str:
    """Node component of a device or link id (``n0.g3`` -> ``n0``)."""
    head = device_id.split(".", 1)[0]
    return head if head else "cluster"


def _ts(t: float) -> float:
    return t * _US_PER_SECOND


def _slice(name: str, cat: str, start: float, end: float, pid: str,
           tid: str, args: dict) -> dict:
    return {
        "name": name,
        "cat": cat,
        "ph": "X",
        "ts": _ts(start),
        "dur": max(_ts(end) - _ts(start), 0.0),
        "pid": pid,
        "tid": tid,
        "args": args,
    }


def _instant(name: str, cat: str, t: float, pid: str, tid: str,
             args: dict) -> dict:
    return {
        "name": name,
        "cat": cat,
        "ph": "i",
        "s": "t",
        "ts": _ts(t),
        "pid": pid,
        "tid": tid,
        "args": args,
    }


def _counter(name: str, t: float, pid: str, tid: str, values: dict) -> dict:
    return {
        "name": name,
        "ph": "C",
        "ts": _ts(t),
        "pid": pid,
        "tid": tid,
        "args": values,
    }


def convert_event(event: TelemetryEvent, pid_prefix: str = "") -> list[dict]:
    """One telemetry event -> zero or more trace_event dicts.

    Shared by the batch exporter below and the streaming
    :class:`~repro.telemetry.sinks.ChromeStreamingSink`.
    """
    p = pid_prefix
    if isinstance(event, FlowFinished):
        # One slice per link hop: every link is its own thread, so
        # Perfetto shows per-link occupancy lanes.
        args = {"size": event.size, "src": event.src, "dst": event.dst,
                "flow_id": event.flow_id}
        return [
            _slice(event.tag or f"flow{event.flow_id}", "net.flow",
                   event.started_at, event.t,
                   p + _node_of(link), link, args)
            for link in event.links
        ]
    if isinstance(event, TransferFinished):
        return [_slice(
            event.tag or "transfer", "net.transfer",
            event.started_at, event.t,
            p + _node_of(event.src), event.src,
            {"size": event.size, "src": event.src, "dst": event.dst},
        )]
    if isinstance(event, StageSpan):
        return [_slice(
            f"{event.stage}:{event.kind}", "request",
            event.start, event.end,
            p + _node_of(event.device_id), event.device_id,
            {"request_id": event.request_id},
        )]
    if isinstance(event, StorePut):
        return [_instant(
            f"put {event.object_id}", "storage", event.t,
            p + _node_of(event.device_id), event.device_id,
            {"size": event.size, "placement": event.placement},
        )]
    if isinstance(event, StoreGet):
        return [_instant(
            f"get {event.object_id}", "storage", event.t,
            p + _node_of(event.device_id), event.device_id,
            {"size": event.size, "category": event.category,
             "latency": event.latency},
        )]
    if isinstance(event, StoreEvict):
        return [_instant(
            f"evict {event.object_id}", "storage", event.t,
            p + _node_of(event.src_device), event.src_device,
            {"size": event.size, "dst": event.dst_device},
        )]
    if isinstance(event, (PoolAlloc, PoolFree, PoolTrim)):
        return [_counter(
            f"pool {event.device_id}", event.t,
            p + _node_of(event.device_id), event.device_id,
            {"reserved": event.reserved, "in_use": event.in_use},
        )]
    if isinstance(event, ReplicaOutstanding):
        return [_counter(
            f"outstanding {event.replica}", event.t,
            p + _node_of(event.device_id), event.device_id,
            {"outstanding": event.outstanding},
        )]
    if isinstance(event, StageQueueDepth):
        return [_counter(
            f"stage-queue {event.stage}", event.t,
            p + PLATFORM_PID, f"queue:{event.stage}",
            {"depth": event.depth, "backlog": event.backlog},
        )]
    if isinstance(event, AdmissionTokens):
        return [_counter(
            f"admission {event.workflow}", event.t,
            p + PLATFORM_PID, "admission",
            {"tokens": event.tokens},
        )]
    if isinstance(event, PlacementDecision):
        return [_instant(
            f"place {event.workflow}", "scheduler", event.t,
            p + PLATFORM_PID, "placement",
            {"policy": event.policy,
             "assignment": dict(event.assignment)},
        )]
    if isinstance(event, RequestArrived):
        return [_instant(
            f"arrive {event.request_id}", "request", event.t,
            p + PLATFORM_PID, "requests", {"workflow": event.workflow},
        )]
    if isinstance(event, RequestFinished):
        return [_slice(
            event.request_id, "request",
            event.t - event.latency, event.t,
            p + PLATFORM_PID, "requests",
            {"workflow": event.workflow, "slo_met": event.slo_met},
        )]
    return []  # starts and routing decisions pair into the slices above


def to_trace_events(
    events: Iterable[Union[TelemetryEvent, tuple[int, TelemetryEvent]]],
    multi_run: bool = False,
) -> list[dict]:
    """Convert a stream of (optionally run-tagged) events to trace dicts."""
    trace: list[dict] = []
    pids: set[str] = set()
    for item in events:
        run, event = item if isinstance(item, tuple) else (0, item)
        prefix = f"run{run}:" if multi_run else ""
        for record in convert_event(event, prefix):
            pids.add(record["pid"])
            trace.append(record)
    return process_metadata(pids) + trace


def process_metadata(pids: Iterable[str]) -> list[dict]:
    """Metadata records so Perfetto labels each process with its name."""
    return [
        {"name": "process_name", "ph": "M", "ts": 0.0, "pid": pid,
         "tid": "meta", "args": {"name": pid}}
        for pid in sorted(pids)
    ]


def export_chrome_trace(
    events: Iterable[Union[TelemetryEvent, tuple[int, TelemetryEvent]]],
    path: Optional[str] = None,
    multi_run: bool = False,
) -> dict:
    """Build (and optionally write) a Chrome ``trace_event`` document."""
    document = {
        "traceEvents": to_trace_events(events, multi_run=multi_run),
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.telemetry"},
    }
    if path is not None:
        with open(path, "w") as handle:
            json.dump(document, handle)
    return document
