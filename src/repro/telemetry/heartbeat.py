"""Live run monitor: periodic heartbeat lines for long streaming runs.

A million-request trace replay runs for many wall-clock minutes with
nothing on the terminal; :class:`RunMonitor` emits one line per
wall-clock interval so the operator can see it is alive and bounded::

    [hb endtoend] sim=812.4s done=40960 (+2048 @ 512/s) rss=58.3MB backlog=37 spooled=3.2M

The monitor is deliberately pull-based and cheap: hot paths call
:meth:`tick` (one ``time.monotonic`` compare when the interval has not
elapsed) or fold results through :meth:`wrap`; RSS is read from
``/proc/self/statm`` and sampled only when a heartbeat fires, so the
monitor also doubles as the peak-RSS sampler for the end-to-end
benchmarks.
"""

from __future__ import annotations

import os
import resource
import sys
import time
from typing import Callable, Optional, Sequence

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def current_rss_bytes() -> int:
    """This process's resident set size right now, in bytes.

    Reads ``/proc/self/statm`` (Linux); falls back to the
    ``getrusage`` high-water mark elsewhere, which only ever grows.
    """
    try:
        with open("/proc/self/statm") as handle:
            return int(handle.read().split()[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


class RunMonitor:
    """Wall-clock-paced heartbeat + RSS sampler for streaming runs.

    ``interval <= 0`` disables the printed heartbeat but keeps the
    counters and RSS sampling (the benchmarks run silent by default).
    """

    def __init__(
        self,
        env=None,
        interval: float = 5.0,
        label: str = "run",
        sinks: Sequence = (),
        stream=None,
        now: Callable[[], float] = time.monotonic,
        slo_board=None,
    ) -> None:
        self.env = env
        self.interval = interval
        self.label = label
        self.sinks = list(sinks)
        # Optional repro.telemetry.slo.SloBoard: when set, each beat
        # appends live worst-attainment/burn so an operator sees SLO
        # pressure without waiting for the end-of-run health report.
        self.slo_board = slo_board
        self.stream = stream if stream is not None else sys.stderr
        self._now = now
        self.done = 0
        self.beats = 0
        self.peak_rss_bytes = self.sample_rss()
        started = self._now()
        self._last_beat = started
        self._last_done = 0

    # -- sampling ------------------------------------------------------------
    def sample_rss(self) -> int:
        rss = current_rss_bytes()
        if rss > getattr(self, "peak_rss_bytes", 0):
            self.peak_rss_bytes = rss
        return rss

    @property
    def event_backlog(self) -> int:
        return sum(getattr(sink, "backlog", 0) for sink in self.sinks)

    @property
    def events_spooled(self) -> int:
        return sum(getattr(sink, "events_handled", 0) for sink in self.sinks)

    # -- heartbeat -----------------------------------------------------------
    def tick(self, done: Optional[int] = None) -> None:
        """Cheap check; emits a heartbeat when the interval elapsed."""
        if done is not None:
            self.done = done
        if self.interval <= 0:
            return
        now = self._now()
        if now - self._last_beat < self.interval:
            return
        self.beat(now)

    def beat(self, now: Optional[float] = None) -> None:
        """Force one heartbeat line (also samples RSS)."""
        now = self._now() if now is None else now
        elapsed = max(now - self._last_beat, 1e-9)
        delta = self.done - self._last_done
        rss = self.sample_rss()
        sim = f"sim={self.env.now:.1f}s " if self.env is not None else ""
        slo = ""
        board = self.slo_board
        if board is not None and board.trackers:
            trackers = board.trackers.values()
            attainment = min(t.attainment for t in trackers)
            burn = max(t.burn_rate for t in trackers)
            slo = f" slo={attainment:.3f} burn={burn:.2f}"
        self.stream.write(
            f"[hb {self.label}] {sim}done={self.done} "
            f"(+{delta} @ {delta / elapsed:.0f}/s) "
            f"rss={rss / 1e6:.1f}MB "
            f"backlog={self.event_backlog} "
            f"spooled={self.events_spooled}"
            f"{slo}\n"
        )
        self.stream.flush()
        self.beats += 1
        self._last_beat = now
        self._last_done = self.done

    # -- composition ---------------------------------------------------------
    def wrap(self, result_sink: Optional[Callable] = None) -> Callable:
        """A result-sink callable: fold into *result_sink*, then tick.

        Lets the monitor ride the platform's result-retirement path::

            platform.result_sink = monitor.wrap(aggregator)
        """

        def observe(result) -> None:
            if result_sink is not None:
                result_sink(result)
            self.done += 1
            self.tick()

        return observe
