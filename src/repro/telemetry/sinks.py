"""Streaming telemetry sinks: spool the event bus to disk incrementally.

The in-memory :class:`~repro.telemetry.TraceRecorder` and session
event lists hold every published event in RAM, which caps a run at a
few thousand requests.  A :class:`StreamingSink` consumes the bus
incrementally instead: events are serialized into a bounded write
buffer and flushed to disk whenever the buffer crosses an event-count
or byte threshold, so telemetry stays complete on disk while the
process footprint stays flat.

Two writers are provided:

- :class:`JsonlEventSink` — one JSON object per line per event,
  lossless: :func:`iter_jsonl_events` reconstructs the original typed
  event stream, so a spooled run can be replayed through
  :class:`~repro.telemetry.StandardMetrics` (or any other bus
  consumer) after the fact.  ``compress=True`` writes gzip.
- :class:`ChromeStreamingSink` — Chrome/Perfetto ``trace_event``
  records in the *JSON Array Format* (a bare ``[...]`` array), which
  the trace viewers explicitly accept without the closing ``]`` — a
  crashed run's partial spool is still loadable.

Crash-safety contract: every flush pushes whole lines/records to the
OS, a partially written trailing line (the process died mid-``write``)
is tolerated and skipped by the reader, and :meth:`close` finalizes
the file (idempotent; both sinks are context managers).
"""

from __future__ import annotations

import dataclasses
import gzip
import io
import json
import os
from typing import IO, Iterable, Iterator, Optional, Protocol, Union

from repro.common.errors import ConfigError
from repro.telemetry import events as _events_module
from repro.telemetry.bus import EventBus
from repro.telemetry.chrome import convert_event, process_metadata
from repro.telemetry.events import TelemetryEvent
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.recorder import StandardMetrics

DEFAULT_FLUSH_EVENTS = 1024
DEFAULT_FLUSH_BYTES = 1 << 20  # 1 MiB

#: Registry of every concrete event type, by class name — the JSONL
#: schema's ``type`` field.  Built once from the events module, so a
#: new event type is spool-able the moment it is defined there.
EVENT_TYPES: dict[str, type] = {
    name: obj
    for name, obj in vars(_events_module).items()
    if isinstance(obj, type)
    and issubclass(obj, TelemetryEvent)
    and dataclasses.is_dataclass(obj)
}


class StreamingSink(Protocol):
    """Anything that can consume a session's event stream incrementally."""

    def handle(self, run: int, event: TelemetryEvent) -> None:
        """Consume one event from run *run* (called in publish order)."""

    def flush(self) -> None:
        """Push buffered output to the OS."""

    def close(self) -> None:
        """Flush and finalize the output (idempotent)."""


# -- serialization -----------------------------------------------------------

def encode_event(run: int, event: TelemetryEvent) -> dict:
    """One event -> a flat JSON-able record (``run`` + ``type`` + fields)."""
    record = {"run": run, "type": type(event).__name__}
    for f in dataclasses.fields(event):
        record[f.name] = getattr(event, f.name)
    return record


def _untuple(value):
    """JSON turned the event's tuples into lists; turn them back."""
    if isinstance(value, list):
        return tuple(_untuple(item) for item in value)
    return value


def decode_event(record: dict) -> tuple[int, TelemetryEvent]:
    """Inverse of :func:`encode_event`; raises on unknown event types."""
    data = dict(record)
    run = data.pop("run")
    type_name = data.pop("type")
    cls = EVENT_TYPES.get(type_name)
    if cls is None:
        raise ConfigError(f"unknown telemetry event type {type_name!r}")
    return run, cls(**{key: _untuple(val) for key, val in data.items()})


# -- sink implementations ----------------------------------------------------

class _BufferedFileSink:
    """Shared buffering/accounting for file-backed sinks."""

    def __init__(
        self,
        path: str,
        flush_events: int = DEFAULT_FLUSH_EVENTS,
        flush_bytes: int = DEFAULT_FLUSH_BYTES,
    ) -> None:
        if flush_events < 1 or flush_bytes < 1:
            raise ConfigError("flush thresholds must be >= 1")
        self.path = os.fspath(path)
        self.flush_events = flush_events
        self.flush_bytes = flush_bytes
        self._buffer: list[str] = []
        self._buffer_bytes = 0
        self._file: Optional[IO[str]] = self._open()
        self.events_handled = 0
        self.records_written = 0
        self.bytes_written = 0
        self.flushes = 0

    def _open(self) -> IO[str]:
        return open(self.path, "w")

    @property
    def backlog(self) -> int:
        """Records buffered in memory, not yet pushed to the OS."""
        return len(self._buffer)

    @property
    def closed(self) -> bool:
        return self._file is None

    def _append(self, text: str) -> None:
        if self._file is None:
            raise ConfigError(f"sink {self.path} is closed")
        self._buffer.append(text)
        self._buffer_bytes += len(text)
        if (len(self._buffer) >= self.flush_events
                or self._buffer_bytes >= self.flush_bytes):
            self.flush()

    def flush(self) -> None:
        if self._file is None or not self._buffer:
            return
        chunk = "".join(self._buffer)
        self._file.write(chunk)
        self._file.flush()
        self.records_written += len(self._buffer)
        self.bytes_written += len(chunk)
        self.flushes += 1
        self._buffer.clear()
        self._buffer_bytes = 0

    def close(self) -> None:
        if self._file is None:
            return
        self.flush()
        self._finalize(self._file)
        self._file.close()
        self._file = None

    def _finalize(self, file: IO[str]) -> None:
        """Hook for format-level trailers, written before close."""

    def __enter__(self):
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class JsonlEventSink(_BufferedFileSink):
    """Spools the raw event stream as one JSON line per event.

    Lossless: the file (optionally gzip-compressed when ``compress=True``
    or the path ends in ``.gz``) replays into the identical typed event
    stream via :func:`iter_jsonl_events`.
    """

    def __init__(
        self,
        path: str,
        flush_events: int = DEFAULT_FLUSH_EVENTS,
        flush_bytes: int = DEFAULT_FLUSH_BYTES,
        compress: Optional[bool] = None,
    ) -> None:
        self.compress = (
            compress
            if compress is not None
            else os.fspath(path).endswith(".gz")
        )
        super().__init__(path, flush_events, flush_bytes)

    def _open(self) -> IO[str]:
        if self.compress:
            return gzip.open(self.path, "wt")
        return open(self.path, "w")

    def handle(self, run: int, event: TelemetryEvent) -> None:
        self.events_handled += 1
        self._append(
            json.dumps(encode_event(run, event), separators=(",", ":"))
            + "\n"
        )


class ChromeStreamingSink(_BufferedFileSink):
    """Streams Chrome/Perfetto ``trace_event`` records as they happen.

    Writes the JSON *Array Format* (``[`` + comma-separated records):
    the trace viewers accept it without the closing ``]``, so a run
    that dies mid-flight still leaves a loadable trace.  ``close()``
    appends per-process name metadata and the terminator.

    ``multi_run`` mirrors :func:`~repro.telemetry.export_chrome_trace`:
    a streaming sink cannot know the final run count up front, so it
    defaults to prefixing pids with ``run<N>:`` — pass ``False`` for
    single-run captures that should match the batch exporter's output.
    """

    def __init__(
        self,
        path: str,
        multi_run: bool = True,
        flush_events: int = DEFAULT_FLUSH_EVENTS,
        flush_bytes: int = DEFAULT_FLUSH_BYTES,
    ) -> None:
        super().__init__(path, flush_events, flush_bytes)
        self.multi_run = multi_run
        self._pids: set[str] = set()
        self._first = True

    def _open(self) -> IO[str]:
        file = open(self.path, "w")
        file.write("[\n")
        return file

    def _record(self, record: dict) -> None:
        prefix = "" if self._first else ",\n"
        self._first = False
        self._append(prefix + json.dumps(record, separators=(",", ":")))

    def handle(self, run: int, event: TelemetryEvent) -> None:
        self.events_handled += 1
        prefix = f"run{run}:" if self.multi_run else ""
        for record in convert_event(event, prefix):
            self._pids.add(record["pid"])
            self._record(record)

    def _finalize(self, file: IO[str]) -> None:
        trailer = io.StringIO()
        for record in process_metadata(self._pids):
            trailer.write("" if self._first else ",\n")
            self._first = False
            trailer.write(json.dumps(record, separators=(",", ":")))
        trailer.write("\n]\n")
        file.write(trailer.getvalue())


# -- replay ------------------------------------------------------------------

def iter_jsonl_events(
    path: str,
) -> Iterator[tuple[int, TelemetryEvent]]:
    """Replay a :class:`JsonlEventSink` spool as ``(run, event)`` pairs.

    A partially written final line (the writer crashed mid-append) is
    skipped; a corrupt line anywhere else raises, since that means the
    file is damaged rather than merely truncated.
    """
    path = os.fspath(path)
    opener = gzip.open if path.endswith(".gz") else open
    with opener(path, "rt") as handle:
        pending: Optional[str] = None
        for line in handle:
            if pending is not None:
                yield decode_event(json.loads(pending))
            pending = line
        if pending is not None:
            try:
                record = json.loads(pending)
            except json.JSONDecodeError:
                return  # truncated trailing line: tolerated
            yield decode_event(record)


def replay_metrics(
    source: Union[str, Iterable[tuple[int, TelemetryEvent]]],
    mode: str = "exact",
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Fold a spooled (or in-memory) event stream into a fresh registry.

    This is the differential oracle path: replaying a JSONL spool in
    ``exact`` mode reproduces the live in-memory summary bit-for-bit;
    in ``bounded`` mode the reservoir seeds derive from metric names,
    so a bounded replay also matches a live bounded registry exactly.
    """
    if registry is None:
        registry = MetricsRegistry(mode=mode)
    bus = EventBus()
    consumer = StandardMetrics(registry).attach(bus)
    if isinstance(source, (str, os.PathLike)):
        source = iter_jsonl_events(source)
    try:
        for _run, event in source:
            bus.publish(event)
    finally:
        consumer.detach()
    return registry
