"""Standard bus consumers: raw event capture and metric aggregation.

:class:`TraceRecorder` appends every published event to a list (used by
the Chrome trace exporter); :class:`StandardMetrics` folds events into a
:class:`~repro.telemetry.metrics.MetricsRegistry` under the ``net``,
``storage``, ``memory`` and ``scheduler`` namespaces.
"""

from __future__ import annotations

from typing import Optional

from repro.common.units import MS
from repro.telemetry.bus import EventBus
from repro.telemetry.events import (
    FlowFinished,
    FlowStarted,
    PlacementDecision,
    PoolAlloc,
    PoolFree,
    PoolTrim,
    RequestArrived,
    RequestFinished,
    StageSpan,
    StoreEvict,
    StoreGet,
    StorePut,
    TelemetryEvent,
    TransferFinished,
)
from repro.telemetry.metrics import MetricsRegistry


class TraceRecorder:
    """Collects every event published on a bus, in publish order."""

    def __init__(self, events: Optional[list] = None) -> None:
        self.events: list[TelemetryEvent] = (
            events if events is not None else []
        )
        self._bus: Optional[EventBus] = None

    def attach(self, bus: EventBus) -> "TraceRecorder":
        self._bus = bus
        bus.subscribe(None, self.events.append)
        return self

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(None, self.events.append)
            self._bus = None

    def __len__(self) -> int:
        return len(self.events)


class StandardMetrics:
    """Folds bus events into namespaced counters/gauges/histograms.

    The core counters of all four subsystem namespaces are registered
    eagerly so a metrics summary always covers ``net``, ``storage``,
    ``memory`` and ``scheduler`` even when a run never exercised one of
    them.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._subscriptions: list[tuple[EventBus, dict]] = []
        reg = self.registry
        # Eager registration: the summary always lists every namespace.
        for name in (
            "net.flows",
            "net.transfers",
            "net.bytes_moved",
            "storage.puts",
            "storage.gets",
            "storage.bytes_put",
            "storage.evictions",
            "storage.evicted_bytes",
            "memory.allocs",
            "memory.frees",
            "memory.pool_growths",
            "memory.trims",
            "scheduler.placements",
            "scheduler.requests_arrived",
            "scheduler.requests_finished",
            "scheduler.slo_violations",
        ):
            reg.counter(name)
        reg.histogram("net.transfer_ms")
        reg.histogram("storage.get_ms")
        reg.histogram("scheduler.request_ms")

    def attach(self, bus: EventBus) -> "StandardMetrics":
        handlers = {
            FlowStarted: self._on_flow_started,
            FlowFinished: self._on_flow_finished,
            TransferFinished: self._on_transfer_finished,
            StorePut: self._on_store_put,
            StoreGet: self._on_store_get,
            StoreEvict: self._on_store_evict,
            PoolAlloc: self._on_pool_alloc,
            PoolFree: self._on_pool_free,
            PoolTrim: self._on_pool_trim,
            PlacementDecision: self._on_placement,
            RequestArrived: self._on_request_arrived,
            RequestFinished: self._on_request_finished,
            StageSpan: self._on_stage_span,
        }
        for event_type, handler in handlers.items():
            bus.subscribe(event_type, handler)
        self._subscriptions.append((bus, handlers))
        return self

    def detach(self) -> None:
        """Unsubscribe every handler from every bus it was attached to.

        Mirrors :meth:`TraceRecorder.detach`: a registry reused across
        ``capture()`` sessions would otherwise keep all handlers
        subscribed forever and double-count events on a re-attach.
        """
        for bus, handlers in self._subscriptions:
            for event_type, handler in handlers.items():
                bus.unsubscribe(event_type, handler)
        self._subscriptions.clear()

    # -- net -----------------------------------------------------------------
    def _on_flow_started(self, event: FlowStarted) -> None:
        self.registry.counter("net.flows").inc()

    def _on_flow_finished(self, event: FlowFinished) -> None:
        self.registry.counter("net.bytes_moved").inc(event.size)

    def _on_transfer_finished(self, event: TransferFinished) -> None:
        self.registry.counter("net.transfers").inc()
        self.registry.histogram("net.transfer_ms").observe(
            (event.t - event.started_at) / MS
        )

    # -- storage ----------------------------------------------------------------
    def _on_store_put(self, event: StorePut) -> None:
        self.registry.counter("storage.puts").inc()
        self.registry.counter("storage.bytes_put").inc(event.size)

    def _on_store_get(self, event: StoreGet) -> None:
        self.registry.counter("storage.gets").inc()
        self.registry.histogram("storage.get_ms").observe(event.latency / MS)

    def _on_store_evict(self, event: StoreEvict) -> None:
        self.registry.counter("storage.evictions").inc()
        self.registry.counter("storage.evicted_bytes").inc(event.size)

    # -- memory -------------------------------------------------------------------
    def _on_pool_alloc(self, event: PoolAlloc) -> None:
        self.registry.counter("memory.allocs").inc()
        if event.grew:
            self.registry.counter("memory.pool_growths").inc()
        self._sample_pool(event.device_id, event.t, event.reserved,
                          event.in_use)

    def _on_pool_free(self, event: PoolFree) -> None:
        self.registry.counter("memory.frees").inc()
        self._sample_pool(event.device_id, event.t, event.reserved,
                          event.in_use)

    def _on_pool_trim(self, event: PoolTrim) -> None:
        self.registry.counter("memory.trims").inc()
        self._sample_pool(event.device_id, event.t, event.reserved,
                          event.in_use)

    def _sample_pool(self, device_id: str, t: float, reserved: float,
                     in_use: float) -> None:
        self.registry.gauge(f"memory.pool_reserved.{device_id}").set(
            t, reserved
        )
        self.registry.gauge(f"memory.pool_in_use.{device_id}").set(t, in_use)

    # -- scheduler --------------------------------------------------------------------
    def _on_placement(self, event: PlacementDecision) -> None:
        self.registry.counter("scheduler.placements").inc()

    def _on_request_arrived(self, event: RequestArrived) -> None:
        self.registry.counter("scheduler.requests_arrived").inc()

    def _on_request_finished(self, event: RequestFinished) -> None:
        self.registry.counter("scheduler.requests_finished").inc()
        self.registry.histogram("scheduler.request_ms").observe(
            event.latency / MS
        )
        if event.slo_met is False:
            self.registry.counter("scheduler.slo_violations").inc()

    def _on_stage_span(self, event: StageSpan) -> None:
        self.registry.histogram(f"scheduler.stage_{event.kind}_ms").observe(
            (event.end - event.start) / MS
        )
