"""Rendering and export of experiment tables.

Turns :class:`~repro.experiments.harness.ExperimentTable` rows into
ASCII bar charts, CSV, or JSON — the CLI's output backends.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Optional

from repro.common.errors import ConfigError
from repro.experiments.harness import ExperimentTable

BAR_WIDTH = 40


def to_csv(table: ExperimentTable) -> str:
    """Render a table as CSV (header row + one line per row)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=table.columns)
    writer.writeheader()
    for row in table.rows:
        writer.writerow({c: row.get(c, "") for c in table.columns})
    return buffer.getvalue()


def to_json(table: ExperimentTable) -> str:
    """Render a table as a JSON document with name/notes/rows."""
    return json.dumps(
        {
            "name": table.name,
            "notes": table.notes,
            "columns": table.columns,
            "rows": table.rows,
        },
        indent=2,
        default=str,
    )


def bar_chart(
    table: ExperimentTable,
    value_column: str,
    label_column: Optional[str] = None,
    width: int = BAR_WIDTH,
) -> str:
    """ASCII horizontal bar chart of one numeric column."""
    if value_column not in table.columns:
        raise ConfigError(
            f"column {value_column!r} not in table {table.name!r}"
        )
    label_column = label_column or table.columns[0]
    entries = []
    for row in table.rows:
        value = row.get(value_column)
        if isinstance(value, (int, float)) and value == value:  # not NaN
            entries.append((str(row.get(label_column)), float(value)))
    if not entries:
        return f"{table.name}: no numeric data in {value_column!r}"
    peak = max(value for _label, value in entries) or 1.0
    label_width = max(len(label) for label, _value in entries)
    lines = [f"{table.name} — {value_column}"]
    for label, value in entries:
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append(f"{label.ljust(label_width)}  {bar} {value:.3g}")
    return "\n".join(lines)


def metrics_summary_table(registry) -> ExperimentTable:
    """One row per metric from a telemetry MetricsRegistry summary.

    Counters report ``value``; gauges report last/peak/mean; histograms
    report count/mean/p50/p99/max.  Unused cells stay blank so the four
    metric shapes share one table.
    """
    table = ExperimentTable(
        name="telemetry metrics",
        columns=[
            "namespace", "metric", "type", "value",
            "count", "mean", "p50", "p99", "max",
        ],
    )
    for namespace, metrics in sorted(registry.summary().items()):
        for short, stats in sorted(metrics.items()):
            kind = stats["type"]
            row = {"namespace": namespace, "metric": short, "type": kind}
            if kind == "counter":
                row["value"] = stats["value"]
            elif kind == "gauge":
                row["value"] = stats["last"]
                row["count"] = stats["samples"]
                row["mean"] = stats["mean"]
                row["max"] = stats["peak"]
            else:
                row["count"] = stats["count"]
                row["mean"] = stats["mean"]
                row["p50"] = stats["p50"]
                row["p99"] = stats["p99"]
                row["max"] = stats["max"]
            table.add(**row)
    return table


FORMATS = ("table", "csv", "json")


def render(table: ExperimentTable, fmt: str = "table") -> str:
    """Render *table* in one of :data:`FORMATS`."""
    if fmt == "table":
        return table.format()
    if fmt == "csv":
        return to_csv(table)
    if fmt == "json":
        return to_json(table)
    raise ConfigError(f"unknown format {fmt!r}; choose from {FORMATS}")
