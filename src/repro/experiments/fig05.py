"""Fig. 5(b) — PCIe interference between co-located workflows.

Parallel PCIe transfers (DeepPlan-style, no partitioning) help each
workflow when run alone, but co-locating the latency-critical *driving*
workflow with the transfer-intensive *video* workflow inflates
driving's gFn-host latency (3.65x in the paper) because video grabs
most PCIe bandwidth.
"""

from __future__ import annotations

from repro.experiments.harness import (
    ExperimentTable,
    build_testbed,
    mean_breakdown,
)
from repro.traces import make_trace
from repro.workflow import get_workload


def _driving_gfn_host(results, workload) -> float:
    """Per-request gFn-host time of the driving workflow only."""
    return mean_breakdown(results, workload.workflow).gfn_host


def _run_alone(workflow_name: str, rate: float, duration: float,
               plane_name: str) -> float:
    testbed = build_testbed(plane_name=plane_name)
    workload = get_workload(workflow_name)
    deployment = testbed.platform.deploy(workload)
    trace = make_trace("bursty", rate=rate, duration=duration, seed=1)
    results = testbed.platform.run_trace(deployment, trace)
    return _driving_gfn_host(results, workload)


# The video workflow is the transfer-intensive aggressor: several of
# its functions load chunks simultaneously, so it is driven at a higher
# request rate than the latency-critical driving workflow.
VIDEO_RATE_FACTOR = 4.0


def _run_together(rate: float, duration: float, plane_name: str) -> dict:
    testbed = build_testbed(plane_name=plane_name)
    driving = get_workload("driving")
    video = get_workload("video")
    dep_driving = testbed.platform.deploy(driving)
    dep_video = testbed.platform.deploy(video)
    trace_a = make_trace("bursty", rate=rate, duration=duration, seed=1)
    trace_b = make_trace(
        "bursty", rate=rate * VIDEO_RATE_FACTOR, duration=duration, seed=2
    )
    results = testbed.platform.run_traces(
        [(dep_driving, trace_a), (dep_video, trace_b)]
    )
    driving_results = results[dep_driving.workflow_id]
    return {"combined": _driving_gfn_host(driving_results, driving)}


def run(rate: float = 4.0, duration: float = 12.0,
        plane_name: str = "deepplan+") -> ExperimentTable:
    """Fig. 5(b): gFn-host latency, alone vs co-located."""
    table = ExperimentTable(
        name="Fig 5(b): PCIe interference (parallel transfers, no partitioning)",
        columns=["scenario", "gfn_host_ms", "slowdown_vs_driving_alone"],
    )
    driving_alone = _run_alone("driving", rate, duration, plane_name)
    video_alone = _run_alone("video", rate, duration, plane_name)
    together = _run_together(rate, duration, plane_name)["combined"]
    table.add(
        scenario="driving alone",
        gfn_host_ms=driving_alone * 1e3,
        slowdown_vs_driving_alone=1.0,
    )
    table.add(
        scenario="video alone",
        gfn_host_ms=video_alone * 1e3,
        slowdown_vs_driving_alone=None,
    )
    table.add(
        scenario="driving + video co-located",
        gfn_host_ms=together * 1e3,
        slowdown_vs_driving_alone=together / driving_alone,
    )
    return table
