"""Fig. 12 — the evaluation workflow suite.

The paper's Fig. 12 catalogs the six real-world inference workflows and
their DAG patterns (sequence, condition, fan-in, fan-out).  This module
reproduces it as a structural table plus Graphviz DOT renderings of
every workflow.
"""

from __future__ import annotations

from repro.common.units import MB
from repro.experiments.harness import ExperimentTable
from repro.llm.moa import MoaConfig
from repro.workflow import WORKLOADS, get_workload


def _patterns(workflow) -> list[str]:
    found = set()
    names = list(workflow.stages)
    out_degrees = [len(workflow.successors(n)) for n in names]
    in_degrees = [len(workflow.predecessors(n)) for n in names]
    if max(out_degrees) <= 1 and max(in_degrees) <= 1:
        found.add("sequence")
    if max(out_degrees) > 1:
        found.add("fan-out")
    if max(in_degrees) > 1:
        found.add("fan-in")
    if any(e.probability < 1.0 for e in workflow.edges):
        found.add("condition")
    return sorted(found)


def run() -> ExperimentTable:
    """Structural summary of the suite (plus MoA from the LLM layer)."""
    table = ExperimentTable(
        name="Fig 12: real-world inference workflow suite",
        columns=["workflow", "stages", "gpu", "cpu", "edges", "patterns",
                 "input_mb_per_item"],
    )
    for name in WORKLOADS:
        spec = get_workload(name)
        workflow = spec.workflow
        table.add(
            workflow=name,
            stages=len(workflow),
            gpu=len(workflow.gpu_stages()),
            cpu=len(workflow.cpu_stages()),
            edges=len(workflow.edges),
            patterns="+".join(_patterns(workflow)),
            input_mb_per_item=spec.input_per_item / MB,
        )
    moa = MoaConfig()
    table.add(
        workflow="moa (repro.llm)",
        stages=moa.layers * moa.agents_per_layer,
        gpu=moa.layers * moa.agents_per_layer,
        cpu=0,
        edges=(moa.layers - 1) * moa.agents_per_layer ** 2,
        patterns="fan-in+fan-out",
        input_mb_per_item=None,
    )
    return table


def render_all_dot() -> dict[str, str]:
    """DOT source for every CV workflow, keyed by name."""
    return {
        name: get_workload(name).workflow.to_dot() for name in WORKLOADS
    }
