"""Shared experiment harness: builders, attribution, table formatting.

Every ``figXX``/``tableX`` module produces a list of row dicts plus a
formatted table so benchmarks can both assert on the numbers and print
the series the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.dataplane import make_plane
from repro.dataplane.base import DataPlane
from repro.functions import FnContext, FunctionInstance, get_spec
from repro.platform import RequestResult, ServerlessPlatform
from repro.sim import Environment, Resource
from repro.topology import ClusterTopology, make_cluster
from repro.traces import make_trace
from repro.workflow import WorkloadSpec, get_workload
from repro.workflow.dag import Workflow


@dataclass
class Testbed:
    """A fresh simulation stack for one experiment run."""

    env: Environment
    cluster: ClusterTopology
    plane: DataPlane
    platform: Optional[ServerlessPlatform] = None


def build_testbed(
    preset: str = "dgx-v100",
    num_nodes: int = 1,
    plane_name: str = "grouter",
    with_platform: bool = True,
    plane_kwargs: Optional[dict] = None,
    platform_kwargs: Optional[dict] = None,
) -> Testbed:
    """Construct env + cluster + plane (+ platform) in one call."""
    env = Environment()
    cluster = make_cluster(preset, num_nodes=num_nodes)
    plane = make_plane(plane_name, env, cluster, **(plane_kwargs or {}))
    platform = None
    if with_platform:
        platform = ServerlessPlatform(
            env, cluster, plane, **(platform_kwargs or {})
        )
    return Testbed(env=env, cluster=cluster, plane=plane, platform=platform)


def gpu_ctx(
    testbed: Testbed,
    node_index: int,
    gpu_index: int,
    model: str = "yolo-det",
    workflow_id: str = "wf-probe",
    slo_deadline: Optional[float] = None,
) -> FnContext:
    """A standalone GPU-function context for raw Put/Get probes."""
    node = testbed.cluster.nodes[node_index]
    instance = FunctionInstance(
        testbed.env,
        get_spec(model),
        node,
        gpu=node.gpu(gpu_index),
        gpu_resource=Resource(testbed.env),
    )
    return FnContext(instance, workflow_id, "req-probe",
                     slo_deadline=slo_deadline)


def cpu_ctx(
    testbed: Testbed,
    node_index: int,
    model: str = "video-decode",
    workflow_id: str = "wf-probe",
) -> FnContext:
    node = testbed.cluster.nodes[node_index]
    instance = FunctionInstance(testbed.env, get_spec(model), node)
    return FnContext(instance, workflow_id, "req-probe")


def register_probe_workflow(plane: DataPlane,
                            workflow_id: str = "wf-probe") -> None:
    plane.acl.register_workflow(
        workflow_id,
        ["yolo-det", "person-rec", "car-rec", "video-decode",
         "gpu-denoise", "unet-seg", "gpu-preprocess"],
    )


def measure_put_get(
    testbed: Testbed,
    src: FnContext,
    dst: FnContext,
    size: float,
) -> dict:
    """One Put+Get; returns put/get/end-to-end latencies."""
    out: dict = {}

    def flow():
        t0 = testbed.env.now
        ref = yield testbed.plane.put(src, size)
        out["put"] = testbed.env.now - t0
        t1 = testbed.env.now
        yield testbed.plane.get(dst, ref)
        out["get"] = testbed.env.now - t1
        out["total"] = testbed.env.now - t0

    proc = testbed.env.process(flow())
    testbed.env.run()
    if not proc.ok:
        raise RuntimeError(f"probe transfer failed: {proc.value}")
    return out


# -- request-level attribution -------------------------------------------------

@dataclass
class PassingBreakdown:
    """Where a request's wall time went (paper Fig. 3 buckets)."""

    gfn_gfn: float = 0.0
    gfn_host: float = 0.0
    cfn_cfn: float = 0.0
    compute: float = 0.0

    @property
    def total(self) -> float:
        return self.gfn_gfn + self.gfn_host + self.cfn_cfn + self.compute

    @property
    def data_fraction(self) -> float:
        if self.total == 0:
            return 0.0
        return (self.gfn_gfn + self.gfn_host + self.cfn_cfn) / self.total


def breakdown_request(result: RequestResult, workflow: Workflow) -> PassingBreakdown:
    """Attribute a request's stage timings to Fig. 3's buckets."""
    out = PassingBreakdown()
    for name, record in result.stage_records.items():
        stage = workflow.stages[name]
        preds = workflow.predecessors(name)
        pred_gpu = any(
            workflow.stages[p].spec.is_gpu for p in preds
        )
        if stage.spec.is_gpu:
            # Entry stages read the host-resident ingress payload.
            if preds and pred_gpu:
                out.gfn_gfn += record.get_time
            else:
                out.gfn_host += record.get_time
        else:
            if preds and pred_gpu:
                out.gfn_host += record.get_time
            else:
                out.cfn_cfn += record.get_time
        succs = workflow.successors(name)
        succ_gpu = any(workflow.stages[s].spec.is_gpu for s in succs)
        # Exit stages account their egress drain to host separately
        # (record.egress_time); it lands in the same bucket the seed
        # engine put it in when it was folded into put_time.
        if stage.spec.is_gpu:
            if succs and succ_gpu:
                out.gfn_gfn += record.put_time
                out.gfn_host += record.egress_time
            else:
                out.gfn_host += record.put_time + record.egress_time
        else:
            if succs and succ_gpu:
                out.gfn_host += record.put_time
                out.cfn_cfn += record.egress_time
            else:
                out.cfn_cfn += record.put_time + record.egress_time
        out.compute += record.compute_time + record.cold_start
    return out


def mean_breakdown(results: Sequence[RequestResult],
                   workflow: Workflow) -> PassingBreakdown:
    agg = PassingBreakdown()
    for result in results:
        b = breakdown_request(result, workflow)
        agg.gfn_gfn += b.gfn_gfn
        agg.gfn_host += b.gfn_host
        agg.cfn_cfn += b.cfn_cfn
        agg.compute += b.compute
    n = max(len(results), 1)
    agg.gfn_gfn /= n
    agg.gfn_host /= n
    agg.cfn_cfn /= n
    agg.compute /= n
    return agg


# -- trace-driven runs ------------------------------------------------------------

def run_workload_on_plane(
    plane_name: str,
    workload_name: str,
    preset: str = "dgx-v100",
    num_nodes: int = 1,
    pattern: str = "bursty",
    rate: float = 4.0,
    duration: float = 20.0,
    batch: Optional[int] = None,
    seed: int = 0,
    plane_kwargs: Optional[dict] = None,
    placement: str = "mapa",
    replicas: int = 1,
    admission=None,
    dispatch: str = "round-robin",
    autoscaler=None,
    platform_kwargs: Optional[dict] = None,
) -> tuple[Testbed, list[RequestResult], WorkloadSpec]:
    """Deploy one workload, replay one trace, return the results.

    ``admission``/``dispatch``/``autoscaler`` feed the platform's
    lifecycle pipeline (defaults preserve seed behaviour exactly);
    ``platform_kwargs`` passes anything else straight through to
    :class:`~repro.platform.ServerlessPlatform`.
    """
    merged_kwargs = {
        "placement": placement,
        "admission": admission,
        "dispatch": dispatch,
        "autoscaler": autoscaler,
    }
    merged_kwargs.update(platform_kwargs or {})
    testbed = build_testbed(
        preset=preset,
        num_nodes=num_nodes,
        plane_name=plane_name,
        plane_kwargs=plane_kwargs,
        platform_kwargs=merged_kwargs,
    )
    workload = get_workload(workload_name)
    deployment = testbed.platform.deploy(
        workload, batch=batch, seed=seed, replicas=replicas
    )
    trace = make_trace(pattern, rate=rate, duration=duration, seed=seed)
    results = testbed.platform.run_trace(deployment, trace)
    return testbed, results, workload


class StreamingResultAggregator:
    """Fold retired :class:`RequestResult`\\ s into O(1)-ish state.

    The streaming counterpart of keeping ``platform.results`` and
    post-processing it: install as ``platform.result_sink`` (with
    ``keep_results=False``) and each result is reduced to counters
    plus latency/data-time recorders the moment it completes, then
    dropped.  ``mode="exact"`` keeps every sample
    (:class:`~repro.metrics.LatencyRecorder`); ``mode="bounded"``
    switches to reservoir recorders so memory stays flat regardless of
    request count.
    """

    def __init__(self, mode: str = "exact",
                 reservoir_capacity: Optional[int] = None) -> None:
        from repro.metrics import (
            DEFAULT_RESERVOIR_CAPACITY,
            LatencyRecorder,
            ReservoirRecorder,
        )

        if mode not in ("exact", "bounded"):
            raise ValueError(f"unknown aggregator mode {mode!r}")
        self.mode = mode
        if mode == "exact":
            self.latency_ms = LatencyRecorder()
            self.data_ms = LatencyRecorder()
        else:
            capacity = reservoir_capacity or DEFAULT_RESERVOIR_CAPACITY
            self.latency_ms = ReservoirRecorder(
                "endtoend.latency_ms", capacity=capacity
            )
            self.data_ms = ReservoirRecorder(
                "endtoend.data_ms", capacity=capacity
            )
        self.count = 0
        self.slo_violations = 0
        self.bytes_moved = 0.0

    def __call__(self, result: RequestResult) -> None:
        self.count += 1
        self.latency_ms.add(result.latency * 1000.0)
        self.data_ms.add(result.data_time * 1000.0)
        if result.slo is not None and result.latency > result.slo:
            self.slo_violations += 1
        for record in result.stage_records.values():
            self.bytes_moved += record.input_bytes + record.output_bytes

    def summary(self) -> dict:
        empty = self.count == 0
        return {
            "mode": self.mode,
            "count": self.count,
            "slo_violations": self.slo_violations,
            "bytes_moved": self.bytes_moved,
            "latency_ms": {
                "mean": float("nan") if empty else self.latency_ms.mean,
                "p50": float("nan") if empty else self.latency_ms.p50,
                "p99": float("nan") if empty else self.latency_ms.p99,
                "max": float("nan") if empty else self.latency_ms.maximum,
            },
            "data_ms": {
                "mean": float("nan") if empty else self.data_ms.mean,
                "p50": float("nan") if empty else self.data_ms.p50,
                "p99": float("nan") if empty else self.data_ms.p99,
            },
        }


def p99(values: Sequence[float]) -> float:
    return float(np.percentile(list(values), 99)) if values else float("nan")


def mean(values: Sequence[float]) -> float:
    return float(np.mean(list(values))) if values else float("nan")


# -- result table -------------------------------------------------------------

@dataclass
class ExperimentTable:
    """Rows + pretty formatting for one reproduced table/figure."""

    name: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: str = ""

    def add(self, **row) -> None:
        self.rows.append(row)

    def format(self) -> str:
        widths = {
            c: max(len(c), *(len(_fmt(r.get(c))) for r in self.rows))
            if self.rows
            else len(c)
            for c in self.columns
        }
        lines = [f"== {self.name} =="]
        if self.notes:
            lines.append(self.notes)
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(
                    _fmt(row.get(c)).ljust(widths[c]) for c in self.columns
                )
            )
        return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)
