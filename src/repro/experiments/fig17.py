"""Fig. 17 — fine-grained bandwidth partitioning under co-location.

High contention: the latency-critical *driving* workflow co-located
with the transfer-intensive *video* workflow.  GROUTER's SLO-gated rate
control (Rate_least reservations + tightest-SLO-first residual) caps
video's PCIe appetite; GROUTER−BH shares PCIe max-min like DeepPlan+.
The paper reports a 32% driving-latency reduction and better SLO
compliance, with identical behaviour in the low-contention
driving+image pairing.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentTable, build_testbed, p99
from repro.metrics import SloTracker
from repro.traces import make_trace
from repro.workflow import get_workload


# The transfer-intensive partner runs hotter than the latency-critical
# driving workflow, as in Fig. 5(b).
PARTNER_RATE_FACTOR = 6.0


def _co_located(partitioning: bool, partner: str, rate: float,
                duration: float) -> dict:
    # GROUTER-BH: parallel paths stay on, but rates share max-min (the
    # DeepPlan+-style sharing the paper compares against).
    plane_kwargs = {}
    if not partitioning:
        plane_kwargs["network_policy"] = "maxmin"
    testbed = build_testbed(plane_name="grouter", plane_kwargs=plane_kwargs)

    # SLO = 1.5x independent execution time (GPUlet convention).  The
    # two workflows occupy disjoint GPU halves so they only contend for
    # transfer bandwidth (PCIe uplinks, NVLink) — the phenomenon under
    # study — not for GPU execution slots.
    node = testbed.cluster.nodes[0]
    driving_gpus = [node.gpu(i) for i in range(4)]
    partner_gpus = [node.gpu(i) for i in range(4, 8)]
    driving = get_workload("driving")
    partner_wl = get_workload(partner)
    dep_driving = testbed.platform.deploy(
        driving, allowed_gpus=driving_gpus
    )
    probe = testbed.platform.submit(dep_driving)
    testbed.env.run()
    driving_slo = 1.5 * probe.value.latency
    dep_driving.slo = driving_slo
    # The partner is throughput-oriented: a loose SLO multiplier, so
    # GROUTER's rate control treats its transfers as best-effort-ish.
    dep_partner = testbed.platform.deploy(
        partner_wl, slo_multiplier=4.0, allowed_gpus=partner_gpus
    )

    trace_a = make_trace("bursty", rate=rate, duration=duration, seed=1)
    trace_b = make_trace(
        "bursty", rate=rate * PARTNER_RATE_FACTOR, duration=duration, seed=2
    )
    results = testbed.platform.run_traces(
        [(dep_driving, trace_a), (dep_partner, trace_b)]
    )
    driving_results = results[dep_driving.workflow_id]
    tracker = SloTracker()
    for r in driving_results:
        tracker.observe(r.latency, driving_slo)
    data_times = [r.data_time for r in driving_results]
    return {
        "driving_p99": p99([r.latency for r in driving_results]),
        "driving_data_mean": sum(data_times) / max(len(data_times), 1),
        "slo_attainment": tracker.attainment,
    }


def run(rate: float = 5.0, duration: float = 15.0) -> ExperimentTable:
    """Fig. 17: high- and low-contention pairings, BH on vs off."""
    table = ExperimentTable(
        name="Fig 17: bandwidth partitioning under co-location",
        columns=["pairing", "config", "driving_data_ms", "driving_p99_ms",
                 "slo_attainment"],
        notes="driving_data_ms = per-request data-passing time of the "
        "latency-critical workflow (the quantity partitioning protects)",
    )
    for partner, label in (("video", "high contention (driving+video)"),
                           ("image", "low contention (driving+image)")):
        for partitioning, config in ((True, "grouter"),
                                     (False, "grouter-BH")):
            out = _co_located(partitioning, partner, rate, duration)
            table.add(
                pairing=label,
                config=config,
                driving_data_ms=out["driving_data_mean"] * 1e3,
                driving_p99_ms=out["driving_p99"] * 1e3,
                slo_attainment=out["slo_attainment"],
            )
    return table
