"""Table 1 — capability matrix of GPU-side storage approaches.

The paper's Table 1 is qualitative; here each cell is *derived* from
the implementations by probing real behaviour:

- **data locality**: does a Put by a GPU function keep the bytes on the
  producer's own GPU?
- **bandwidth harvesting**: does a host-bound transfer use more than
  one PCIe uplink?
- **efficient temporary storage**: does the storage reservation shrink
  back toward the floor after demand passes?
"""

from __future__ import annotations

from repro.common.units import GB, MB
from repro.experiments.harness import (
    ExperimentTable,
    build_testbed,
    gpu_ctx,
    register_probe_workflow,
)

PLANES = ("nvshmem+", "deepplan+", "grouter")


def _probe_locality(plane_name: str) -> bool:
    # Majority vote over several puts: random placement fails this.
    testbed = build_testbed(
        plane_name=plane_name, with_platform=False,
        plane_kwargs={"seed": 3} if plane_name != "grouter" else None,
    )
    register_probe_workflow(testbed.plane)
    hits = 0
    trials = 8

    def flow():
        nonlocal hits
        for i in range(trials):
            ctx = gpu_ctx(testbed, 0, 2)
            ref = yield testbed.plane.put(ctx, 8 * MB)
            _, obj = testbed.plane.catalog.lookup(ref.object_id, "n0")
            if testbed.plane._gpu_location_of(obj) == "n0.g2":
                hits += 1
            testbed.plane.release_claim(ref)

    testbed.env.process(flow())
    testbed.env.run()
    return hits == trials


def _probe_harvesting(plane_name: str) -> bool:
    testbed = build_testbed(plane_name=plane_name, with_platform=False)
    node = testbed.cluster.nodes[0]
    plane = testbed.plane
    if hasattr(plane, "_host_paths"):
        paths = plane._host_paths(node, node.gpu(0), "to_host")
        return len(paths) > 1
    if hasattr(plane, "_parallel_host_paths"):
        paths = plane._parallel_host_paths(node, node.gpu(0), "to_host")
        return len(paths) > 1
    return False


def _probe_elastic_storage(plane_name: str) -> bool:
    kwargs = {}
    if plane_name == "grouter":
        kwargs = {"min_pool": 32 * MB}
    testbed = build_testbed(
        plane_name=plane_name, with_platform=False, plane_kwargs=kwargs
    )
    register_probe_workflow(testbed.plane)
    plane = testbed.plane

    def flow():
        src = gpu_ctx(testbed, 0, 0)
        dst = gpu_ctx(testbed, 0, 3, model="person-rec")
        ref = yield plane.put(src, 1 * GB)
        yield plane.get(dst, ref)

    testbed.env.process(flow())
    testbed.env.run()
    testbed.env.run(until=testbed.env.now + 60.0)
    reserved = max(
        pool.reserved for pool in plane.pools.values()
    )
    return reserved < 0.5 * GB  # shrank back after the burst


def run() -> ExperimentTable:
    """Reproduce Table 1 by probing each plane's behaviour."""
    table = ExperimentTable(
        name="Table 1: limitations of GPU-side storage approaches",
        columns=["system", "data_locality", "bandwidth_harvesting",
                 "elastic_storage"],
        notes="cells derived by probing the implementations",
    )
    for plane_name in PLANES:
        table.add(
            system=plane_name,
            data_locality="yes" if _probe_locality(plane_name) else "no",
            bandwidth_harvesting=(
                "yes" if _probe_harvesting(plane_name) else "no"
            ),
            elastic_storage=(
                "yes" if _probe_elastic_storage(plane_name) else "no"
            ),
        )
    return table
