"""Fig. 4 — redundant data copies in a chain workflow.

The paper's motivating example: three functions on GPU1/GPU3 (node 1)
and GPU5 (node 2) exchange data through an NVSHMEM-style GPU store.
Blind storage placement relays the first hop through a third GPU and
bounces the cross-node hop through storage GPUs on both sides — three
more copies than the optimum.  GROUTER's locality-aware plane moves
each payload exactly once.

This experiment replays that exact chain on both planes and counts the
device-to-device copies the data plane performed.
"""

from __future__ import annotations

from repro.common.units import MB
from repro.experiments.harness import (
    ExperimentTable,
    build_testbed,
    gpu_ctx,
    register_probe_workflow,
)

CHAIN_BYTES = 64 * MB


def _run_chain(plane_name: str, seed: int) -> dict:
    testbed = build_testbed(
        plane_name=plane_name,
        num_nodes=2,
        with_platform=False,
        plane_kwargs={"seed": seed} if plane_name != "infless+" else None,
    )
    register_probe_workflow(testbed.plane)
    env, plane = testbed.env, testbed.plane
    node1 = testbed.cluster.nodes[0]
    node2 = testbed.cluster.nodes[1]
    fn_a = gpu_ctx(testbed, 0, 1)  # GPU1, node 1
    fn_b = gpu_ctx(testbed, 0, 3, model="gpu-preprocess")  # GPU3, node 1
    fn_c = gpu_ctx(testbed, 1, 5, model="person-rec")  # GPU5, node 2
    del node1, node2

    def chain():
        ref_ab = yield plane.put(fn_a, CHAIN_BYTES)
        yield plane.get(fn_b, ref_ab)
        ref_bc = yield plane.put(fn_b, CHAIN_BYTES)
        yield plane.get(fn_c, ref_bc)

    proc = env.process(chain())
    env.run()
    assert proc.ok, proc.value
    return {
        "copies": plane.metrics.copies,
        "bytes_moved_mb": plane.metrics.bytes_moved() / MB,
        "latency_ms": env.now * 1e3,
    }


def run(trials: int = 5) -> ExperimentTable:
    """Fig. 4: copy counts for the two-hop chain, per plane.

    NVSHMEM+'s random placement is averaged over *trials* seeds; the
    optimum for the chain is 2 copies (one per hop).
    """
    table = ExperimentTable(
        name="Fig 4: data copies for a GPU1->GPU3->GPU5(node2) chain",
        columns=["plane", "copies", "bytes_moved_mb", "latency_ms"],
        notes=f"payload {CHAIN_BYTES / MB:.0f} MB per hop; optimum = 2 copies",
    )
    for plane_name in ("nvshmem+", "grouter"):
        samples = [
            _run_chain(plane_name, seed=31 + t) for t in range(trials)
        ]
        table.add(
            plane=plane_name,
            copies=sum(s["copies"] for s in samples) / trials,
            bytes_moved_mb=sum(s["bytes_moved_mb"] for s in samples) / trials,
            latency_ms=sum(s["latency_ms"] for s in samples) / trials,
        )
    return table
