"""Fig. 16 — ablation: disable GROUTER optimizations one by one.

Cumulatively removing elastic storage (ES), topology-aware scheduling
(TA), bandwidth harvesting (BH) and the unified framework (UF) under a
bursty workload.  The paper sees 1.57-1.82x higher data-passing latency
with everything off on DGX-V100 and 1.30-1.61x on DGX-A100.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentTable, mean
from repro.experiments.harness import build_testbed
from repro.traces import make_trace
from repro.workflow import get_workload

# Cumulative ablation order follows the paper's rightward bars.
# Disabling ES reverts the whole storage story: static pools, LRU
# eviction, no proactive restore.
_NO_ES = {
    "elastic_storage": False,
    "eviction_policy": "lru",
    "proactive_restore": False,
}
ABLATIONS = (
    ("grouter (full)", {}),
    ("-ES", {**_NO_ES}),
    ("-ES-TA", {**_NO_ES, "topology_aware": False}),
    ("-ES-TA-BH", {**_NO_ES, "topology_aware": False, "harvesting": False}),
    (
        "-ES-TA-BH-UF",
        {
            **_NO_ES,
            "topology_aware": False,
            "harvesting": False,
            "unified": False,
        },
    ),
)


def _avg_data_latency(preset: str, flags: dict, workflow: str,
                      rate: float, duration: float,
                      storage_fraction: float) -> float:
    testbed = build_testbed(
        preset=preset,
        plane_name="grouter",
        plane_kwargs={
            "storage_limit_fraction": storage_fraction, **flags
        },
    )
    deployment = testbed.platform.deploy(get_workload(workflow))
    trace = make_trace("bursty", rate=rate, duration=duration, seed=4)
    results = testbed.platform.run_trace(deployment, trace)
    return mean([r.data_time for r in results])


def run(
    preset: str = "dgx-v100",
    workflow: str = "driving",
    rate: float = 8.0,
    duration: float = 15.0,
    storage_fraction: float = 0.05,
) -> ExperimentTable:
    """One testbed's ablation ladder."""
    table = ExperimentTable(
        name=f"Fig 16: ablation, avg data-passing latency ({preset})",
        columns=["config", "data_latency_ms", "slowdown_vs_full"],
        notes=f"workflow={workflow}, bursty trace, storage capped at "
        f"{storage_fraction:.0%} to expose ES",
    )
    full = None
    for label, flags in ABLATIONS:
        latency = _avg_data_latency(
            preset, flags, workflow, rate, duration, storage_fraction
        )
        if full is None:
            full = latency
        table.add(
            config=label,
            data_latency_ms=latency * 1e3,
            slowdown_vs_full=latency / full,
        )
    return table


def run_both_testbeds(**kwargs):
    return [
        run(preset="dgx-v100", **kwargs),
        run(preset="dgx-a100", **kwargs),
    ]
