"""Fig. 7 — GPU memory dynamics under an Azure-style trace.

(a) Idle GPU memory while the *driving* workflow replays a trace on a
16 GB-per-GPU DGX-V100 — memory is mostly underutilized but varies
unpredictably.

(b) Forced evictions once available storage shrinks: with a tight
storage limit, puts push earlier objects out to host memory.
"""

from __future__ import annotations

from repro.common.units import GB
from repro.dataplane import CAT_MIGRATION
from repro.experiments.harness import ExperimentTable, build_testbed
from repro.traces import make_trace
from repro.workflow import get_workload


def run_memory_timeline(
    pattern: str = "bursty",
    rate: float = 4.0,
    duration: float = 20.0,
) -> ExperimentTable:
    """Fig. 7(a): idle GPU memory over time (summary statistics)."""
    testbed = build_testbed(
        plane_name="grouter",
        plane_kwargs={"record_timelines": True},
    )
    deployment = testbed.platform.deploy(get_workload("driving"))
    trace = make_trace(pattern, rate=rate, duration=duration, seed=5)
    testbed.platform.run_trace(deployment, trace)

    table = ExperimentTable(
        name="Fig 7(a): idle GPU memory under Azure-style trace (per GPU)",
        columns=["gpu", "capacity_gb", "min_idle_gb", "mean_idle_gb",
                 "max_idle_gb", "samples"],
    )
    for device_id, memory in sorted(testbed.plane.device_memory.items()):
        if not memory.timeline:
            continue
        idle = [memory.capacity - s.used for s in memory.timeline]
        table.add(
            gpu=device_id,
            capacity_gb=memory.capacity / GB,
            min_idle_gb=min(idle) / GB,
            mean_idle_gb=sum(idle) / len(idle) / GB,
            max_idle_gb=max(idle) / GB,
            samples=len(idle),
        )
    return table


def run_forced_eviction(
    limits=(1.0, 0.2, 0.1, 0.05),
    rate: float = 4.0,
    duration: float = 15.0,
) -> ExperimentTable:
    """Fig. 7(b): evictions to host as available memory diminishes."""
    table = ExperimentTable(
        name="Fig 7(b): forced data eviction vs available GPU memory",
        columns=["storage_limit_fraction", "migrations", "admission_spills",
                 "migrated_gb", "p99_latency_ms"],
    )
    for fraction in limits:
        testbed = build_testbed(
            plane_name="grouter",
            plane_kwargs={"storage_limit_fraction": fraction},
        )
        deployment = testbed.platform.deploy(get_workload("driving"))
        trace = make_trace("bursty", rate=rate, duration=duration, seed=1)
        results = testbed.platform.run_trace(deployment, trace)
        migrations = [
            r for r in testbed.plane.metrics.records
            if r.category == CAT_MIGRATION
        ]
        latencies = sorted(r.latency for r in results)
        p99 = latencies[int(0.99 * (len(latencies) - 1))] if latencies else 0
        table.add(
            storage_limit_fraction=fraction,
            migrations=len(migrations),
            admission_spills=testbed.plane.metrics.admission_spills,
            migrated_gb=sum(m.size for m in migrations) / GB,
            p99_latency_ms=p99 * 1e3,
        )
    return table
