"""Fig. 18 — elastic GPU storage under memory pressure.

Four systems under a bursty workload with GPU storage capped:

- **INFless+** — host storage (no GPU residency at all),
- **LRU** — GPU storage with LRU eviction (what NVSHMEM+ inherits),
- **RQ** — request-queue-aware eviction, no proactive restore,
- **GROUTER** — queue-aware eviction + proactive migration/restore.

Panels: (a) latency distribution under a tight storage cap, (b) sweep
of the memory ratio, (c) average per-request data-passing time.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentTable, build_testbed, mean, p99
from repro.metrics import LatencyRecorder
from repro.traces import make_trace
from repro.workflow import get_workload

SYSTEMS = ("infless+", "lru", "rq", "grouter")


def _plane_config(system: str, fraction: float) -> tuple[str, dict]:
    if system == "infless+":
        return "infless+", {}
    if system == "lru":
        return "grouter", {
            "storage_limit_fraction": fraction,
            "eviction_policy": "lru",
            "proactive_restore": False,
        }
    if system == "rq":
        return "grouter", {
            "storage_limit_fraction": fraction,
            "eviction_policy": "queue-aware",
            "proactive_restore": False,
        }
    return "grouter", {
        "storage_limit_fraction": fraction,
        "eviction_policy": "queue-aware",
        "proactive_restore": True,
    }


def _run(system: str, fraction: float, workflow: str, rate: float,
         duration: float):
    plane_name, plane_kwargs = _plane_config(system, fraction)
    testbed = build_testbed(
        plane_name=plane_name, plane_kwargs=plane_kwargs
    )
    deployment = testbed.platform.deploy(get_workload(workflow))
    trace = make_trace("bursty", rate=rate, duration=duration, seed=9)
    results = testbed.platform.run_trace(deployment, trace)
    return testbed, results


def run_tail_latency(
    fraction: float = 0.06,
    workflow: str = "driving",
    rate: float = 10.0,
    duration: float = 15.0,
) -> ExperimentTable:
    """Fig. 18(a): latency distribution under a tight storage cap."""
    table = ExperimentTable(
        name=f"Fig 18(a): latency under {fraction:.0%} GPU storage",
        columns=["system", "p50_ms", "p99_ms", "reduction_vs_infless_p99"],
    )
    baseline_p99 = None
    for system in SYSTEMS:
        _tb, results = _run(system, fraction, workflow, rate, duration)
        recorder = LatencyRecorder(system)
        recorder.extend([r.latency for r in results])
        if system == "infless+":
            baseline_p99 = recorder.p99
        table.add(
            system=system,
            p50_ms=recorder.p50 * 1e3,
            p99_ms=recorder.p99 * 1e3,
            reduction_vs_infless_p99=(
                1 - recorder.p99 / baseline_p99
                if baseline_p99
                else None
            ),
        )
    return table


def run_memory_sweep(
    fractions=(0.01, 0.05, 0.1, 0.2),
    workflow: str = "driving",
    rate: float = 10.0,
    duration: float = 12.0,
) -> ExperimentTable:
    """Fig. 18(b): end-to-end latency across memory ratios."""
    table = ExperimentTable(
        name="Fig 18(b): P99 latency vs available memory ratio",
        columns=["memory_fraction"] + [f"{s}_p99_ms" for s in SYSTEMS],
    )
    for fraction in fractions:
        row = {"memory_fraction": fraction}
        for system in SYSTEMS:
            _tb, results = _run(system, fraction, workflow, rate, duration)
            row[f"{system}_p99_ms"] = p99(
                [r.latency for r in results]
            ) * 1e3
        table.add(**row)
    return table


def run_data_passing(
    fraction: float = 0.06,
    workflow: str = "driving",
    rate: float = 10.0,
    duration: float = 15.0,
) -> ExperimentTable:
    """Fig. 18(c): average per-request data-passing time.

    Measured uniformly as each request's total get+put wall time, which
    captures the cost of re-fetching migrated data from host memory —
    the quantity the eviction policy controls.
    """
    table = ExperimentTable(
        name="Fig 18(c): avg data-passing time under memory pressure",
        columns=["system", "data_ms", "reduction_vs_infless"],
    )
    baseline = None
    for system in SYSTEMS:
        _testbed, results = _run(system, fraction, workflow, rate, duration)
        value = mean([r.data_time for r in results])
        if system == "infless+":
            baseline = value
        table.add(
            system=system,
            data_ms=value * 1e3,
            reduction_vs_infless=(
                1 - value / baseline if baseline else None
            ),
        )
    return table
