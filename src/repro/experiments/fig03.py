"""Fig. 3 — host-centric data-passing overhead breakdown.

(a) For each evaluation workflow on INFless+ (DGX-V100), split wall
time into gFn-gFn passing, gFn-host passing, and computation.  The
paper reports data passing at ~92% of end-to-end latency (63% gFn-gFn
+ 29% gFn-host).

(b) The same breakdown for the Traffic workflow across batch sizes.
"""

from __future__ import annotations

from repro.experiments.harness import (
    ExperimentTable,
    mean_breakdown,
    run_workload_on_plane,
)
from repro.workflow import WORKLOADS

DEFAULT_WORKFLOWS = tuple(WORKLOADS)
DEFAULT_BATCHES = (1, 4, 8, 16, 32)


def run_overall(
    workflows=DEFAULT_WORKFLOWS,
    rate: float = 3.0,
    duration: float = 10.0,
) -> ExperimentTable:
    """Fig. 3(a): per-workflow latency breakdown on INFless+."""
    table = ExperimentTable(
        name="Fig 3(a): host-centric latency breakdown (INFless+, DGX-V100)",
        columns=[
            "workflow", "gfn_gfn_ms", "gfn_host_ms", "compute_ms",
            "data_fraction",
        ],
    )
    for workflow_name in workflows:
        _tb, results, workload = run_workload_on_plane(
            "infless+", workflow_name, rate=rate, duration=duration,
        )
        b = mean_breakdown(results, workload.workflow)
        table.add(
            workflow=workflow_name,
            gfn_gfn_ms=b.gfn_gfn * 1e3,
            gfn_host_ms=(b.gfn_host + b.cfn_cfn) * 1e3,
            compute_ms=b.compute * 1e3,
            data_fraction=b.data_fraction,
        )
    return table


def run_traffic_batches(
    batches=DEFAULT_BATCHES,
    rate: float = 3.0,
    duration: float = 10.0,
) -> ExperimentTable:
    """Fig. 3(b): Traffic breakdown across batch sizes."""
    table = ExperimentTable(
        name="Fig 3(b): Traffic workflow breakdown vs batch size (INFless+)",
        columns=[
            "batch", "gfn_gfn_ms", "gfn_host_ms", "compute_ms",
            "data_fraction",
        ],
    )
    for batch in batches:
        _tb, results, workload = run_workload_on_plane(
            "infless+", "traffic", rate=rate, duration=duration, batch=batch,
        )
        b = mean_breakdown(results, workload.workflow)
        table.add(
            batch=batch,
            gfn_gfn_ms=b.gfn_gfn * 1e3,
            gfn_host_ms=(b.gfn_host + b.cfn_cfn) * 1e3,
            compute_ms=b.compute * 1e3,
            data_fraction=b.data_fraction,
        )
    return table
