"""Fig. 20 — applicability (no NVLink) and system overheads.

(a) Data-passing latency between GPU functions on a 4xA10 server with
no NVLink: GROUTER still wins (~51% in the paper) because placement
awareness halves the PCIe copies; NVSHMEM+ degenerates to INFless+
levels.

(b) CPU overhead of the control plane: catalog lookups, ACL checks,
monitoring — estimated as op-counts times per-op cost over the run.

(c) GPU memory overhead of storage: NVSHMEM's symmetric allocation and
static pooling versus GROUTER's demand-scaled pools.
"""

from __future__ import annotations

from repro.common.units import GB, MB, US
from repro.dataplane.nvshmem import SYMMETRIC_TAG
from repro.experiments.harness import (
    ExperimentTable,
    build_testbed,
    gpu_ctx,
    measure_put_get,
    mean,
    register_probe_workflow,
)
from repro.traces import make_trace
from repro.workflow import get_workload

PLANES = ("infless+", "nvshmem+", "deepplan+", "grouter")

# Control-plane CPU cost model: microseconds of one core per operation.
CPU_COST_PER_OP = 20 * US


def run_a10_latency(sizes_mb=(16, 64, 256), trials: int = 3) -> ExperimentTable:
    """Fig. 20(a): gFn-gFn data passing on a 4xA10 (no NVLink) server."""
    table = ExperimentTable(
        name="Fig 20(a): gFn-gFn data passing on 4xA10 (no NVLink)",
        columns=["size_mb"] + [f"{p}_ms" for p in PLANES]
        + ["grouter_reduction"],
    )
    for size_mb in sizes_mb:
        row = {"size_mb": size_mb}
        for plane in PLANES:
            samples = []
            for t in range(trials):
                testbed = build_testbed(
                    preset="a10", plane_name=plane, with_platform=False,
                    plane_kwargs=(
                        {"seed": 21 + t} if plane != "infless+" else None
                    ),
                )
                register_probe_workflow(testbed.plane)
                src = gpu_ctx(testbed, 0, 0)
                dst = gpu_ctx(testbed, 0, 2, model="person-rec")
                out = measure_put_get(testbed, src, dst, size_mb * MB)
                samples.append(out["total"])
            row[f"{plane}_ms"] = mean(samples) * 1e3
        best_baseline = min(
            row[f"{p}_ms"] for p in PLANES if p != "grouter"
        )
        row["grouter_reduction"] = 1 - row["grouter_ms"] / best_baseline
        table.add(**row)
    return table


def run_cpu_overhead(rate: float = 4.0, duration: float = 15.0) -> ExperimentTable:
    """Fig. 20(b): control-plane CPU overhead per plane."""
    table = ExperimentTable(
        name="Fig 20(b): control-plane CPU overhead",
        columns=["plane", "control_ops", "acl_checks", "global_lookups",
                 "cpu_core_fraction"],
        notes=f"cost model: {CPU_COST_PER_OP * 1e6:.0f}us of one core per op",
    )
    for plane_name in ("infless+", "grouter"):
        testbed = build_testbed(plane_name=plane_name)
        deployment = testbed.platform.deploy(get_workload("traffic"))
        trace = make_trace("bursty", rate=rate, duration=duration, seed=3)
        testbed.platform.run_trace(deployment, trace)
        plane = testbed.plane
        ops = (
            plane.metrics.control_ops
            + plane.acl.checked_count
            + plane.catalog.stats.registrations
            + plane.catalog.stats.global_lookups
        )
        wall = testbed.env.now
        table.add(
            plane=plane_name,
            control_ops=plane.metrics.control_ops,
            acl_checks=plane.acl.checked_count,
            global_lookups=plane.catalog.stats.global_lookups,
            cpu_core_fraction=ops * CPU_COST_PER_OP / wall,
        )
    return table


def run_gpu_memory_overhead(rate: float = 4.0,
                            duration: float = 15.0) -> ExperimentTable:
    """Fig. 20(c): GPU memory consumed by the storage layer."""
    table = ExperimentTable(
        name="Fig 20(c): GPU memory overhead of storage",
        columns=["plane", "peak_pool_gb", "peak_symmetric_gb",
                 "final_reserved_gb"],
    )
    for plane_name in ("nvshmem+", "deepplan+", "grouter"):
        testbed = build_testbed(
            plane_name=plane_name,
            plane_kwargs={"record_timelines": True},
        )
        deployment = testbed.platform.deploy(get_workload("traffic"))
        trace = make_trace("bursty", rate=rate, duration=duration, seed=3)
        testbed.platform.run_trace(deployment, trace)
        # Let elastic pools trim after the trace drains.
        testbed.env.run(until=testbed.env.now + 60.0)
        plane = testbed.plane
        peak_pool = sum(p.peak_reserved for p in plane.pools.values())
        peak_symmetric = 0.0
        for memory in plane.device_memory.values():
            peaks = [
                s.by_tag.get(SYMMETRIC_TAG, 0.0) for s in memory.timeline
            ]
            peak_symmetric += max(peaks, default=0.0)
        table.add(
            plane=plane_name,
            peak_pool_gb=peak_pool / GB,
            peak_symmetric_gb=peak_symmetric / GB,
            final_reserved_gb=plane.total_pool_reserved() / GB,
        )
    return table
