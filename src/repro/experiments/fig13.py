"""Fig. 13 — raw data-passing latency between two functions.

Three patterns, each swept over data sizes and the four planes:

(a) intra-node gFn-gFn (paper: GROUTER -95% vs INFless+, -75% vs
    NVSHMEM+/DeepPlan+),
(b) host-gFn (−63%/−63%/−75%),
(c) inter-node gFn-gFn (−91%/−87%/−87%).
"""

from __future__ import annotations

from repro.common.units import MB
from repro.experiments.harness import (
    ExperimentTable,
    build_testbed,
    cpu_ctx,
    gpu_ctx,
    measure_put_get,
    register_probe_workflow,
)

PLANES = ("infless+", "nvshmem+", "deepplan+", "grouter")
DEFAULT_SIZES_MB = (4, 16, 64, 256)


def _measure(plane_name: str, pattern: str, size: float,
             preset: str, seed: int = 11) -> float:
    num_nodes = 2 if pattern == "inter" else 1
    testbed = build_testbed(
        preset=preset,
        num_nodes=num_nodes,
        plane_name=plane_name,
        with_platform=False,
        plane_kwargs={"seed": seed} if plane_name != "infless+" else None,
    )
    register_probe_workflow(testbed.plane)
    if pattern == "intra":
        src = gpu_ctx(testbed, 0, 0)
        dst = gpu_ctx(testbed, 0, 3, model="person-rec")
    elif pattern == "host":
        src = cpu_ctx(testbed, 0)  # data starts in host memory
        dst = gpu_ctx(testbed, 0, 0)
    elif pattern == "inter":
        src = gpu_ctx(testbed, 0, 0)
        dst = gpu_ctx(testbed, 1, 0, model="person-rec")
    else:
        raise ValueError(f"unknown pattern {pattern!r}")
    out = measure_put_get(testbed, src, dst, size)
    return out["total"]


def run_pattern(
    pattern: str,
    sizes_mb=DEFAULT_SIZES_MB,
    preset: str = "dgx-v100",
    planes=PLANES,
    trials: int = 3,
) -> ExperimentTable:
    """One Fig. 13 panel: latency vs size for every plane.

    Randomized planes (NVSHMEM+/DeepPlan+ storage placement) are
    averaged over *trials* seeds.
    """
    titles = {
        "intra": "Fig 13(a): intra-node gFn-gFn data passing (DGX-V100)",
        "host": "Fig 13(b): host-gFn data passing",
        "inter": "Fig 13(c): inter-node gFn-gFn data passing",
    }
    table = ExperimentTable(
        name=titles[pattern],
        columns=["size_mb"] + [f"{p}_ms" for p in planes]
        + ["grouter_reduction_vs_best_baseline"],
    )
    for size_mb in sizes_mb:
        row = {"size_mb": size_mb}
        for plane in planes:
            samples = [
                _measure(plane, pattern, size_mb * MB, preset, seed=11 + t)
                for t in range(trials)
            ]
            row[f"{plane}_ms"] = sum(samples) / len(samples) * 1e3
        baselines = [
            row[f"{p}_ms"] for p in planes if p != "grouter"
        ]
        if "grouter" in planes and baselines:
            best = min(baselines)
            row["grouter_reduction_vs_best_baseline"] = (
                1 - row["grouter_ms"] / best
            )
        table.add(**row)
    return table


def run_all(sizes_mb=DEFAULT_SIZES_MB, preset: str = "dgx-v100"):
    """All three panels."""
    return [
        run_pattern("intra", sizes_mb, preset),
        run_pattern("host", sizes_mb, preset),
        run_pattern("inter", sizes_mb, preset),
    ]
