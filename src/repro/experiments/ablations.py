"""Design-choice ablations beyond the paper's figures.

- chunk-size sweep: GROUTER defaults to 2 MB chunks (§4.3.1); tiny
  chunks pay per-batch setup, huge chunks delay preemption.
- batch-size sweep: batches of 5 chunks balance preemption granularity
  against connection setup (§4.3.2).
- placement sensitivity: MAPA vs round-robin vs random under the same
  trace.
"""

from __future__ import annotations

from repro.common.units import MB
from repro.experiments.harness import (
    ExperimentTable,
    build_testbed,
    gpu_ctx,
    mean,
    measure_put_get,
    p99,
    register_probe_workflow,
)
from repro.traces import make_trace
from repro.workflow import get_workload


def run_chunk_size_sweep(
    chunk_sizes_mb=(0.25, 1, 2, 8, 32),
    transfer_mb: float = 256,
) -> ExperimentTable:
    """Data-passing latency vs chunk size (weak V100 pair, multi-path)."""
    table = ExperimentTable(
        name="Ablation: chunk size (256 MB, GPU0->GPU5, DGX-V100)",
        columns=["chunk_mb", "latency_ms"],
    )
    for chunk_mb in chunk_sizes_mb:
        testbed = build_testbed(plane_name="grouter", with_platform=False)
        testbed.plane.engine.chunk_size = chunk_mb * MB
        register_probe_workflow(testbed.plane)
        src = gpu_ctx(testbed, 0, 0)
        dst = gpu_ctx(testbed, 0, 5, model="person-rec")
        out = measure_put_get(testbed, src, dst, transfer_mb * MB)
        table.add(chunk_mb=chunk_mb, latency_ms=out["total"] * 1e3)
    return table


def run_batch_size_sweep(
    batch_chunks=(1, 2, 5, 10, 25),
    transfer_mb: float = 256,
) -> ExperimentTable:
    """Data-passing latency vs chunks-per-batch."""
    table = ExperimentTable(
        name="Ablation: chunks per batch (256 MB, GPU0->GPU3, DGX-V100)",
        columns=["batch_chunks", "latency_ms"],
    )
    for chunks in batch_chunks:
        testbed = build_testbed(plane_name="grouter", with_platform=False)
        testbed.plane.engine.batch_chunks = chunks
        register_probe_workflow(testbed.plane)
        src = gpu_ctx(testbed, 0, 0)
        dst = gpu_ctx(testbed, 0, 3, model="person-rec")
        out = measure_put_get(testbed, src, dst, transfer_mb * MB)
        table.add(batch_chunks=chunks, latency_ms=out["total"] * 1e3)
    return table


def run_placement_sweep(
    policies=("mapa", "round-robin", "random"),
    workflow: str = "driving",
    rate: float = 4.0,
    duration: float = 12.0,
) -> ExperimentTable:
    """End-to-end latency sensitivity to the placement policy."""
    table = ExperimentTable(
        name=f"Ablation: placement policy ({workflow}, GROUTER, DGX-V100)",
        columns=["policy", "mean_ms", "p99_ms"],
    )
    for policy in policies:
        testbed = build_testbed(
            plane_name="grouter",
            platform_kwargs={"placement": policy},
        )
        deployment = testbed.platform.deploy(get_workload(workflow))
        trace = make_trace("bursty", rate=rate, duration=duration, seed=2)
        results = testbed.platform.run_trace(deployment, trace)
        latencies = [r.latency for r in results]
        table.add(
            policy=policy,
            mean_ms=mean(latencies) * 1e3,
            p99_ms=p99(latencies) * 1e3,
        )
    return table
