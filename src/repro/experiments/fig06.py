"""Fig. 6(a) — point-to-point bandwidth between DGX-V100 GPU pairs.

Measures achieved bandwidth for a large transfer between every GPU pair
using the best direct route (NVLink where present, PCIe peer-to-peer
otherwise).  Reproduces the paper's asymmetry statistics: 8/28 pairs at
double bandwidth, 8/28 at single-link bandwidth, 12/28 NVLink-less.
"""

from __future__ import annotations

from repro.common.units import GB
from repro.experiments.harness import ExperimentTable, build_testbed
from repro.net import single_flow_event
from repro.topology.paths import gpu_p2p_pcie_path, nvlink_direct_path


def measure_pair_bandwidth(preset: str = "dgx-v100",
                           size: float = 1 * GB) -> dict[tuple[int, int], float]:
    """Achieved GB/s for each (a, b) GPU pair via the direct route."""
    results: dict[tuple[int, int], float] = {}
    testbed = build_testbed(preset=preset, with_platform=False)
    node = testbed.cluster.nodes[0]
    n = len(node.gpus)
    for a in range(n):
        for b in range(n):
            if a == b:
                continue
            path = nvlink_direct_path(node, node.gpu(a), node.gpu(b))
            if path is None:
                path = gpu_p2p_pcie_path(node, node.gpu(a), node.gpu(b))
            start = testbed.env.now
            event = single_flow_event(
                testbed.plane.network, path, size, tag=f"probe-{a}-{b}"
            )
            testbed.env.run()
            duration = event.value.finished_at - start
            results[(a, b)] = (size / duration) / GB
    return results


def run(preset: str = "dgx-v100") -> ExperimentTable:
    """Fig. 6(a): the pairwise bandwidth matrix plus asymmetry stats."""
    bandwidth = measure_pair_bandwidth(preset)
    n = max(a for a, _b in bandwidth) + 1
    table = ExperimentTable(
        name=f"Fig 6(a): p2p bandwidth matrix ({preset}, GB/s)",
        columns=["gpu"] + [f"g{b}" for b in range(n)],
    )
    for a in range(n):
        row = {"gpu": f"g{a}"}
        for b in range(n):
            row[f"g{b}"] = bandwidth.get((a, b))
        table.add(**row)
    values = sorted(set(round(v, 1) for v in bandwidth.values()))
    pairs = [(a, b) for (a, b) in bandwidth if a < b]
    tiers = {
        tier: sum(
            1 for (a, b) in pairs if round(bandwidth[(a, b)], 1) == tier
        )
        for tier in values
    }
    table.notes = (
        "bandwidth tiers (GB/s -> pair count): "
        + ", ".join(f"{t}: {c}" for t, c in tiers.items())
    )
    return table
