"""Fig. 15 — maximum sustainable throughput.

Binary-search the highest constant request rate at which P99 latency
stays within 2x the unloaded latency.  Intra-node places the whole
workflow on one server; cross-node alternates consecutive stages across
two servers, forcing every gFn-gFn edge over the network.

Paper: intra-node GROUTER beats INFless+/NVSHMEM+/DeepPlan+ by
2.1x/1.74x/1.37x; cross-node by 2.73x/1.55x/1.39x.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import build_testbed, ExperimentTable, p99
from repro.metrics import find_max_throughput
from repro.traces import Trace, TraceConfig
from repro.workflow import get_workload

PLANES = ("infless+", "nvshmem+", "deepplan+", "grouter")


def _uniform_trace(rate: float, duration: float) -> Trace:
    count = max(1, int(rate * duration))
    arrivals = np.linspace(0.0, duration, count, endpoint=False)
    config = TraceConfig(
        pattern="sporadic", rate=rate, duration=duration, seed=0
    )
    return Trace(config=config, arrivals=arrivals)


def _deploy(testbed, workload_name: str, cross_node: bool):
    workload = get_workload(workload_name)
    allowed = None
    if cross_node:
        nodes = testbed.cluster.nodes
        allowed = []
        for i in range(len(nodes[0].gpus)):
            for node in nodes:
                allowed.append(node.gpu(i))
    return testbed.platform.deploy(workload, allowed_gpus=allowed)


def _unloaded_latency(plane_name: str, workload_name: str, preset: str,
                      cross_node: bool) -> float:
    testbed = build_testbed(
        preset=preset,
        num_nodes=2 if cross_node else 1,
        plane_name=plane_name,
        platform_kwargs={
            "placement": "round-robin" if cross_node else "mapa"
        },
    )
    deployment = _deploy(testbed, workload_name, cross_node)
    proc = testbed.platform.submit(deployment)
    testbed.env.run()
    return proc.value.latency


def _sustainable(plane_name: str, workload_name: str, preset: str,
                 cross_node: bool, rate: float, slo: float,
                 duration: float) -> bool:
    testbed = build_testbed(
        preset=preset,
        num_nodes=2 if cross_node else 1,
        plane_name=plane_name,
        platform_kwargs={
            "placement": "round-robin" if cross_node else "mapa"
        },
    )
    deployment = _deploy(testbed, workload_name, cross_node)
    trace = _uniform_trace(rate, duration)
    results = testbed.platform.run_trace(deployment, trace, drain=30.0)
    if len(results) < len(trace):
        return False  # some requests never finished: unstable
    return p99([r.latency for r in results]) <= slo


def max_throughput(plane_name: str, workload_name: str = "driving",
                   preset: str = "dgx-v100", cross_node: bool = False,
                   duration: float = 10.0, high: float = 60.0) -> float:
    """Highest sustainable request rate for one plane."""
    unloaded = _unloaded_latency(
        plane_name, workload_name, preset, cross_node
    )
    slo = 2.0 * unloaded

    def probe(rate: float) -> bool:
        return _sustainable(
            plane_name, workload_name, preset, cross_node, rate, slo,
            duration,
        )

    return find_max_throughput(probe, low=0.5, high=high, tolerance=0.08)


def run(workload_name: str = "driving", preset: str = "dgx-v100",
        planes=PLANES, duration: float = 10.0) -> ExperimentTable:
    """Fig. 15: throughput per plane, intra- and cross-node."""
    table = ExperimentTable(
        name=f"Fig 15: max throughput ({workload_name}, {preset}, req/s)",
        columns=["scenario"] + [f"{p}_rps" for p in planes]
        + ["grouter_speedup_vs_infless"],
    )
    for cross_node, label in ((False, "intra-node"), (True, "cross-node")):
        row = {"scenario": label}
        for plane in planes:
            row[f"{plane}_rps"] = max_throughput(
                plane, workload_name, preset, cross_node, duration
            )
        row["grouter_speedup_vs_infless"] = (
            row["grouter_rps"] / row["infless+_rps"]
            if row["infless+_rps"] > 0
            else float("inf")
        )
        table.add(**row)
    return table
