"""Fig. 19 — TTFT for LLM (Mixture-of-Agents) KV-cache passing.

(a) Receiver TTFT vs input length on 8xH800 nodes (paper at 4K: −66%
vs INFless+, −57% vs Mooncake+).

(b) TTFT across models and tensor-parallel degrees (paper averages:
−36% / −28%); Mooncake's gap narrows as TP grows because it starts
using multiple NICs.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentTable
from repro.llm import get_llm, ttft

SYSTEMS = ("infless+", "mooncake+", "grouter")
DEFAULT_LENGTHS = (1024, 2048, 4096, 8192, 16384)
DEFAULT_MODELS = ("llama-7b", "llama-13b", "llama-70b")
DEFAULT_TPS = (1, 2, 4, 8)


def run_input_lengths(
    model: str = "llama-7b",
    lengths=DEFAULT_LENGTHS,
    tp: int = 8,
) -> ExperimentTable:
    """Fig. 19(a): TTFT vs input length."""
    spec = get_llm(model)
    table = ExperimentTable(
        name=f"Fig 19(a): TTFT vs input length ({model}, TP={tp}, 8xH800)",
        columns=["input_tokens"] + [f"{s}_ms" for s in SYSTEMS]
        + ["grouter_reduction_vs_infless", "grouter_reduction_vs_mooncake"],
    )
    for tokens in lengths:
        row = {"input_tokens": tokens}
        for system in SYSTEMS:
            row[f"{system}_ms"] = ttft(system, spec, tokens, tp) * 1e3
        row["grouter_reduction_vs_infless"] = (
            1 - row["grouter_ms"] / row["infless+_ms"]
        )
        row["grouter_reduction_vs_mooncake"] = (
            1 - row["grouter_ms"] / row["mooncake+_ms"]
        )
        table.add(**row)
    return table


def run_models_tp(
    models=DEFAULT_MODELS,
    tps=DEFAULT_TPS,
    input_tokens: int = 4096,
) -> ExperimentTable:
    """Fig. 19(b): TTFT across models and TP degrees."""
    table = ExperimentTable(
        name=f"Fig 19(b): TTFT across models and TP (input={input_tokens})",
        columns=["model", "tp"] + [f"{s}_ms" for s in SYSTEMS]
        + ["grouter_reduction_vs_mooncake"],
    )
    for model in models:
        spec = get_llm(model)
        for tp in tps:
            row = {"model": model, "tp": tp}
            for system in SYSTEMS:
                row[f"{system}_ms"] = (
                    ttft(system, spec, input_tokens, tp) * 1e3
                )
            row["grouter_reduction_vs_mooncake"] = (
                1 - row["grouter_ms"] / row["mooncake+_ms"]
            )
            table.add(**row)
    return table
