"""Fig. 14 — end-to-end P99 latency under production traces.

Every evaluation workflow x every plane x both testbeds (DGX-V100 and
DGX-A100).  The paper reports GROUTER cutting P99 by 61%/48%/54% vs
INFless+/NVSHMEM+/DeepPlan+ on V100, and 53%/36%/30% on A100 (where
DeepPlan+ overtakes NVSHMEM+ thanks to the symmetric topology).
"""

from __future__ import annotations

from repro.experiments.harness import (
    ExperimentTable,
    p99,
    run_workload_on_plane,
)
from repro.workflow import WORKLOADS

PLANES = ("infless+", "nvshmem+", "deepplan+", "grouter")


def run(
    preset: str = "dgx-v100",
    workflows=tuple(WORKLOADS),
    planes=PLANES,
    pattern: str = "bursty",
    rate: float = 4.0,
    duration: float = 15.0,
) -> ExperimentTable:
    """One testbed's panel of Fig. 14."""
    table = ExperimentTable(
        name=f"Fig 14: end-to-end P99 latency ({preset}, {pattern} trace)",
        columns=["workflow"] + [f"{p}_p99_ms" for p in planes]
        + ["grouter_reduction_vs_infless"],
    )
    for workflow_name in workflows:
        row = {"workflow": workflow_name}
        for plane in planes:
            _tb, results, _wl = run_workload_on_plane(
                plane, workflow_name, preset=preset,
                pattern=pattern, rate=rate, duration=duration,
            )
            row[f"{plane}_p99_ms"] = p99([r.latency for r in results]) * 1e3
        row["grouter_reduction_vs_infless"] = (
            1 - row["grouter_p99_ms"] / row["infless+_p99_ms"]
        )
        table.add(**row)
    return table


def run_both_testbeds(**kwargs):
    """Fig. 14 on DGX-V100 and DGX-A100."""
    return [
        run(preset="dgx-v100", **kwargs),
        run(preset="dgx-a100", **kwargs),
    ]
