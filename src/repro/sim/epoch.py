"""Piecewise-constant epoch regions: one timer, lazy state, exact splits.

Three fast paths in the network layer exploit the same observation: a
set of flows whose rates are *piecewise constant* between disturbances
needs no DES events inside an epoch — the next observable instant (the
earliest analytic completion) can be computed in closed form, one timer
armed for it, and everything else deferred.  Macro-flows (whole
chunk-batch loops), the clean-component "fast" timer regime, and the
opt-in analytic service curve each grew a private copy of the
machinery: single-timer management with reschedule elision, conceptual
``(instant, seq)`` arming that mirrors the per-flow timer heap, and a
split-on-disturbance contract that materializes eager state bit-exactly
when the quiescence assumption breaks.

This module is that machinery, extracted once:

``TimerSlot``
    Exactly-one-armed-timer management over
    :meth:`~repro.sim.core.Environment.schedule_at`.  Re-arming at the
    same ``(due, at)`` pair is elided (no cancel, no heap push), which
    is the invariant all three providers relied on separately.

``ArmSequencer``
    Monotonic conceptual arming sequence.  A region member's armed
    completion is a ``(instant, seq)`` pair; ties on equal instants
    resolve by arming order, exactly as the real per-flow timer heap
    breaks same-time ties by scheduling sequence.

``EpochLedger``
    Deferred-advance bookkeeping for a quiescent region.  The eager
    regime advances *every* member at *every* epoch boundary (one
    ``rem -= min(rem, rate * dt)`` per member per epoch — a chain whose
    float results are observables).  The ledger records the boundaries
    and each member's per-epoch rate instead, so a member's chain is
    replayed — identical floats, identical order — only when *it* is
    observed: at its own completion, at a disturbance, or at a shared
    byte-counter barrier.  Total work is unchanged; per-*event* work
    collapses from Θ(members) to O(changed members).

``EpochRegion``
    The composition: a mode tag (``classic`` / ``fast`` / ``analytic``),
    the slot, the sequencer hook, the optional ledger, the optional
    analytic service-curve state, and a lazy-deleted completion heap
    for O(log n) earliest-completion maintenance.

The contract every provider implements on top of a region:

1. **Quiescence detection** — the provider decides when its members'
   rates are constant (macro eligibility, the clean-component
   predicate) and enters the region's fast mode.
2. **One timer** — the earliest analytic completion is armed through
   the slot; everything between now and it is skipped.
3. **Split on disturbance** — any event that breaks the
   piecewise-constant assumption (a new flow, a reservation, an SLO
   grant, a telemetry subscription, a merge) first *materializes*
   eager state bit-exactly: ledger chains are settled, conceptual
   instants become real timers at their recorded values (never
   re-derived — ``now + remaining/rate`` can land one ulp away), and
   only then does the eager machinery resume.

The degradation ladder — analytic → fast+ledger → fast → classic —
always steps toward strictly more eager state; every step is exact, so
fast modes are pure optimisations with a correctness argument, enforced
by the differential suites in ``tests/property/``.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

__all__ = ["ArmSequencer", "TimerSlot", "EpochLedger", "EpochRegion"]


class ArmSequencer:
    """Monotonic conceptual timer-arming sequence shared by regions.

    ``-1`` is the conventional "not armed" sentinel on members; every
    arm draws the next positive integer, so ``(instant, seq)`` ordering
    reproduces the real heap's same-time tie-break.
    """

    __slots__ = ("_counter",)

    def __init__(self) -> None:
        self._counter = 0

    def next(self) -> int:
        self._counter += 1
        return self._counter


class TimerSlot:
    """Exactly one armed timer, with same-``(due, at)`` rearm elision.

    The slot owns at most one live
    :class:`~repro.sim.core.ScheduledCall`.  ``arm`` cancels and
    replaces it unless the requested ``(due, at)`` pair matches what is
    already armed — the elision all three epoch providers depend on to
    avoid heap churn when a recomputation lands on the same instant.
    """

    __slots__ = ("env", "handle", "due", "at")

    def __init__(self, env) -> None:
        self.env = env
        self.handle = None
        self.due: Any = None
        self.at = 0.0

    @property
    def armed(self) -> bool:
        return self.handle is not None

    def arm(self, at: float, due: Any, callback: Callable[[], None]) -> bool:
        """Arm at absolute instant *at* for *due*; returns False when
        the identical arming was already in place (elided)."""
        if self.handle is not None and self.due is due and self.at == at:
            return False
        if self.handle is not None:
            self.handle.cancel()
        self.handle = self.env.schedule_at(at, callback)
        self.due = due
        self.at = at
        return True

    def disarm(self) -> None:
        if self.handle is not None:
            self.handle.cancel()
            self.handle = None
        self.due = None

    def fired(self) -> Any:
        """Consume a firing: clears the handle, returns the due payload."""
        self.handle = None
        due = self.due
        self.due = None
        return due


class EpochLedger:
    """Deferred member advances over recorded epoch boundaries.

    Members are duck-typed flow objects carrying the epoch slots
    ``_eh`` (rate history, ``[(epoch_index, rate), ...]``), ``_eidx``
    (epochs settled so far), ``_ejoin`` / ``_edept`` (alive range),
    ``_erem0`` (remaining at join, the replay seed) and ``_remaining``.

    The eager fast regime executes, at each boundary, one

        ``moved = min(rem, rate * elapsed); rem -= moved``

    per member (plus a ``bytes_carried += moved`` per path link).  The
    ledger records ``(boundary_time, due_member)`` pairs instead and
    replays a member's subtraction chain lazily via
    :meth:`settle_member` — same floats, same order, because each
    member's chain only reads its own state.  The shared per-link byte
    accumulators *are* order-sensitive across members, so they are only
    settled at a full :meth:`barrier`, which replays epoch-major in the
    eager order: the boundary's due member first (the completing flow
    advances before the component recomputes), then the surviving
    members in arrival order.
    """

    __slots__ = ("bounds", "members", "dues", "credit_bytes")

    def __init__(self, now: float) -> None:
        # bounds[e] .. bounds[e+1] is epoch e; a boundary is appended
        # on every region event after the advances it implies.
        self.bounds: List[float] = [now]
        # Arrival-ordered member list, departed members included (their
        # byte contributions replay at the barrier).
        self.members: list = []
        # dues[e] is the member whose completion created boundary e+1
        # (None for arrivals/cancels): it advances first in the replay.
        self.dues: List[Optional[Any]] = []
        # Callback applying a settled byte credit: (member, moved).
        self.credit_bytes: Optional[Callable[[Any, float], None]] = None

    @property
    def epochs(self) -> int:
        return len(self.bounds) - 1

    def join(self, member, epoch: int, rate: float) -> None:
        """Register *member* from *epoch* onward at *rate*."""
        member._eled = self
        member._ejoin = epoch
        member._edept = 1 << 30
        member._erem0 = member._remaining
        member._eidx = epoch
        member._eh = [(epoch, rate)]
        self.members.append(member)

    def set_rate(self, member, epoch: int, rate: float) -> None:
        """Record a rate change effective from *epoch* onward."""
        hist = member._eh
        if hist and hist[-1][0] == epoch:
            hist[-1] = (epoch, rate)
        else:
            hist.append((epoch, rate))

    def boundary(self, now: float, due=None) -> int:
        """Close the current epoch at *now*; returns the new epoch index."""
        self.dues.append(due)
        self.bounds.append(now)
        return len(self.bounds) - 1

    def depart(self, member, epoch: int) -> None:
        """Member leaves at boundary *epoch* (its last epoch is epoch-1)."""
        member._edept = epoch
        member._eled = None

    def settle_member(self, member, upto: Optional[int] = None) -> None:
        """Replay *member*'s deferred subtraction chain.

        Bit-exact: the per-epoch ``dt`` is the same two boundary floats
        the eager advance would subtract (``now - _last_update``), the
        guard (``elapsed > 0 and rate > 0``) and the ``min`` clamp are
        verbatim, and the chain order is the member's own.
        """
        end = self.epochs if upto is None else upto
        e = member._eidx
        if e >= end:
            return
        hist = member._eh
        hi = len(hist) - 1
        # Locate the history entry in effect at epoch e.
        k = 0
        while k < hi and hist[k + 1][0] <= e:
            k += 1
        rem = member._remaining
        bounds = self.bounds
        stop = min(end, member._edept)
        while e < stop:
            while k < hi and hist[k + 1][0] <= e:
                k += 1
            rate = hist[k][1]
            elapsed = bounds[e + 1] - bounds[e]
            if elapsed > 0 and rate > 0:
                moved = min(rem, rate * elapsed)
                rem -= moved
            e += 1
        member._remaining = rem
        member._eidx = max(end, member._eidx)

    def replay_bytes(self) -> None:
        """Settle the shared per-link byte accumulators (barrier half).

        Replays every member's chain from its ``_erem0`` seed in
        epoch-major order — due member first, then arrival order — so
        the per-link ``bytes_carried`` float accumulation matches the
        eager regime add-for-add.  Members' ``_remaining`` values are
        not touched (their own chains are settled separately and the
        replay reproduces the same values by construction).
        """
        credit = self.credit_bytes
        if credit is None:
            return
        rems = {id(m): m._erem0 for m in self.members}
        bounds = self.bounds
        for e in range(self.epochs):
            elapsed = bounds[e + 1] - bounds[e]
            due = self.dues[e]
            ordered = [due] if due is not None else []
            for m in self.members:
                if m is due:
                    continue
                if m._ejoin <= e < m._edept:
                    ordered.append(m)
            for m in ordered:
                # The due member's final epoch is e == _edept - 1; it
                # is advanced here even though _edept excludes it from
                # the survivor sweep above.
                if not (m._ejoin <= e < m._edept or (m is due and e == m._edept - 1)):
                    continue
                hist = m._eh
                rate = hist[0][1]
                for start, r in hist:
                    if start <= e:
                        rate = r
                    else:
                        break
                if elapsed > 0 and rate > 0:
                    rem = rems[id(m)]
                    moved = min(rem, rate * elapsed)
                    rems[id(m)] = rem - moved
                    credit(m, moved)


class EpochRegion:
    """A set of piecewise-constant-rate members behind one timer.

    Pure composition/state — the provider (the flow network) owns the
    arithmetic.  ``mode`` names the rung of the degradation ladder:

    ``"classic"``
        Per-member timers, fully eager (the pre-epoch behaviour).
    ``"fast"``
        Conceptual ``(instant, seq)`` instants, one slot timer,
        optionally an :class:`EpochLedger` deferring member advances.
    ``"analytic"``
        One shared service curve (``astate``), one slot timer.
    """

    __slots__ = ("env", "mode", "slot", "seq", "ledger", "astate", "heap")

    def __init__(self, env, seq: ArmSequencer) -> None:
        self.env = env
        self.mode = "fast"
        self.slot = TimerSlot(env)
        self.seq = seq
        self.ledger: Optional[EpochLedger] = None
        self.astate = None
        # Lazy-deleted (at, seq, member) completion heap; an entry is
        # live iff the member still carries exactly that (at, seq).
        self.heap: list = []

    def push_completion(self, member) -> None:
        heapq.heappush(
            self.heap, (member._timer_at, member._timer_seq, member)
        )

    def pop_earliest(self, live: Callable[[Any], bool]):
        """Live head of the completion heap, or None.  *live* checks a
        member still carries the entry's exact ``(at, seq)``."""
        heap = self.heap
        while heap:
            at, seq, member = heap[0]
            if (
                member._timer_seq != seq
                or member._timer_at != at
                or not live(member)
            ):
                heapq.heappop(heap)
                continue
            return heap[0]
        return None

    def start_ledger(self, now: float, credit_bytes) -> EpochLedger:
        ledger = EpochLedger(now)
        ledger.credit_bytes = credit_bytes
        self.ledger = ledger
        return ledger

    def drop_ledger(self) -> None:
        ledger = self.ledger
        if ledger is not None:
            for m in ledger.members:
                if m._eled is ledger:
                    m._eled = None
            self.ledger = None
        self.heap.clear()

    def disarm(self) -> None:
        self.slot.disarm()
