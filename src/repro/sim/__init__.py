"""Deterministic discrete-event simulation kernel."""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    ScheduledCall,
    Timeout,
)
from repro.sim.epoch import ArmSequencer, EpochLedger, EpochRegion, TimerSlot
from repro.sim.resources import Container, Request, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "ScheduledCall",
    "Timeout",
    "ArmSequencer",
    "EpochLedger",
    "EpochRegion",
    "TimerSlot",
    "Container",
    "Request",
    "Resource",
    "Store",
]
