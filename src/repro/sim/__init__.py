"""Deterministic discrete-event simulation kernel."""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    ScheduledCall,
    Timeout,
)
from repro.sim.resources import Container, Request, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "ScheduledCall",
    "Timeout",
    "Container",
    "Request",
    "Resource",
    "Store",
]
