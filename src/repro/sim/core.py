"""Discrete-event simulation kernel.

A minimal, deterministic, generator-based engine in the style of SimPy:
processes are Python generators that ``yield`` events; the environment
resumes a process when the event it waits on fires.

Determinism rules:

* Events scheduled for the same time fire in scheduling order (a
  monotonic sequence number breaks ties).
* No wall-clock or randomness lives in the kernel; stochastic behaviour
  belongs to callers who hold seeded RNGs.

Example
-------
>>> env = Environment()
>>> log = []
>>> def proc(env):
...     yield env.timeout(1.0)
...     log.append(env.now)
>>> _ = env.process(proc(env))
>>> env.run()
>>> log
[1.0]
"""

from __future__ import annotations

import heapq
from collections.abc import Generator
from typing import Any, Callable, Optional

from repro.common.errors import SimulationError

# Sentinel distinguishing "no value yet" from a real ``None`` value.
_PENDING = object()


class ScheduledCall:
    """Cancellable handle for a callable queued via :meth:`Environment.schedule`.

    Cancelling marks the heap entry dead instead of removing it (heap
    deletion is O(n)); the environment counts dead entries and compacts
    the heap when they outnumber the live ones, so long flow-churn runs
    do not accumulate unbounded cancelled-timer garbage.
    """

    __slots__ = ("_env", "call", "cancelled", "when")

    def __init__(self, env: "Environment", call: Callable[[], None]) -> None:
        self._env = env
        self.call: Optional[Callable[[], None]] = call
        self.cancelled = False
        # Absolute fire instant, stamped by schedule()/schedule_at().
        # Region-aware timer consumers (repro.sim.epoch.TimerSlot) read
        # this to elide re-arms without parallel bookkeeping.
        self.when = 0.0

    def cancel(self) -> None:
        """Prevent the call from running (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        self.call = None  # release the closure immediately
        self._env._note_stale()


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* once :meth:`succeed` or :meth:`fail` is
    called (its value is then fixed); it is *processed* once its
    callbacks have run at the scheduled simulation time.
    """

    __slots__ = (
        "env",
        "callbacks",
        "_value",
        "_ok",
        "_processed",
        "_defused",
    )

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._processed = False
        # Set when a failure was delivered to at least one waiter (or
        # explicitly defused); undelivered failures raise at run() time.
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has a value (succeeded or failed)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, if it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._post(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._post(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so run() will not re-raise."""
        self._defused = True

    # -- waiting -----------------------------------------------------------
    def subscribe(self, callback: Callable[["Event"], None]) -> None:
        """Attach *callback*; fires even if the event already processed."""
        if self._processed:
            self.env._schedule_call(lambda: callback(self))
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self._ok = True
        self._value = value if value is not None else delay
        env._post(self, delay=delay)


class AnyOf(Event):
    """Fires when the first of *events* fires (with a dict of done events)."""

    __slots__ = ("_events", "_done")

    def __init__(self, env: "Environment", events: list[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._done: dict[Event, Any] = {}
        if not self._events:
            self.succeed(self._done)
            return
        for event in self._events:
            event.subscribe(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                event.defuse()
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._done[event] = event.value
        self.succeed(self._done)


class AllOf(Event):
    """Fires when all of *events* have fired (with a dict of values)."""

    __slots__ = ("_events", "_done")

    def __init__(self, env: "Environment", events: list[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._done: dict[Event, Any] = {}
        if not self._events:
            self.succeed(self._done)
            return
        for event in self._events:
            event.subscribe(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                event.defuse()
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._done[event] = event.value
        if len(self._done) == len(self._events):
            self.succeed(self._done)


class Process(Event):
    """Wraps a generator; the process event fires when the generator ends.

    The generator may ``yield`` any :class:`Event`; it resumes with the
    event's value (or the exception is thrown into it on failure).
    """

    __slots__ = ("_generator", "_waiting_on", "_resume_callback")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not isinstance(generator, Generator):
            raise SimulationError(
                f"process() needs a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._resume_callback: Optional[Callable[[Event], None]] = None
        # Bootstrap: start the generator at the current time.
        env._schedule_call(lambda: self._resume(None, None))

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not yet finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        waiting, callback = self._waiting_on, self._resume_callback
        if waiting is not None and callback is not None:
            if callback in waiting.callbacks:
                waiting.callbacks.remove(callback)
        self._waiting_on = None
        self._resume_callback = None
        self.env._schedule_call(lambda: self._resume(None, Interrupt(cause)))

    # -- internals --------------------------------------------------------
    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.triggered:
            return
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as error:  # generator crashed
            self.fail(error)
            return
        if not isinstance(target, Event):
            self._resume(None, SimulationError(f"yielded non-event {target!r}"))
            return
        self._wait_for(target)

    def _wait_for(self, event: Event) -> None:
        self._waiting_on = event

        def _on_event(evt: Event) -> None:
            self._waiting_on = None
            self._resume_callback = None
            if evt._ok:
                self._resume(evt.value, None)
            else:
                evt.defuse()
                self._resume(None, evt.value)

        self._resume_callback = _on_event
        event.subscribe(_on_event)


class Environment:
    """The simulation environment: clock, event queue, process factory.

    ``telemetry`` is the environment's event bus attachment point
    (see :mod:`repro.telemetry`): ``None`` by default, so publishers
    across the stack pay a single attribute check when telemetry is
    off.  Setting the class attribute ``telemetry_hook`` (done by
    ``repro.telemetry.capture()``) instruments every subsequently
    created environment.
    """

    # Called with each new environment when set (telemetry capture).
    telemetry_hook: Optional[Callable[["Environment"], Any]] = None

    # Compaction never triggers below this many dead entries: tiny
    # queues are cheaper to drain than to rebuild.
    _COMPACT_MIN_STALE = 8

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = initial_time
        self._queue: list[tuple[float, int, object]] = []
        self._seq = 0
        self._stale = 0
        self.compactions = 0
        self.telemetry = None
        hook = Environment.telemetry_hook
        if hook is not None:
            hook(self)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after *delay* seconds."""
        return Timeout(self, delay, value)

    def timeout_until(self, time: float, value: Any = None) -> Event:
        """Create an event that fires at the absolute instant *time*.

        Unlike ``timeout(time - now)``, the fire time is *time* itself,
        not ``now + (time - now)`` — the two differ by an ulp whenever
        the subtraction rounds, which matters to consumers that replay
        exact event-time arithmetic (the transfer engine's macro-flow
        splits re-arm batch schedules this way).
        """
        if time < self._now:
            raise SimulationError(
                f"timeout_until({time}) is in the past (now={self._now})"
            )
        event = Event(self)
        event._ok = True
        event._value = value if value is not None else time
        heapq.heappush(self._queue, (time, self._seq, event))
        self._seq += 1
        return event

    def process(self, generator: Generator) -> Process:
        """Start *generator* as a process; returns its completion event."""
        return Process(self, generator)

    def any_of(self, events: list[Event]) -> AnyOf:
        """Event that fires when any of *events* fires."""
        return AnyOf(self, events)

    def all_of(self, events: list[Event]) -> AllOf:
        """Event that fires when all of *events* have fired."""
        return AllOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _post(self, event: Event, delay: float = 0.0) -> None:
        """Queue *event*'s callbacks to run after *delay*."""
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))
        self._seq += 1

    def _schedule_call(self, call: Callable[[], None], delay: float = 0.0) -> None:
        """Queue a bare callable (used for process bootstrap/resume)."""
        heapq.heappush(self._queue, (self._now + delay, self._seq, call))
        self._seq += 1

    def schedule(self, delay: float, call: Callable[[], None]) -> ScheduledCall:
        """Public hook: run *call* after *delay* seconds.

        Returns a :class:`ScheduledCall` handle whose ``cancel()``
        prevents the call from running.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        handle = ScheduledCall(self, call)
        handle.when = self._now + delay
        heapq.heappush(self._queue, (handle.when, self._seq, handle))
        self._seq += 1
        return handle

    def schedule_at(self, time: float, call: Callable[[], None]) -> ScheduledCall:
        """Like :meth:`schedule`, but at the absolute instant *time*.

        Exact-time arming for callers that replay event-time arithmetic
        (see :meth:`timeout_until` for why ``schedule(time - now)`` is
        not equivalent at the ulp level).
        """
        if time < self._now:
            raise SimulationError(f"time {time} is in the past (now={self._now})")
        handle = ScheduledCall(self, call)
        handle.when = time
        heapq.heappush(self._queue, (time, self._seq, handle))
        self._seq += 1
        return handle

    # -- heap hygiene --------------------------------------------------------
    @property
    def queue_size(self) -> int:
        """Entries currently on the heap (including dead ones)."""
        return len(self._queue)

    @property
    def stale_entries(self) -> int:
        """Cancelled-but-still-queued entries awaiting pop or compaction."""
        return self._stale

    def _note_stale(self) -> None:
        self._stale += 1
        if (
            self._stale >= self._COMPACT_MIN_STALE
            and self._stale > len(self._queue) // 2
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and restore the heap invariant."""
        self._queue = [
            entry
            for entry in self._queue
            if not (isinstance(entry[2], ScheduledCall) and entry[2].cancelled)
        ]
        heapq.heapify(self._queue)
        self._stale = 0
        self.compactions += 1

    # -- execution ------------------------------------------------------------
    def step(self) -> None:
        """Process the next queue entry, advancing the clock."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        time, _seq, entry = heapq.heappop(self._queue)
        if time < self._now:
            raise SimulationError("event scheduled in the past")
        if isinstance(entry, ScheduledCall) and entry.cancelled:
            # A cancelled call is a non-event: drop the stale entry
            # without advancing the clock, so the post-run ``now``
            # reflects the last *live* event regardless of what
            # garbage each allocator's arming pattern left behind.
            self._stale -= 1
            return
        self._now = time
        if isinstance(entry, Event):
            entry._processed = True
            callbacks, entry.callbacks = entry.callbacks, []
            for callback in callbacks:
                callback(entry)
            if entry._ok is False and not entry._defused:
                exc = entry._value
                if isinstance(exc, BaseException):
                    raise exc
                raise SimulationError(str(exc))
        elif isinstance(entry, ScheduledCall):
            entry.call()
        else:
            entry()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches *until*.

        When *until* is given the clock is advanced to exactly *until*
        even if the queue drains earlier.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"until={until} is in the past (now={self._now})")
        while self._queue:
            next_time = self._queue[0][0]
            if until is not None and next_time > until:
                break
            self.step()
        if until is not None:
            self._now = max(self._now, until)

    def peek(self) -> float:
        """Time of the next queued entry, or ``inf`` when empty."""
        return self._queue[0][0] if self._queue else float("inf")
