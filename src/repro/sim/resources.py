"""Shared-resource primitives built on the simulation kernel.

``Resource``
    Counting semaphore with FIFO (optionally priority) queueing.  GPUs
    are modelled as capacity-1 resources, matching the paper's
    time-multiplexed GPU sharing (footnote in §4.3.2).

``Store``
    An unbounded FIFO buffer of items; ``get`` blocks until an item is
    available.  Used for request queues.

``Container``
    A continuous-level tank with blocking ``get``; used for pinned
    buffer pools and other byte-counted capacities.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.common.errors import SimulationError
from repro.sim.core import Environment, Event


class Request(Event):
    """The event returned by :meth:`Resource.request`.

    Fires when the resource grants a slot.  Must be released via
    :meth:`Resource.release` (or used as a context token).
    """

    __slots__ = ("resource", "priority")

    def __init__(self, resource: "Resource", priority: float) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority


class Resource:
    """Counting semaphore with deterministic priority-FIFO queueing."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use: int = 0
        self._seq = 0
        # Heap of (priority, seq, request); lower priority value first.
        self._waiting: list[tuple[float, int, Request]] = []

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return self._in_use

    @property
    def queue_len(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self, priority: float = 0.0) -> Request:
        """Ask for a slot; the returned event fires when granted."""
        req = Request(self, priority)
        if self._in_use < self.capacity and not self._waiting:
            self._in_use += 1
            req.succeed()
        else:
            heapq.heappush(self._waiting, (priority, self._seq, req))
            self._seq += 1
        return req

    def release(self, request: Request) -> None:
        """Return the slot held by *request* to the pool."""
        if request.resource is not self:
            raise SimulationError("release() of a foreign request")
        self._in_use -= 1
        if self._in_use < 0:
            raise SimulationError("release() without a matching request")
        self._grant_next()

    def cancel(self, request: Request) -> None:
        """Withdraw a queued (not yet granted) request."""
        self._waiting = [
            entry for entry in self._waiting if entry[2] is not request
        ]
        heapq.heapify(self._waiting)

    def _grant_next(self) -> None:
        while self._waiting and self._in_use < self.capacity:
            _prio, _seq, req = heapq.heappop(self._waiting)
            if req.triggered:  # cancelled or failed elsewhere
                continue
            self._in_use += 1
            req.succeed()


class Store:
    """Unbounded FIFO item buffer with blocking ``get``."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: list[Any] = []
        self._getters: list[Event] = []

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Insert *item*; wakes the oldest blocked getter, if any."""
        if self._getters:
            getter = self._getters.pop(0)
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        event = self.env.event()
        if self._items:
            event.succeed(self._items.pop(0))
        else:
            self._getters.append(event)
        return event

    def peek_items(self) -> list[Any]:
        """Snapshot of buffered items (read-only view for policies)."""
        return list(self._items)


class Container:
    """A continuous-level tank (e.g. bytes of pinned buffer).

    ``get`` blocks until the requested amount is available; ``put``
    never blocks (unbounded or bounded by *capacity*).
    """

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if init < 0 or init > capacity:
            raise SimulationError(f"invalid initial level {init}")
        self.env = env
        self.capacity = capacity
        self._level = init
        self._seq = 0
        self._waiting: list[tuple[int, float, Event]] = []
        # Called (with this container) when a get() cannot be served
        # immediately.  Lazy holders — the transfer engine's coalesced
        # macro-flows keep pinned bytes virtually — use it to
        # materialize or release their claim before FIFO service runs,
        # so blocking behaviour matches the eager world exactly.
        self.on_blocked: Optional[Callable[["Container"], None]] = None

    @property
    def level(self) -> float:
        """Currently available amount."""
        return self._level

    @property
    def queue_len(self) -> int:
        """Number of get() requests waiting for service."""
        return len(self._waiting)

    def put(self, amount: float) -> None:
        """Add *amount*; clamps at capacity; wakes eligible getters."""
        if amount < 0:
            raise SimulationError(f"negative put amount {amount}")
        self._level = min(self.capacity, self._level + amount)
        self._serve()

    def get(self, amount: float) -> Event:
        """Return an event that fires once *amount* can be withdrawn."""
        if amount < 0:
            raise SimulationError(f"negative get amount {amount}")
        if amount > self.capacity:
            raise SimulationError(
                f"get({amount}) exceeds container capacity {self.capacity}"
            )
        event = self.env.event()
        self._waiting.append((self._seq, amount, event))
        self._seq += 1
        if (
            self.on_blocked is not None
            and self._waiting[0][1] > self._level
        ):
            # The head-of-line request (possibly this one) would block:
            # give lazy holders a chance to reconcile their claims
            # (their put()s re-enter _serve) before we settle service.
            self.on_blocked(self)
        self._serve()
        return event

    def _serve(self) -> None:
        # FIFO service discipline: head-of-line blocking is intentional,
        # it keeps large requests from starving.
        while self._waiting:
            _seq, amount, event = self._waiting[0]
            if amount > self._level:
                break
            self._waiting.pop(0)
            self._level -= amount
            event.succeed(amount)
