"""Azure-Functions-style request arrival generation (paper §6, [39]).

The production trace the paper replays exhibits three characteristic
arrival patterns; we generate each synthetically with a seeded RNG:

- **sporadic**: a homogeneous Poisson process at a low rate;
- **periodic**: a non-homogeneous Poisson process whose rate follows a
  sinusoid (diurnal-style waves), sampled by thinning;
- **bursty**: an on/off modulated Poisson process — short bursts at a
  multiple of the base rate separated by near-idle gaps.

All generators return sorted arrival times in seconds within
``[0, duration)`` and are deterministic for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.common.errors import ConfigError

PATTERNS = ("sporadic", "periodic", "bursty")


@dataclass(frozen=True)
class TraceConfig:
    """Parameters for synthetic trace generation."""

    pattern: str
    rate: float  # mean requests per second
    duration: float  # seconds
    seed: int = 0
    # periodic pattern:
    period: float = 60.0
    amplitude: float = 0.8  # fraction of rate swung by the sinusoid
    # bursty pattern:
    burst_factor: float = 5.0  # rate multiplier during a burst
    burst_fraction: float = 0.2  # fraction of time spent bursting
    mean_burst_len: float = 1.0  # seconds

    def __post_init__(self) -> None:
        if self.pattern not in PATTERNS:
            raise ConfigError(
                f"unknown pattern {self.pattern!r}; choose from {PATTERNS}"
            )
        if self.rate <= 0 or self.duration <= 0:
            raise ConfigError("rate and duration must be positive")
        if not 0 <= self.amplitude <= 1:
            raise ConfigError("amplitude must be in [0, 1]")
        if not 0 < self.burst_fraction < 1:
            raise ConfigError("burst_fraction must be in (0, 1)")


def _poisson_arrivals(rng: np.random.Generator, rate: float,
                      duration: float) -> np.ndarray:
    count = rng.poisson(rate * duration)
    return np.sort(rng.uniform(0.0, duration, size=count))


def _periodic_arrivals(rng: np.random.Generator, cfg: TraceConfig) -> np.ndarray:
    peak = cfg.rate * (1 + cfg.amplitude)
    candidates = _poisson_arrivals(rng, peak, cfg.duration)
    phase = 2 * np.pi * candidates / cfg.period
    instantaneous = cfg.rate * (1 + cfg.amplitude * np.sin(phase))
    keep = rng.uniform(0.0, peak, size=candidates.size) < instantaneous
    return candidates[keep]


def _bursty_arrivals(rng: np.random.Generator, cfg: TraceConfig) -> np.ndarray:
    # Choose on/off rates so the long-run mean equals cfg.rate.  A floor
    # keeps the off phase trickling (and short traces non-empty): if the
    # requested burst_factor would starve the off phase, rebalance.
    off_weight = 1 - cfg.burst_fraction
    on_rate = cfg.rate * cfg.burst_factor
    off_rate = (cfg.rate - cfg.burst_fraction * on_rate) / off_weight
    floor = 0.1 * cfg.rate
    if off_rate < floor:
        off_rate = floor
        on_rate = (cfg.rate - off_weight * off_rate) / cfg.burst_fraction
    mean_off_len = cfg.mean_burst_len * off_weight / cfg.burst_fraction
    arrivals: list[float] = []
    t = 0.0
    bursting = rng.uniform() < cfg.burst_fraction
    while t < cfg.duration:
        span = rng.exponential(
            cfg.mean_burst_len if bursting else mean_off_len
        )
        span = min(span, cfg.duration - t)
        rate = on_rate if bursting else off_rate
        if rate > 0 and span > 0:
            arrivals.extend(t + _poisson_arrivals(rng, rate, span))
        t += span
        bursting = not bursting
    return np.sort(np.asarray(arrivals))


def generate_arrivals(cfg: TraceConfig) -> np.ndarray:
    """Arrival times for *cfg*, sorted, deterministic per seed."""
    rng = np.random.default_rng(cfg.seed)
    if cfg.pattern == "sporadic":
        return _poisson_arrivals(rng, cfg.rate, cfg.duration)
    if cfg.pattern == "periodic":
        return _periodic_arrivals(rng, cfg)
    return _bursty_arrivals(rng, cfg)


# -- streaming generation ------------------------------------------------------

def _iter_poisson(rng: np.random.Generator, rate: float, start: float,
                  end: float) -> Iterator[float]:
    """Homogeneous Poisson arrivals in [start, end) via exponential gaps."""
    if rate <= 0:
        return
    t = start + float(rng.exponential(1.0 / rate))
    while t < end:
        yield t
        t += float(rng.exponential(1.0 / rate))


def _iter_periodic(rng: np.random.Generator, cfg: TraceConfig) -> Iterator[float]:
    """Sinusoid-modulated Poisson by thinning a peak-rate stream."""
    peak = cfg.rate * (1 + cfg.amplitude)
    for t in _iter_poisson(rng, peak, 0.0, cfg.duration):
        instantaneous = cfg.rate * (
            1 + cfg.amplitude * np.sin(2 * np.pi * t / cfg.period)
        )
        if rng.uniform(0.0, peak) < instantaneous:
            yield t


def _iter_bursty(rng: np.random.Generator, cfg: TraceConfig) -> Iterator[float]:
    """On/off modulated Poisson, one phase at a time (same rate balance
    as :func:`_bursty_arrivals`)."""
    off_weight = 1 - cfg.burst_fraction
    on_rate = cfg.rate * cfg.burst_factor
    off_rate = (cfg.rate - cfg.burst_fraction * on_rate) / off_weight
    floor = 0.1 * cfg.rate
    if off_rate < floor:
        off_rate = floor
        on_rate = (cfg.rate - off_weight * off_rate) / cfg.burst_fraction
    mean_off_len = cfg.mean_burst_len * off_weight / cfg.burst_fraction
    t = 0.0
    bursting = rng.uniform() < cfg.burst_fraction
    while t < cfg.duration:
        span = rng.exponential(
            cfg.mean_burst_len if bursting else mean_off_len
        )
        span = min(span, cfg.duration - t)
        rate = on_rate if bursting else off_rate
        if rate > 0 and span > 0:
            yield from _iter_poisson(rng, rate, t, t + span)
        t += span
        bursting = not bursting


def iter_arrivals(cfg: TraceConfig) -> Iterator[float]:
    """Yield sorted arrival times one at a time in O(1) memory.

    Deterministic per seed, like :func:`generate_arrivals`, but drawn
    incrementally (exponential inter-arrival gaps instead of
    count-then-sort), so the stream's samples differ from the
    materialized array while following the identical arrival process.
    Use this for trace runs too large to hold an arrival array.
    """
    rng = np.random.default_rng(cfg.seed)
    if cfg.pattern == "sporadic":
        yield from _iter_poisson(rng, cfg.rate, 0.0, cfg.duration)
    elif cfg.pattern == "periodic":
        yield from _iter_periodic(rng, cfg)
    else:
        yield from _iter_bursty(rng, cfg)


@dataclass(frozen=True)
class ArrivalStream:
    """A generator-backed trace: no materialized arrival array.

    Duck-compatible with :class:`Trace` where replay only needs
    iteration plus ``config`` (``ServerlessPlatform.run_trace`` and
    ``run_trace_streaming`` both qualify).  ``limit`` caps the number
    of arrivals yielded, which is how the end-to-end benchmarks pin an
    exact request count.  Iterating twice restarts the same
    deterministic stream.
    """

    config: TraceConfig
    limit: Optional[int] = None

    def __iter__(self) -> Iterator[float]:
        import itertools

        arrivals = iter_arrivals(self.config)
        if self.limit is None:
            return arrivals
        return itertools.islice(arrivals, self.limit)

    @property
    def mean_rate(self) -> float:
        return self.config.rate


def stream_trace(pattern: str, rate: float, duration: float, seed: int = 0,
                 limit: Optional[int] = None, **kwargs) -> ArrivalStream:
    """Streaming counterpart of :func:`make_trace`."""
    return ArrivalStream(
        config=TraceConfig(
            pattern=pattern, rate=rate, duration=duration, seed=seed, **kwargs
        ),
        limit=limit,
    )


@dataclass
class Trace:
    """A materialized trace: sorted arrival times plus its config."""

    config: TraceConfig
    arrivals: np.ndarray = field(default_factory=lambda: np.array([]))

    @classmethod
    def generate(cls, config: TraceConfig) -> "Trace":
        arrivals = generate_arrivals(config)
        # An unlucky seed can land entirely in an off phase; retry with
        # derived seeds so callers always get a usable trace when one is
        # statistically expected.
        retry = 0
        while arrivals.size == 0 and config.rate * config.duration >= 1 and retry < 5:
            retry += 1
            bumped = TraceConfig(
                pattern=config.pattern,
                rate=config.rate,
                duration=config.duration,
                seed=config.seed + 1000 * retry,
                period=config.period,
                amplitude=config.amplitude,
                burst_factor=config.burst_factor,
                burst_fraction=config.burst_fraction,
                mean_burst_len=config.mean_burst_len,
            )
            arrivals = generate_arrivals(bumped)
        return cls(config=config, arrivals=arrivals)

    def __len__(self) -> int:
        return len(self.arrivals)

    def __iter__(self) -> Iterator[float]:
        return iter(self.arrivals.tolist())

    def scaled(self, factor: float) -> "Trace":
        """Time-compress (factor > 1 speeds up) keeping the same count."""
        if factor <= 0:
            raise ConfigError("scale factor must be positive")
        return Trace(config=self.config, arrivals=self.arrivals / factor)

    @property
    def mean_rate(self) -> float:
        if self.config.duration == 0:
            return 0.0
        return len(self.arrivals) / self.config.duration

    def interarrival_p99(self) -> float:
        if len(self.arrivals) < 2:
            return float("inf")
        gaps = np.diff(self.arrivals)
        return float(np.percentile(gaps, 99))


def save_trace(trace: Trace, path: str) -> None:
    """Persist a trace (config + arrivals) as JSON for exact replay."""
    import json

    document = {
        "config": {
            "pattern": trace.config.pattern,
            "rate": trace.config.rate,
            "duration": trace.config.duration,
            "seed": trace.config.seed,
            "period": trace.config.period,
            "amplitude": trace.config.amplitude,
            "burst_factor": trace.config.burst_factor,
            "burst_fraction": trace.config.burst_fraction,
            "mean_burst_len": trace.config.mean_burst_len,
        },
        "arrivals": trace.arrivals.tolist(),
    }
    with open(path, "w") as handle:
        json.dump(document, handle)


def load_trace(path: str) -> Trace:
    """Load a trace previously written by :func:`save_trace`."""
    import json

    with open(path) as handle:
        document = json.load(handle)
    config = TraceConfig(**document["config"])
    return Trace(config=config, arrivals=np.asarray(document["arrivals"]))


def make_trace(pattern: str, rate: float, duration: float, seed: int = 0,
               **kwargs) -> Trace:
    """Convenience constructor for the three evaluation patterns."""
    return Trace.generate(
        TraceConfig(
            pattern=pattern, rate=rate, duration=duration, seed=seed, **kwargs
        )
    )
