"""Synthetic Azure-Functions-style request traces."""

from repro.traces.azure import (
    PATTERNS,
    Trace,
    TraceConfig,
    generate_arrivals,
    load_trace,
    make_trace,
    save_trace,
)

__all__ = [
    "PATTERNS",
    "Trace",
    "TraceConfig",
    "generate_arrivals",
    "load_trace",
    "make_trace",
    "save_trace",
]
