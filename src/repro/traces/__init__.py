"""Synthetic Azure-Functions-style request traces."""

from repro.traces.azure import (
    PATTERNS,
    ArrivalStream,
    Trace,
    TraceConfig,
    generate_arrivals,
    iter_arrivals,
    load_trace,
    make_trace,
    save_trace,
    stream_trace,
)

__all__ = [
    "PATTERNS",
    "ArrivalStream",
    "Trace",
    "TraceConfig",
    "generate_arrivals",
    "iter_arrivals",
    "load_trace",
    "make_trace",
    "save_trace",
    "stream_trace",
]
