"""Path construction over node and cluster topologies.

These helpers translate topology facts into :class:`repro.net.Path`
objects the transfer engine can execute.  Routing *policy* (which of the
possible paths to use) lives in :mod:`repro.routing`; this module only
enumerates what the hardware permits.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.common.errors import RoutingError
from repro.net.links import Link
from repro.net.transfer import Path
from repro.topology.cluster import ClusterTopology
from repro.topology.devices import FABRIC_ID, Gpu, Nic
from repro.topology.node import NodeTopology


def _links_to_path(links: list[Link]) -> Path:
    return Path(tuple(links))


# -- intra-node NVLink paths -------------------------------------------------

def nvlink_direct_path(node: NodeTopology, src: Gpu, dst: Gpu) -> Optional[Path]:
    """The direct NVLink path between two GPUs, or ``None``.

    On NVSwitch nodes this is the two-hop hub route; on mesh nodes it is
    the single direct link when one exists.
    """
    if src.device_id == dst.device_id:
        raise RoutingError("no path needed between a GPU and itself")
    if node.has_nvswitch:
        return _links_to_path(
            [
                node.link(src.device_id, node.nvswitch_id),
                node.link(node.nvswitch_id, dst.device_id),
            ]
        )
    if node.nvlink_capacity(src.index, dst.index) > 0:
        return _links_to_path([node.link(src.device_id, dst.device_id)])
    return None


def nvlink_graph(node: NodeTopology) -> "nx.DiGraph":
    """Directed NVLink connectivity graph over GPU indexes (mesh nodes)."""
    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(node.gpus)))
    for a in range(len(node.gpus)):
        for b in node.nvlink_neighbors(a):
            graph.add_edge(a, b, capacity=node.nvlink_capacity(a, b))
    return graph


def nvlink_simple_paths(
    node: NodeTopology,
    src: Gpu,
    dst: Gpu,
    max_hops: int = 3,
    graph: Optional["nx.DiGraph"] = None,
) -> list[Path]:
    """All loop-free NVLink paths between two GPUs, shortest first.

    On NVSwitch nodes the hub route is the only sensible path.  On mesh
    nodes this enumerates simple paths up to *max_hops* GPU-to-GPU hops;
    ties are broken by higher bottleneck capacity, then lexicographic
    order, keeping results deterministic.  Pass a prebuilt *graph*
    (from :func:`nvlink_graph`) to skip rebuilding it per call; the
    route book does this when warming whole pair tables.
    """
    if node.has_nvswitch:
        direct = nvlink_direct_path(node, src, dst)
        return [direct] if direct is not None else []
    if graph is None:
        graph = nvlink_graph(node)
    found = []
    for index_path in nx.all_simple_paths(
        graph, src.index, dst.index, cutoff=max_hops
    ):
        links = [
            node.link(
                node.gpu(a).device_id,
                node.gpu(b).device_id,
            )
            for a, b in zip(index_path, index_path[1:])
        ]
        found.append((index_path, _links_to_path(links)))
    found.sort(
        key=lambda entry: (
            len(entry[0]),
            -entry[1].nominal_bandwidth,
            entry[0],
        )
    )
    return [path for _indexes, path in found]


# -- PCIe paths ------------------------------------------------------------

def gpu_to_host_path(node: NodeTopology, gpu: Gpu) -> Path:
    """``gpu -> pcie switch -> host`` over the shared switch uplink."""
    switch = node.switch_of(gpu)
    return _links_to_path(
        [
            node.link(gpu.device_id, switch),
            node.link(switch, node.host.device_id),
        ]
    )


def host_to_gpu_path(node: NodeTopology, gpu: Gpu) -> Path:
    """``host -> pcie switch -> gpu``."""
    switch = node.switch_of(gpu)
    return _links_to_path(
        [
            node.link(node.host.device_id, switch),
            node.link(switch, gpu.device_id),
        ]
    )


def gpu_p2p_pcie_path(node: NodeTopology, src: Gpu, dst: Gpu) -> Path:
    """GPU-to-GPU peer transfer over PCIe (no NVLink involved).

    Same-switch peers route through the switch only; cross-switch peers
    traverse both shared host uplinks through the root complex.
    """
    if src.device_id == dst.device_id:
        raise RoutingError("no path needed between a GPU and itself")
    src_switch, dst_switch = node.switch_of(src), node.switch_of(dst)
    if src_switch == dst_switch:
        return _links_to_path(
            [
                node.link(src.device_id, src_switch),
                node.link(src_switch, dst.device_id),
            ]
        )
    return _links_to_path(
        [
            node.link(src.device_id, src_switch),
            node.link(src_switch, node.host.device_id),
            node.link(node.host.device_id, dst_switch),
            node.link(dst_switch, dst.device_id),
        ]
    )


# -- NIC / cross-node paths ---------------------------------------------------

def gpu_to_nic_links(node: NodeTopology, gpu: Gpu, nic: Nic) -> list[Link]:
    """Links from a GPU out to a NIC (same switch, or via the root)."""
    gpu_switch = node.switch_of(gpu)
    if nic.device_id in node.nics_of_switch(gpu_switch):
        return [
            node.link(gpu.device_id, gpu_switch),
            node.link(gpu_switch, nic.device_id),
        ]
    nic_switch = _switch_of_nic(node, nic)
    return [
        node.link(gpu.device_id, gpu_switch),
        node.link(gpu_switch, node.host.device_id),
        node.link(node.host.device_id, nic_switch),
        node.link(nic_switch, nic.device_id),
    ]


def nic_to_gpu_links(node: NodeTopology, nic: Nic, gpu: Gpu) -> list[Link]:
    """Links from a NIC in to a GPU (reverse of :func:`gpu_to_nic_links`)."""
    gpu_switch = node.switch_of(gpu)
    if nic.device_id in node.nics_of_switch(gpu_switch):
        return [
            node.link(nic.device_id, gpu_switch),
            node.link(gpu_switch, gpu.device_id),
        ]
    nic_switch = _switch_of_nic(node, nic)
    return [
        node.link(nic.device_id, nic_switch),
        node.link(nic_switch, node.host.device_id),
        node.link(node.host.device_id, gpu_switch),
        node.link(gpu_switch, gpu.device_id),
    ]


def _switch_of_nic(node: NodeTopology, nic: Nic) -> str:
    for switch in node.switches:
        if nic.device_id in node.nics_of_switch(switch.device_id):
            return switch.device_id
    raise RoutingError(f"NIC {nic.device_id} is not attached to any switch")


def cross_node_gdr_path(
    cluster: ClusterTopology,
    src: Gpu,
    dst: Gpu,
    src_nic: Optional[Nic] = None,
    dst_nic: Optional[Nic] = None,
) -> Path:
    """GPUDirect-RDMA path: src GPU -> src NIC -> fabric -> dst NIC -> dst GPU."""
    if cluster.same_node(src.device_id, dst.device_id):
        raise RoutingError("cross-node path requested for same-node GPUs")
    src_node = cluster.node_of_device(src.device_id)
    dst_node = cluster.node_of_device(dst.device_id)
    src_nic = src_nic if src_nic is not None else src_node.nic_for_gpu(src)
    dst_nic = dst_nic if dst_nic is not None else dst_node.nic_for_gpu(dst)
    links = (
        gpu_to_nic_links(src_node, src, src_nic)
        + [
            cluster.link(src_nic.device_id, FABRIC_ID),
            cluster.link(FABRIC_ID, dst_nic.device_id),
        ]
        + nic_to_gpu_links(dst_node, dst_nic, dst)
    )
    return _links_to_path(links)


def host_to_host_path(
    cluster: ClusterTopology, src_node: NodeTopology, dst_node: NodeTopology
) -> Path:
    """Host-memory to host-memory path over the first NIC of each node."""
    if src_node.node_id == dst_node.node_id:
        raise RoutingError("host-to-host path requested within one node")
    src_nic, dst_nic = src_node.nics[0], dst_node.nics[0]
    src_switch = _switch_of_nic(src_node, src_nic)
    dst_switch = _switch_of_nic(dst_node, dst_nic)
    links = [
        src_node.link(src_node.host.device_id, src_switch),
        src_node.link(src_switch, src_nic.device_id),
        cluster.link(src_nic.device_id, FABRIC_ID),
        cluster.link(FABRIC_ID, dst_nic.device_id),
        dst_node.link(dst_nic.device_id, dst_switch),
        dst_node.link(dst_switch, dst_node.host.device_id),
    ]
    return _links_to_path(links)
