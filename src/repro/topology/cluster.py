"""Multi-node cluster topology.

Nodes are joined by a non-blocking switch fabric: every NIC has a duplex
link to the ``fabric`` device at its line rate.  Cross-node paths are
``gpu -> pcie switch -> nic -> fabric -> nic -> pcie switch -> gpu``,
which models GPUDirect RDMA (data never touches host memory).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.common.errors import TopologyError
from repro.common.units import US
from repro.net.links import Link, LinkKind
from repro.topology.devices import FABRIC_ID, Gpu, Nic
from repro.topology.node import NodeSpec, NodeTopology, node_spec

FABRIC_LATENCY = 10 * US


class ClusterTopology:
    """A set of nodes plus the inter-node fabric."""

    def __init__(self, nodes: list[NodeTopology]) -> None:
        if not nodes:
            raise TopologyError("cluster needs at least one node")
        self.nodes = nodes
        self._node_by_id = {node.node_id: node for node in nodes}
        if len(self._node_by_id) != len(nodes):
            raise TopologyError("duplicate node ids in cluster")
        self._fabric_links: dict[tuple[str, str], Link] = {}
        for node in nodes:
            for nic in node.nics:
                self._add_fabric_duplex(nic)

    def _add_fabric_duplex(self, nic: Nic) -> None:
        for src, dst in ((nic.device_id, FABRIC_ID), (FABRIC_ID, nic.device_id)):
            self._fabric_links[(src, dst)] = Link(
                link_id=f"{src}>{dst}",
                src=src,
                dst=dst,
                capacity=nic.bandwidth,
                kind=LinkKind.FABRIC,
                latency=FABRIC_LATENCY,
            )

    # -- lookups -----------------------------------------------------------
    def node(self, node_id: str) -> NodeTopology:
        try:
            return self._node_by_id[node_id]
        except KeyError:
            raise TopologyError(f"unknown node {node_id}") from None

    def node_of_device(self, device_id: str) -> NodeTopology:
        """The node owning *device_id* (GPUs, host, NICs, switches)."""
        prefix = device_id.split(".", 1)[0]
        return self.node(prefix)

    def gpu(self, device_id: str) -> Gpu:
        node = self.node_of_device(device_id)
        for gpu in node.gpus:
            if gpu.device_id == device_id:
                return gpu
        raise TopologyError(f"unknown GPU {device_id}")

    def all_gpus(self) -> list[Gpu]:
        return [gpu for node in self.nodes for gpu in node.gpus]

    def link(self, src: str, dst: str) -> Link:
        """Directed link lookup spanning node-internal and fabric links."""
        key = (src, dst)
        if key in self._fabric_links:
            return self._fabric_links[key]
        if src == FABRIC_ID or dst == FABRIC_ID:
            raise TopologyError(f"no fabric link {src} -> {dst}")
        node = self.node_of_device(src)
        return node.link(src, dst)

    def all_links(self) -> Iterable[Link]:
        for node in self.nodes:
            yield from node.all_links()
        yield from self._fabric_links.values()

    def same_node(self, a: str, b: str) -> bool:
        return a.split(".", 1)[0] == b.split(".", 1)[0]

    def __repr__(self) -> str:
        kinds = ",".join(node.spec.name for node in self.nodes)
        return f"<ClusterTopology {len(self.nodes)} nodes [{kinds}]>"


def make_cluster(
    preset: str = "dgx-v100",
    num_nodes: int = 1,
    spec: Optional[NodeSpec] = None,
) -> ClusterTopology:
    """Build a homogeneous cluster from a preset name or explicit spec."""
    if num_nodes < 1:
        raise TopologyError(f"num_nodes must be >= 1, got {num_nodes}")
    chosen = spec if spec is not None else node_spec(preset)
    nodes = [NodeTopology(chosen, index) for index in range(num_nodes)]
    return ClusterTopology(nodes)
