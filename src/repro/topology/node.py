"""Single-server GPU topologies and the four evaluation presets.

The paper evaluates on four server types; each is reproduced here with
its published interconnect layout:

- **DGX-V100** (p3.16xlarge): 8 V100s in the DGX-1 hybrid cube-mesh.
  NVLink2 at 24 GB/s per link; 8 GPU pairs have double links (48 GB/s),
  8 pairs single links, and 12 of the 28 pairs have no direct NVLink —
  the 28.6% / 42.9% asymmetry statistics of §3.2.2 hold exactly.
- **DGX-A100** (p4d.24xlarge): 8 A100s on an NVSwitch (uniform
  300 GB/s per-GPU port), 8×200 Gbps NICs.
- **H800 node**: 8 H800s on an NVSwitch at 200 GB/s, used by the LLM
  evaluation (§6.4).
- **A10 node**: 4 A10s with no NVLink at all (§6.5).

GPUs sharing a PCIe switch share a single uplink to host memory, which
is what makes naive route-GPU selection collapse (§3.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.common.errors import TopologyError
from repro.common.units import GB, GBIT_PER_S, US
from repro.net.links import Link, LinkKind
from repro.topology.devices import (
    Gpu,
    HostMemory,
    Nic,
    PcieSwitch,
    gpu_id,
    host_id,
    nic_id,
    switch_id,
)

NVLINK_LATENCY = 2 * US
PCIE_LATENCY = 2 * US
NIC_LATENCY = 5 * US

# Effective per-direction bandwidths (published specs, derated to
# realistically achievable transfer rates).
V100_NVLINK_BW = 24 * GB  # per link; double-link pairs reach 48 GB/s
A100_NVSWITCH_BW = 300 * GB
H800_NVSWITCH_BW = 200 * GB
PCIE3_BW = 12 * GB
PCIE4_BW = 24 * GB
PCIE5_BW = 48 * GB

# The DGX-1V hybrid cube-mesh: (gpu_a, gpu_b) -> number of NVLink lanes.
DGX1V_NVLINK_LANES: dict[tuple[int, int], int] = {
    (0, 1): 1, (0, 2): 1, (0, 3): 2, (0, 4): 2,
    (1, 2): 2, (1, 3): 1, (1, 5): 2,
    (2, 3): 1, (2, 6): 2,
    (3, 7): 2,
    (4, 5): 1, (4, 6): 1, (4, 7): 2,
    (5, 6): 2, (5, 7): 1,
    (6, 7): 1,
}


@dataclass(frozen=True)
class NodeSpec:
    """Declarative description of one server type."""

    name: str
    num_gpus: int
    gpu_memory: float
    pcie_bandwidth: float
    switch_groups: tuple[tuple[int, ...], ...]
    nics_per_switch: int
    nic_bandwidth: float
    host_memory: float = 256 * GB
    # Either explicit NVLink lanes (asymmetric mesh) ...
    nvlink_lanes: Optional[dict[tuple[int, int], int]] = None
    nvlink_lane_bandwidth: float = V100_NVLINK_BW
    # ... or a uniform NVSwitch port bandwidth (symmetric).
    nvswitch_bandwidth: Optional[float] = None


class NodeTopology:
    """A single server's devices plus all directed links between them."""

    def __init__(self, spec: NodeSpec, node_index: int) -> None:
        self.spec = spec
        self.node_index = node_index
        self.node_id = f"n{node_index}"
        self.gpus: list[Gpu] = [
            Gpu(gpu_id(node_index, i), self.node_id, i, spec.gpu_memory)
            for i in range(spec.num_gpus)
        ]
        self.host = HostMemory(
            host_id(node_index), self.node_id, spec.host_memory
        )
        self.switches: list[PcieSwitch] = []
        self.nics: list[Nic] = []
        self._links: dict[tuple[str, str], Link] = {}
        self._gpu_switch: dict[str, str] = {}
        self._switch_nics: dict[str, list[str]] = {}
        self._nvlink_capacity: dict[tuple[int, int], float] = {}
        self.nvswitch_id: Optional[str] = None
        self._build(spec, node_index)

    # -- construction ---------------------------------------------------
    def _build(self, spec: NodeSpec, node: int) -> None:
        seen = set()
        for group in spec.switch_groups:
            seen.update(group)
        if seen != set(range(spec.num_gpus)):
            raise TopologyError(
                f"{spec.name}: switch groups must cover every GPU exactly"
            )

        for sw_index, group in enumerate(spec.switch_groups):
            switch = PcieSwitch(switch_id(node, sw_index), self.node_id, sw_index)
            self.switches.append(switch)
            self._switch_nics[switch.device_id] = []
            # GPU <-> switch, per GPU, full PCIe bandwidth each way.
            for g in group:
                gpu = self.gpus[g]
                self._gpu_switch[gpu.device_id] = switch.device_id
                self._add_duplex(
                    gpu.device_id,
                    switch.device_id,
                    spec.pcie_bandwidth,
                    LinkKind.PCIE,
                    PCIE_LATENCY,
                )
            # Switch <-> host: ONE shared uplink per switch.
            self._add_duplex(
                switch.device_id,
                self.host.device_id,
                spec.pcie_bandwidth,
                LinkKind.PCIE,
                PCIE_LATENCY,
            )
            # NICs hang off the switch at NIC line rate.
            for k in range(spec.nics_per_switch):
                nic_index = sw_index * spec.nics_per_switch + k
                nic = Nic(
                    nic_id(node, nic_index),
                    self.node_id,
                    nic_index,
                    spec.nic_bandwidth,
                )
                self.nics.append(nic)
                self._switch_nics[switch.device_id].append(nic.device_id)
                self._add_duplex(
                    switch.device_id,
                    nic.device_id,
                    spec.nic_bandwidth,
                    LinkKind.NIC,
                    NIC_LATENCY,
                )

        if spec.nvlink_lanes is not None:
            for (a, b), lanes in spec.nvlink_lanes.items():
                capacity = lanes * spec.nvlink_lane_bandwidth
                self._nvlink_capacity[(a, b)] = capacity
                self._nvlink_capacity[(b, a)] = capacity
                self._add_duplex(
                    self.gpus[a].device_id,
                    self.gpus[b].device_id,
                    capacity,
                    LinkKind.NVLINK,
                    NVLINK_LATENCY,
                )
        elif spec.nvswitch_bandwidth is not None:
            self.nvswitch_id = f"{self.node_id}.nvsw"
            for gpu in self.gpus:
                self._add_duplex(
                    gpu.device_id,
                    self.nvswitch_id,
                    spec.nvswitch_bandwidth,
                    LinkKind.NVLINK,
                    NVLINK_LATENCY,
                )
            for a in range(spec.num_gpus):
                for b in range(spec.num_gpus):
                    if a != b:
                        self._nvlink_capacity[(a, b)] = spec.nvswitch_bandwidth

    def _add_duplex(
        self, a: str, b: str, capacity: float, kind: LinkKind, latency: float
    ) -> None:
        for src, dst in ((a, b), (b, a)):
            key = (src, dst)
            if key in self._links:
                raise TopologyError(f"duplicate link {src}->{dst}")
            self._links[key] = Link(
                link_id=f"{src}>{dst}",
                src=src,
                dst=dst,
                capacity=capacity,
                kind=kind,
                latency=latency,
            )

    # -- queries -----------------------------------------------------------
    @property
    def has_nvswitch(self) -> bool:
        return self.nvswitch_id is not None

    @property
    def has_nvlink(self) -> bool:
        return bool(self._nvlink_capacity)

    def link(self, src: str, dst: str) -> Link:
        """The directed link from *src* to *dst*."""
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise TopologyError(f"no link {src} -> {dst}") from None

    def has_link(self, src: str, dst: str) -> bool:
        return (src, dst) in self._links

    def all_links(self) -> Iterable[Link]:
        return self._links.values()

    def gpu(self, index: int) -> Gpu:
        try:
            return self.gpus[index]
        except IndexError:
            raise TopologyError(
                f"{self.node_id}: no GPU index {index}"
            ) from None

    def nvlink_capacity(self, a: int, b: int) -> float:
        """Direct NVLink capacity between GPU indexes, 0 if absent."""
        return self._nvlink_capacity.get((a, b), 0.0)

    def nvlink_neighbors(self, index: int) -> list[int]:
        """GPU indexes directly NVLink-connected to *index*."""
        return sorted(
            b for (a, b) in self._nvlink_capacity if a == index
        )

    def switch_of(self, gpu: Gpu) -> str:
        """The PCIe switch a GPU hangs off."""
        return self._gpu_switch[gpu.device_id]

    def gpus_on_switch(self, switch_device_id: str) -> list[Gpu]:
        return [
            gpu
            for gpu in self.gpus
            if self._gpu_switch[gpu.device_id] == switch_device_id
        ]

    def nics_of_switch(self, switch_device_id: str) -> list[str]:
        return list(self._switch_nics.get(switch_device_id, []))

    def nic_for_gpu(self, gpu: Gpu) -> Nic:
        """The NIC nearest to *gpu* (same PCIe switch, else any)."""
        nic_ids = self.nics_of_switch(self.switch_of(gpu))
        if nic_ids:
            return self._nic_by_id(nic_ids[0])
        if not self.nics:
            raise TopologyError(f"{self.node_id} has no NICs")
        return self.nics[0]

    def _nic_by_id(self, device_id: str) -> Nic:
        for nic in self.nics:
            if nic.device_id == device_id:
                return nic
        raise TopologyError(f"unknown NIC {device_id}")

    def shares_pcie_switch(self, a: Gpu, b: Gpu) -> bool:
        return self.switch_of(a) == self.switch_of(b)

    def __repr__(self) -> str:
        return (
            f"<NodeTopology {self.node_id} {self.spec.name} "
            f"{len(self.gpus)} GPUs>"
        )


# -- presets ----------------------------------------------------------------

def dgx_v100_spec() -> NodeSpec:
    """DGX-V100 (p3.16xlarge): asymmetric hybrid cube-mesh."""
    return NodeSpec(
        name="dgx-v100",
        num_gpus=8,
        gpu_memory=16 * GB,
        pcie_bandwidth=PCIE3_BW,
        switch_groups=((0, 1), (2, 3), (4, 5), (6, 7)),
        nics_per_switch=1,
        nic_bandwidth=100 * GBIT_PER_S,
        host_memory=244 * GB,
        nvlink_lanes=dict(DGX1V_NVLINK_LANES),
        nvlink_lane_bandwidth=V100_NVLINK_BW,
    )


def dgx_a100_spec() -> NodeSpec:
    """DGX-A100 (p4d.24xlarge): NVSwitch, 8x200Gbps NICs."""
    return NodeSpec(
        name="dgx-a100",
        num_gpus=8,
        gpu_memory=40 * GB,
        pcie_bandwidth=PCIE4_BW,
        switch_groups=((0, 1), (2, 3), (4, 5), (6, 7)),
        nics_per_switch=2,
        nic_bandwidth=200 * GBIT_PER_S,
        host_memory=1152 * GB,
        nvswitch_bandwidth=A100_NVSWITCH_BW,
    )


def h800_spec() -> NodeSpec:
    """8xH800 node used in the LLM evaluation (§6.4)."""
    return NodeSpec(
        name="h800",
        num_gpus=8,
        gpu_memory=80 * GB,
        pcie_bandwidth=PCIE5_BW,
        switch_groups=((0, 1), (2, 3), (4, 5), (6, 7)),
        nics_per_switch=2,
        nic_bandwidth=200 * GBIT_PER_S,
        host_memory=1024 * GB,
        nvswitch_bandwidth=H800_NVSWITCH_BW,
    )


def a10_spec() -> NodeSpec:
    """4xA10 server without NVLink (§6.5)."""
    return NodeSpec(
        name="a10",
        num_gpus=4,
        gpu_memory=24 * GB,
        pcie_bandwidth=PCIE4_BW,
        switch_groups=((0,), (1,), (2,), (3,)),
        nics_per_switch=1,
        nic_bandwidth=100 * GBIT_PER_S,
        host_memory=128 * GB,
    )


_SPECS = {
    "dgx-v100": dgx_v100_spec,
    "dgx-a100": dgx_a100_spec,
    "h800": h800_spec,
    "a10": a10_spec,
}


def node_spec(name: str) -> NodeSpec:
    """Look up a preset spec by name."""
    try:
        return _SPECS[name]()
    except KeyError:
        raise TopologyError(
            f"unknown node preset {name!r}; choose from {sorted(_SPECS)}"
        ) from None
