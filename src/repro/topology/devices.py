"""Device model: GPUs, host memory, NICs, PCIe switches.

Device ids are globally unique strings with a fixed scheme:

- GPU:          ``n{node}.g{index}``
- Host memory:  ``n{node}.host``
- PCIe switch:  ``n{node}.sw{index}``
- NIC:          ``n{node}.nic{index}``
- Fabric:       ``fabric`` (the cluster-wide switch)
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Gpu:
    """A physical GPU device."""

    device_id: str
    node_id: str
    index: int
    memory_capacity: float  # bytes

    def __str__(self) -> str:
        return self.device_id


@dataclass(frozen=True)
class HostMemory:
    """A node's host DRAM (also the PCIe root complex in path terms)."""

    device_id: str
    node_id: str
    capacity: float  # bytes


@dataclass(frozen=True)
class Nic:
    """A network interface card attached to a PCIe switch."""

    device_id: str
    node_id: str
    index: int
    bandwidth: float  # bytes per second, per direction


@dataclass(frozen=True)
class PcieSwitch:
    """A PCIe switch; GPUs sharing one also share its host uplink."""

    device_id: str
    node_id: str
    index: int


def gpu_id(node: int, index: int) -> str:
    return f"n{node}.g{index}"


def host_id(node: int) -> str:
    return f"n{node}.host"


def switch_id(node: int, index: int) -> str:
    return f"n{node}.sw{index}"


def nic_id(node: int, index: int) -> str:
    return f"n{node}.nic{index}"


FABRIC_ID = "fabric"
