"""Precomputed candidate-path books over immutable topologies.

Topology objects never change after construction, yet every routing
decision used to re-enumerate candidate paths from scratch — rebuilding
a networkx graph and re-running a simple-paths DFS per transfer
(:func:`repro.topology.paths.nvlink_simple_paths`), or re-walking the
switch/NIC tables for PCIe and cross-node lanes.  A *route book* computes
each candidate table once per :class:`~repro.topology.node.NodeTopology`
/ :class:`~repro.topology.cluster.ClusterTopology` and interns the
resulting :class:`~repro.net.transfer.Path` objects, so repeated
decisions share one immutable path set.

Correctness contract: every book entry is produced by calling the exact
enumeration code in :mod:`repro.topology.paths` (once, on first access),
so results — including the deterministic ``(hops, -bottleneck, lex)``
ordering of NVLink candidates — are the same objects the per-decision
enumeration would have built.  The ``enumerate`` routing mode
(``REPRO_NET_ROUTING``) bypasses books entirely and is the differential
reference for that claim.

Books fill lazily by default; :meth:`NodeRouteBook.warm` /
:meth:`ClusterRouteBook.warm` precompute every table eagerly (the bench
suite's "cold vs warm" axis).  Higher layers (``repro.routing``) stash
their derived route tables in the open ``extras`` dict so their caches
share the book's lifetime without this module importing routing policy.
"""

from __future__ import annotations

import itertools
import weakref
from typing import Optional

from repro.net.transfer import Path
from repro.topology.cluster import ClusterTopology
from repro.topology.node import NodeTopology
from repro.topology.paths import (
    cross_node_gdr_path,
    gpu_p2p_pcie_path,
    gpu_to_host_path,
    host_to_gpu_path,
    host_to_host_path,
    nvlink_direct_path,
    nvlink_graph,
    nvlink_simple_paths,
)

__all__ = [
    "NodeRouteBook",
    "ClusterRouteBook",
    "route_book",
    "cluster_route_book",
]

# Default DFS depth used across the routing layer; warm() precomputes
# this cutoff (other cutoffs still fill lazily).
DEFAULT_MAX_HOPS = 3

_MISS = object()


class NodeRouteBook:
    """Interned candidate-path tables for one node topology."""

    __slots__ = (
        "node",
        "extras",
        "_graph",
        "_nvlink_paths",
        "_nvlink_direct",
        "_host_paths",
        "_p2p",
        "_out_capacity",
        "__weakref__",
    )

    def __init__(self, node: NodeTopology) -> None:
        self.node = node
        # Open key-value store for higher layers (repro.routing) to
        # memoize derived route tables with the book's lifetime.
        self.extras: dict = {}
        self._graph = None  # lazily built mesh NVLink DiGraph
        self._nvlink_paths: dict = {}  # (src_idx, dst_idx, max_hops) -> tuple[Path]
        self._nvlink_direct: dict = {}  # (src_idx, dst_idx) -> Optional[Path]
        self._host_paths: dict = {}  # (gpu_idx, direction) -> Path
        self._p2p: dict = {}  # (src_idx, dst_idx) -> Path
        self._out_capacity: dict = {}  # gpu_idx -> float

    # -- NVLink ---------------------------------------------------------
    def _mesh_graph(self):
        graph = self._graph
        if graph is None:
            graph = self._graph = nvlink_graph(self.node)
        return graph

    def nvlink_paths(
        self, src_idx: int, dst_idx: int, max_hops: int = DEFAULT_MAX_HOPS
    ) -> tuple[Path, ...]:
        """Loop-free NVLink candidates, same order as the enumeration."""
        key = (src_idx, dst_idx, max_hops)
        paths = self._nvlink_paths.get(key)
        if paths is None:
            node = self.node
            graph = None if node.has_nvswitch else self._mesh_graph()
            paths = tuple(
                nvlink_simple_paths(
                    node,
                    node.gpu(src_idx),
                    node.gpu(dst_idx),
                    max_hops=max_hops,
                    graph=graph,
                )
            )
            self._nvlink_paths[key] = paths
        return paths

    def nvlink_direct(self, src_idx: int, dst_idx: int) -> Optional[Path]:
        key = (src_idx, dst_idx)
        path = self._nvlink_direct.get(key, _MISS)
        if path is _MISS:
            node = self.node
            path = nvlink_direct_path(node, node.gpu(src_idx), node.gpu(dst_idx))
            self._nvlink_direct[key] = path
        return path

    def out_capacity(self, gpu_idx: int) -> float:
        """Total NVLink egress capacity of one GPU (static)."""
        cap = self._out_capacity.get(gpu_idx)
        if cap is None:
            node = self.node
            cap = sum(
                node.nvlink_capacity(gpu_idx, peer)
                for peer in node.nvlink_neighbors(gpu_idx)
            )
            self._out_capacity[gpu_idx] = cap
        return cap

    # -- PCIe -----------------------------------------------------------
    def gpu_to_host(self, gpu_idx: int) -> Path:
        key = (gpu_idx, "to_host")
        path = self._host_paths.get(key)
        if path is None:
            path = gpu_to_host_path(self.node, self.node.gpu(gpu_idx))
            self._host_paths[key] = path
        return path

    def host_to_gpu(self, gpu_idx: int) -> Path:
        key = (gpu_idx, "from_host")
        path = self._host_paths.get(key)
        if path is None:
            path = host_to_gpu_path(self.node, self.node.gpu(gpu_idx))
            self._host_paths[key] = path
        return path

    def gpu_p2p(self, src_idx: int, dst_idx: int) -> Path:
        key = (src_idx, dst_idx)
        path = self._p2p.get(key)
        if path is None:
            node = self.node
            path = gpu_p2p_pcie_path(node, node.gpu(src_idx), node.gpu(dst_idx))
            self._p2p[key] = path
        return path

    # -- eager fill -----------------------------------------------------
    def warm(self, max_hops: int = DEFAULT_MAX_HOPS) -> "NodeRouteBook":
        """Precompute every per-node table; returns self for chaining."""
        n = len(self.node.gpus)
        for idx in range(n):
            self.gpu_to_host(idx)
            self.host_to_gpu(idx)
            self.out_capacity(idx)
        for a, b in itertools.permutations(range(n), 2):
            self.nvlink_paths(a, b, max_hops)
            self.nvlink_direct(a, b)
            self.gpu_p2p(a, b)
        return self


class ClusterRouteBook:
    """Interned cross-node path tables plus per-node books."""

    __slots__ = ("cluster", "extras", "_node_books", "_gdr", "_h2h", "__weakref__")

    def __init__(self, cluster: ClusterTopology) -> None:
        self.cluster = cluster
        self.extras: dict = {}
        # Share the per-node singletons: intra-node decisions made via
        # route_book(node) and cross-node ones made here hit one book.
        self._node_books = {
            node.node_id: route_book(node) for node in cluster.nodes
        }
        self._gdr: dict = {}  # (src_dev, dst_dev) -> Path
        self._h2h: dict = {}  # (src_node, dst_node) -> Path

    def node_book(self, node_id: str) -> NodeRouteBook:
        return self._node_books[node_id]

    def gdr_path(self, src_dev: str, dst_dev: str) -> Path:
        """Default GPUDirect-RDMA path between two cross-node GPUs."""
        key = (src_dev, dst_dev)
        path = self._gdr.get(key)
        if path is None:
            cluster = self.cluster
            path = cross_node_gdr_path(
                cluster, cluster.gpu(src_dev), cluster.gpu(dst_dev)
            )
            self._gdr[key] = path
        return path

    def host_to_host(self, src_node_id: str, dst_node_id: str) -> Path:
        key = (src_node_id, dst_node_id)
        path = self._h2h.get(key)
        if path is None:
            cluster = self.cluster
            path = host_to_host_path(
                cluster, cluster.node(src_node_id), cluster.node(dst_node_id)
            )
            self._h2h[key] = path
        return path

    def warm(self, max_hops: int = DEFAULT_MAX_HOPS) -> "ClusterRouteBook":
        for book in self._node_books.values():
            book.warm(max_hops)
        nodes = self.cluster.nodes
        for a, b in itertools.permutations(nodes, 2):
            self.host_to_host(a.node_id, b.node_id)
            for src in a.gpus:
                for dst in b.gpus:
                    self.gdr_path(src.device_id, dst.device_id)
        return self


# One book per live topology object; books die with their topology.
_NODE_BOOKS: "weakref.WeakKeyDictionary[NodeTopology, NodeRouteBook]" = (
    weakref.WeakKeyDictionary()
)
_CLUSTER_BOOKS: "weakref.WeakKeyDictionary[ClusterTopology, ClusterRouteBook]" = (
    weakref.WeakKeyDictionary()
)


def route_book(node: NodeTopology) -> NodeRouteBook:
    """The (lazily filled) route book for *node*; one per topology."""
    book = _NODE_BOOKS.get(node)
    if book is None:
        book = NodeRouteBook(node)
        _NODE_BOOKS[node] = book
    return book


def cluster_route_book(cluster: ClusterTopology) -> ClusterRouteBook:
    """The route book for *cluster*; per-node books ride along."""
    book = _CLUSTER_BOOKS.get(cluster)
    if book is None:
        book = ClusterRouteBook(cluster)
        _CLUSTER_BOOKS[cluster] = book
    return book
