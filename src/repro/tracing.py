"""Request-level span tracing and ASCII Gantt rendering.

A :class:`SpanTracer` records (start, end) spans per request — stage
queueing, input fetches, execution, output publication — and renders a
request as an ASCII Gantt chart.  The tracer is a consumer of the
telemetry bus (:mod:`repro.telemetry`): the platform publishes
:class:`~repro.telemetry.events.StageSpan` events, and assigning
``platform.tracer = SpanTracer()`` subscribes the tracer to them.
Tracing is off by default and costs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigError
from repro.telemetry.bus import EventBus
from repro.telemetry.events import StageSpan

GANTT_WIDTH = 60

# Span kinds, in render order within one stage.
KIND_QUEUE = "queue"
KIND_GET = "get"
KIND_COLD = "cold-start"
KIND_EXEC = "exec"
KIND_PUT = "put"
KIND_EGRESS = "egress"
KINDS = (KIND_QUEUE, KIND_GET, KIND_COLD, KIND_EXEC, KIND_PUT,
         KIND_EGRESS)
_GLYPHS = {
    KIND_QUEUE: ".",
    KIND_GET: "<",
    KIND_COLD: "c",
    KIND_EXEC: "#",
    KIND_PUT: ">",
    KIND_EGRESS: "e",
}


@dataclass(frozen=True)
class Span:
    """One timed region of a request."""

    request_id: str
    stage: str
    kind: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(f"unknown span kind {self.kind!r}")
        if self.end < self.start:
            raise ConfigError("span ends before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start


class SpanTracer:
    """Collects spans, grouped per request."""

    def __init__(self) -> None:
        self._spans: dict[str, list[Span]] = {}
        self._bus: Optional[EventBus] = None

    # -- bus integration ------------------------------------------------------
    def attach(self, bus: EventBus) -> "SpanTracer":
        """Subscribe to :class:`StageSpan` events published on *bus*."""
        if self._bus is not None:
            self.detach()
        self._bus = bus
        bus.subscribe(StageSpan, self._on_stage_span)
        return self

    def detach(self) -> None:
        """Stop consuming from the currently attached bus (if any)."""
        if self._bus is not None:
            self._bus.unsubscribe(StageSpan, self._on_stage_span)
            self._bus = None

    def _on_stage_span(self, event: StageSpan) -> None:
        self.record(
            event.request_id, event.stage, event.kind,
            event.start, event.end,
        )

    def record(self, request_id: str, stage: str, kind: str,
               start: float, end: float) -> None:
        span = Span(request_id=request_id, stage=stage, kind=kind,
                    start=start, end=end)
        self._spans.setdefault(request_id, []).append(span)

    def spans(self, request_id: str) -> list[Span]:
        return sorted(
            self._spans.get(request_id, []),
            key=lambda s: (s.start, s.stage, KINDS.index(s.kind)),
        )

    def requests(self) -> list[str]:
        return sorted(self._spans)

    def total_by_kind(self, request_id: str) -> dict[str, float]:
        totals = {kind: 0.0 for kind in KINDS}
        for span in self._spans.get(request_id, []):
            totals[span.kind] += span.duration
        return totals

    # -- rendering -----------------------------------------------------------
    def gantt(self, request_id: str, width: int = GANTT_WIDTH) -> str:
        """ASCII Gantt chart of one request.

        One row per (stage, kind) span; glyphs: ``.`` queued, ``<``
        fetching inputs, ``c`` cold start, ``#`` executing, ``>``
        publishing output.
        """
        spans = self.spans(request_id)
        if not spans:
            return f"(no spans recorded for {request_id})"
        t0 = min(s.start for s in spans)
        t1 = max(s.end for s in spans)
        horizon = max(t1 - t0, 1e-9)
        scale = width / horizon
        label_width = max(
            len(f"{s.stage}[{s.kind}]") for s in spans
        )
        lines = [
            f"request {request_id}: {horizon * 1e3:.2f} ms "
            f"(. queue, < get, c cold, # exec, > put)"
        ]
        for span in spans:
            # Clamp into the chart: a span starting at the last column
            # must still render >= 1 glyph inside the bounds.
            begin = min(int((span.start - t0) * scale), width - 1)
            length = max(1, int(round(span.duration * scale)))
            length = min(length, width - begin)
            bar = " " * begin + _GLYPHS[span.kind] * length
            label = f"{span.stage}[{span.kind}]".ljust(label_width)
            lines.append(f"{label} |{bar.ljust(width)}|")
        return "\n".join(lines)

    def summary(self, request_id: str) -> str:
        """One-line breakdown of where the request's time went."""
        totals = self.total_by_kind(request_id)
        parts = [
            f"{kind}={totals[kind] * 1e3:.2f}ms"
            for kind in KINDS
            if totals[kind] > 0
        ]
        return f"{request_id}: " + ", ".join(parts)
