"""LLM layer: KV-cache transfer systems and the MoA workflow."""

from repro.llm.moa import MoaConfig, MoaResult, run_moa
from repro.llm.models import LLM_ZOO, LlmSpec, get_llm
from repro.llm.systems import (
    KV_SYSTEMS,
    GRouterKvSystem,
    InflessKvSystem,
    KvTransferStats,
    KvTransferSystem,
    MooncakeKvSystem,
    make_kv_system,
    measure_kv_transfer,
    recompute_ttft,
    ttft,
)

__all__ = [
    "MoaConfig",
    "MoaResult",
    "run_moa",
    "LLM_ZOO",
    "LlmSpec",
    "get_llm",
    "KV_SYSTEMS",
    "GRouterKvSystem",
    "InflessKvSystem",
    "KvTransferStats",
    "KvTransferSystem",
    "MooncakeKvSystem",
    "make_kv_system",
    "measure_kv_transfer",
    "recompute_ttft",
    "ttft",
]
