"""Cross-node KV-cache transfer systems (paper §6.4).

MoA stages run on separate 8xH800 nodes; the receiver LLM needs the
sender's prompt+response KV cache.  Three transfer systems:

- **INFless+** — host-centric: every TP shard drains to host memory,
  the cache crosses the network host-to-host on one NIC, then stages
  back up to the receiver's shards.  Three copies, one NIC.
- **Mooncake+** — a KV-cache store that is not placement-aware: shards
  bounce through randomly chosen storage GPUs on both nodes.  The NIC
  parallelism it achieves equals the number of distinct storage GPUs'
  switches — it grows with TP, which is exactly the paper's "as TP
  increases, Mooncake begins using multiple NICs".
- **GROUTER** — locality-aware direct GDR: shard-to-shard transfers
  with NIC harvesting; the full cache moves once over every NIC.

TTFT for the receiver = KV transfer + prefill of its own delta tokens +
one decode step (DroidSpeak-style accounting).
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.llm.models import LlmSpec
from repro.net.network import FlowNetwork
from repro.net.transfer import TransferEngine
from repro.routing.harvest import parallel_nic_paths
from repro.sim.core import Environment
from repro.topology.cluster import ClusterTopology, make_cluster
from repro.topology.devices import Gpu
from repro.topology.paths import (
    cross_node_gdr_path,
    gpu_to_host_path,
    host_to_gpu_path,
    host_to_host_path,
    nvlink_direct_path,
)


@dataclass
class KvTransferStats:
    """Outcome of one KV-cache hand-off."""

    latency: float
    bytes_on_wire: float  # total bytes that crossed any link
    copies: int  # device-to-device copies of the cache


class KvTransferSystem(abc.ABC):
    """Moves one sequence's KV cache from node 0's TP group to node 1's."""

    name = "abstract"

    def __init__(self, env: Environment, cluster: ClusterTopology,
                 seed: int = 7) -> None:
        if len(cluster.nodes) < 2:
            raise ConfigError("KV transfer needs at least two nodes")
        self.env = env
        self.cluster = cluster
        self.network = FlowNetwork(env)
        self.engine = TransferEngine(env, self.network)
        self._rng = random.Random(seed)

    def shards(self, node_index: int, tp: int) -> list[Gpu]:
        node = self.cluster.nodes[node_index]
        if tp > len(node.gpus):
            raise ConfigError(f"tp={tp} exceeds {len(node.gpus)} GPUs")
        return [node.gpu(i) for i in range(tp)]

    def transfer(self, spec: LlmSpec, tokens: int, tp: int,
                 src_node: int = 0, dst_node: int = 1):
        """Process moving the cache; yields :class:`KvTransferStats`."""
        return self.env.process(self._transfer(spec, tokens, tp, src_node, dst_node))

    @abc.abstractmethod
    def _transfer(self, spec: LlmSpec, tokens: int, tp: int,
                  src_node: int, dst_node: int):
        ...

    def _parallel(self, transfers: list) -> "object":
        return self.env.all_of(transfers)


class InflessKvSystem(KvTransferSystem):
    """Host-centric: GPU -> host -> (one NIC) -> host -> GPU."""

    name = "infless+"

    def _transfer(self, spec: LlmSpec, tokens: int, tp: int,
                  src_index: int, dst_index: int):
        started = self.env.now
        total = spec.total_kv_bytes(tokens)
        shard_bytes = spec.kv_bytes(tokens, tp)
        src_node = self.cluster.nodes[src_index]
        dst_node = self.cluster.nodes[dst_index]
        down = [
            self.engine.transfer(
                [gpu_to_host_path(src_node, gpu)], shard_bytes, tag="kv-d2h"
            )
            for gpu in self.shards(src_index, tp)
        ]
        yield self._parallel(down)
        yield self.engine.transfer(
            [host_to_host_path(self.cluster, src_node, dst_node)],
            total,
            tag="kv-h2h",
        )
        up = [
            self.engine.transfer(
                [host_to_gpu_path(dst_node, gpu)], shard_bytes, tag="kv-h2d"
            )
            for gpu in self.shards(dst_index, tp)
        ]
        yield self._parallel(up)
        return KvTransferStats(
            latency=self.env.now - started,
            bytes_on_wire=3 * total,
            copies=3,
        )


class MooncakeKvSystem(KvTransferSystem):
    """Placement-unaware KV store: random storage-GPU bounces."""

    name = "mooncake+"

    def _transfer(self, spec: LlmSpec, tokens: int, tp: int,
                  src_index: int, dst_index: int):
        started = self.env.now
        total = spec.total_kv_bytes(tokens)
        shard_bytes = spec.kv_bytes(tokens, tp)
        src_node = self.cluster.nodes[src_index]
        dst_node = self.cluster.nodes[dst_index]
        src_stores = [self._rng.choice(src_node.gpus) for _ in range(tp)]
        dst_stores = [self._rng.choice(dst_node.gpus) for _ in range(tp)]

        # Copy 1: shard -> local storage GPU (skipped when co-located).
        hops = []
        for gpu, store in zip(self.shards(src_index, tp), src_stores):
            if gpu.device_id == store.device_id:
                continue
            hops.append(
                self.engine.transfer(
                    [nvlink_direct_path(src_node, gpu, store)],
                    shard_bytes,
                    tag="kv-store-in",
                )
            )
        if hops:
            yield self._parallel(hops)

        # Copy 2: storage GPU -> remote storage GPU over its own NIC.
        wire = []
        for store, remote in zip(src_stores, dst_stores):
            wire.append(
                self.engine.transfer(
                    [cross_node_gdr_path(self.cluster, store, remote)],
                    shard_bytes,
                    tag="kv-wire",
                )
            )
        yield self._parallel(wire)

        # Copy 3: remote storage GPU -> destination shard.
        out = []
        for remote, gpu in zip(dst_stores, self.shards(dst_index, tp)):
            if remote.device_id == gpu.device_id:
                continue
            out.append(
                self.engine.transfer(
                    [nvlink_direct_path(dst_node, remote, gpu)],
                    shard_bytes,
                    tag="kv-store-out",
                )
            )
        if out:
            yield self._parallel(out)
        return KvTransferStats(
            latency=self.env.now - started,
            bytes_on_wire=3 * total,
            copies=3,
        )


class GRouterKvSystem(KvTransferSystem):
    """Locality-aware direct GDR with NIC harvesting."""

    name = "grouter"

    def _transfer(self, spec: LlmSpec, tokens: int, tp: int,
                  src_index: int, dst_index: int):
        started = self.env.now
        total = spec.total_kv_bytes(tokens)
        shard_bytes = spec.kv_bytes(tokens, tp)
        src_shards = self.shards(src_index, tp)
        dst_shards = self.shards(dst_index, tp)
        if tp == 1:
            # One shard: harvest every NIC for the single transfer.
            paths = parallel_nic_paths(
                self.cluster, src_shards[0], dst_shards[0],
                topology_aware=True,
            )
            yield self.engine.transfer(paths, total, chunked=True, tag="kv")
        else:
            # Shard-to-shard direct GDR; each shard additionally
            # harvests the NIC lanes its mirror pair can reach.
            transfers = []
            for src, dst in zip(src_shards, dst_shards):
                paths = [cross_node_gdr_path(self.cluster, src, dst)]
                transfers.append(
                    self.engine.transfer(
                        paths, shard_bytes, chunked=True, tag="kv"
                    )
                )
            yield self._parallel(transfers)
        return KvTransferStats(
            latency=self.env.now - started,
            bytes_on_wire=total,
            copies=1,
        )


KV_SYSTEMS = {
    InflessKvSystem.name: InflessKvSystem,
    MooncakeKvSystem.name: MooncakeKvSystem,
    GRouterKvSystem.name: GRouterKvSystem,
}


def make_kv_system(name: str, env: Environment, cluster: ClusterTopology,
                   seed: int = 7) -> KvTransferSystem:
    """Instantiate a KV transfer system by evaluation name."""
    try:
        return KV_SYSTEMS[name](env, cluster, seed=seed)
    except KeyError:
        raise ConfigError(
            f"unknown KV system {name!r}; choose from {sorted(KV_SYSTEMS)}"
        ) from None


def measure_kv_transfer(
    system_name: str,
    spec: LlmSpec,
    tokens: int,
    tp: int,
    num_nodes: int = 2,
    seed: int = 7,
) -> KvTransferStats:
    """One-shot KV transfer measurement on a fresh H800 cluster."""
    env = Environment()
    cluster = make_cluster("h800", num_nodes=num_nodes)
    system = make_kv_system(system_name, env, cluster, seed=seed)
    proc = system.transfer(spec, tokens, tp)
    env.run()
    return proc.value


def ttft(
    system_name: str,
    spec: LlmSpec,
    input_tokens: int,
    tp: int,
    delta_tokens: int = 128,
    seed: int = 7,
) -> float:
    """Receiver-LLM time-to-first-token with KV reuse.

    TTFT = KV transfer + prefill of the receiver's own *delta_tokens* +
    one decode step.  ``recompute_ttft`` gives the no-reuse baseline.
    """
    stats = measure_kv_transfer(system_name, spec, input_tokens, tp, seed=seed)
    return (
        stats.latency
        + spec.prefill_latency(delta_tokens, tp)
        + spec.decode_step_latency
    )


def recompute_ttft(spec: LlmSpec, input_tokens: int, tp: int,
                   delta_tokens: int = 128) -> float:
    """TTFT when the receiver re-prefills the whole prompt (no KV pass)."""
    return (
        spec.prefill_latency(input_tokens + delta_tokens, tp)
        + spec.decode_step_latency
    )
