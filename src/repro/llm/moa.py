"""Mixture-of-Agents workflow over KV-cache passing (paper §6.4).

MoA runs L layers of A agents each; every agent in layer *l* consumes
the prompt + response KV caches of all layer *l-1* agents as auxiliary
context.  Layers live on separate 8xH800 nodes, so each layer boundary
moves ``A x A`` caches across the network — concurrently, which is
where NIC contention (and GROUTER's harvesting) matters.

The model here runs the real transfer systems on one shared flow
network, so concurrent agent fetches contend for NICs exactly as the
hardware would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.llm.models import LlmSpec, get_llm
from repro.llm.systems import make_kv_system
from repro.sim.core import Environment
from repro.topology.cluster import make_cluster


@dataclass(frozen=True)
class MoaConfig:
    """One Mixture-of-Agents deployment."""

    model: str = "llama-7b"
    layers: int = 3
    agents_per_layer: int = 3
    input_tokens: int = 2048
    response_tokens: int = 256
    tp: int = 8
    delta_tokens: int = 128  # each agent's own instruction prompt

    def __post_init__(self) -> None:
        if self.layers < 2:
            raise ConfigError("MoA needs at least two layers")
        if self.agents_per_layer < 1:
            raise ConfigError("need at least one agent per layer")

    @property
    def spec(self) -> LlmSpec:
        return get_llm(self.model)

    @property
    def context_tokens(self) -> int:
        """Tokens whose KV is handed to the next layer per agent."""
        return self.input_tokens + self.response_tokens


@dataclass
class MoaResult:
    """Per-layer TTFT and end-to-end latency of one MoA pass."""

    config: MoaConfig
    layer_ttfts: list[float] = field(default_factory=list)
    total_latency: float = 0.0

    @property
    def mean_ttft(self) -> float:
        return sum(self.layer_ttfts) / len(self.layer_ttfts)


def run_moa(system_name: str, config: MoaConfig, seed: int = 7) -> MoaResult:
    """Execute one MoA pass over the given KV transfer system.

    Layer 0 prefills from scratch; each later layer fetches all
    upstream agents' caches concurrently, prefills its delta, and
    generates its response.  TTFT per layer is the receiver-side time
    from layer start to first decoded token.
    """
    env = Environment()
    cluster = make_cluster("h800", num_nodes=config.layers)
    system = make_kv_system(system_name, env, cluster, seed=seed)
    spec = config.spec
    result = MoaResult(config=config)

    def pipeline():
        # Layer 0: plain prefill of the user prompt + generation.
        yield env.timeout(spec.prefill_latency(config.input_tokens, config.tp))
        yield env.timeout(config.response_tokens * spec.decode_step_latency)
        for layer in range(1, config.layers):
            layer_start = env.now
            # Every agent pulls every upstream agent's cache. With A
            # agents per layer that is A*A concurrent transfers over
            # the same node pair's NICs.
            fetches = []
            for _dst_agent in range(config.agents_per_layer):
                for _src_agent in range(config.agents_per_layer):
                    fetches.append(
                        system.transfer(
                            spec,
                            config.context_tokens,
                            config.tp,
                            src_node=layer - 1,
                            dst_node=layer,
                        )
                    )
            yield env.all_of(fetches)
            yield env.timeout(
                spec.prefill_latency(config.delta_tokens, config.tp)
            )
            yield env.timeout(spec.decode_step_latency)
            result.layer_ttfts.append(env.now - layer_start)
            # Rest of this layer's response generation.
            yield env.timeout(
                (config.response_tokens - 1) * spec.decode_step_latency
            )

    done = env.process(pipeline())
    env.run()
    if not done.ok:
        raise ConfigError("MoA pipeline failed")
    result.total_latency = env.now
    return result
