"""LLM specs and KV-cache sizing (paper §6.4).

The LLM evaluation passes prompt/response KV caches between
Mixture-of-Agents stages to avoid recomputation.  KV size per token is
``2 (K+V) x layers x kv_heads x head_dim x dtype_bytes``; tensor
parallelism shards it evenly across the TP group's GPUs.

Prefill throughput figures are effective tokens/s for one H800 at TP=1,
scaled linearly with TP (communication overhead folded into the
constant), which is the granularity the TTFT experiment needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.units import MS


@dataclass(frozen=True)
class LlmSpec:
    """One served LLM."""

    name: str
    num_layers: int
    num_kv_heads: int
    head_dim: int
    dtype_bytes: int = 2  # fp16/bf16
    prefill_tokens_per_s: float = 10_000.0  # per GPU at TP=1
    decode_step_latency: float = 30 * MS

    def kv_bytes_per_token(self) -> float:
        """Full (unsharded) KV bytes for one token."""
        return (
            2
            * self.num_layers
            * self.num_kv_heads
            * self.head_dim
            * self.dtype_bytes
        )

    def kv_bytes(self, tokens: int, tp: int = 1) -> float:
        """Per-shard KV bytes for a sequence under tensor parallelism."""
        if tokens < 0:
            raise ConfigError(f"negative token count {tokens}")
        if tp < 1:
            raise ConfigError(f"tp must be >= 1, got {tp}")
        return self.kv_bytes_per_token() * tokens / tp

    def total_kv_bytes(self, tokens: int) -> float:
        return self.kv_bytes_per_token() * tokens

    def prefill_latency(self, tokens: int, tp: int = 1) -> float:
        """Time to prefill *tokens* with a TP-*tp* group."""
        if tokens <= 0:
            return 0.0
        return tokens / (self.prefill_tokens_per_s * tp)


# GQA-style configs approximating popular open models.
LLM_ZOO: dict[str, LlmSpec] = {
    "llama-7b": LlmSpec(
        name="llama-7b",
        num_layers=32,
        num_kv_heads=32,
        head_dim=128,
        prefill_tokens_per_s=18_000.0,
        decode_step_latency=18 * MS,
    ),
    "llama-13b": LlmSpec(
        name="llama-13b",
        num_layers=40,
        num_kv_heads=40,
        head_dim=128,
        prefill_tokens_per_s=11_000.0,
        decode_step_latency=26 * MS,
    ),
    "llama-70b": LlmSpec(
        name="llama-70b",
        num_layers=80,
        num_kv_heads=8,  # GQA
        head_dim=128,
        prefill_tokens_per_s=2_600.0,
        decode_step_latency=55 * MS,
    ),
}


def get_llm(name: str) -> LlmSpec:
    """Look up an LLM spec by name."""
    try:
        return LLM_ZOO[name]
    except KeyError:
        raise ConfigError(
            f"unknown LLM {name!r}; choose from {sorted(LLM_ZOO)}"
        ) from None
