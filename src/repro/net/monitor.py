"""Periodic link-utilization sampling.

GROUTER's control plane "continuously monitors and updates global
bandwidth usage in real time" (§4.3.3).  This monitor is the
observability side of that: it samples each watched link's allocated
rate on a fixed period into a :class:`~repro.metrics.Timeline`, so
experiments can plot PCIe/NIC saturation over a run.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.common.errors import ConfigError
from repro.metrics.stats import Timeline
from repro.net.links import Link
from repro.net.network import FlowNetwork
from repro.sim.core import Environment


class LinkUtilizationMonitor:
    """Samples utilization (allocated/capacity) of watched links."""

    def __init__(
        self,
        env: Environment,
        network: FlowNetwork,
        links: Iterable[Link],
        interval: float = 0.01,
        horizon: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ConfigError("sampling interval must be positive")
        self.env = env
        self.network = network
        self.links = list(links)
        if not self.links:
            raise ConfigError("monitor needs at least one link")
        self.interval = interval
        self.horizon = horizon
        self.timelines: dict[str, Timeline] = {
            link.link_id: Timeline() for link in self.links
        }
        self._running = False

    def start(self) -> None:
        """Begin sampling (idempotent).

        With a *horizon* the monitor stops by itself; without one it
        samples until :meth:`stop` — callers driving ``env.run()``
        without an ``until`` should set a horizon so the queue drains.
        """
        if self._running:
            return
        self._running = True
        self.env.process(self._sample_loop())

    def stop(self) -> None:
        self._running = False

    def _sample_loop(self):
        while self._running:
            if self.horizon is not None and self.env.now >= self.horizon:
                self._running = False
                return
            for link in self.links:
                utilization = (
                    self.network.allocated_on(link) / link.capacity
                )
                self.timelines[link.link_id].sample(
                    self.env.now, utilization
                )
            yield self.env.timeout(self.interval)

    # -- reporting ------------------------------------------------------------
    def peak(self, link: Link) -> float:
        return self.timelines[link.link_id].peak

    def mean(self, link: Link) -> float:
        return self.timelines[link.link_id].mean

    def busiest(self) -> tuple[Link, float]:
        """The watched link with the highest mean utilization."""
        best = max(
            self.links, key=lambda l: self.timelines[l.link_id].mean
        )
        return best, self.timelines[best.link_id].mean
