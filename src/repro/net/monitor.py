"""Periodic link-utilization sampling.

GROUTER's control plane "continuously monitors and updates global
bandwidth usage in real time" (§4.3.3).  This monitor is the
observability side of that: it samples each watched link's allocated
rate on a fixed period into a :class:`~repro.metrics.Timeline`, so
experiments can plot PCIe/NIC saturation over a run.

When the environment has a telemetry bus (:mod:`repro.telemetry`),
the monitor is additionally a bus consumer: every component-scoped
rate reallocation (or flow finish) that touches a watched link
triggers an extra sample, so the timeline captures exact utilization
transitions between periodic ticks.  Subscribing to
:class:`~repro.telemetry.events.FlowsReallocated` rather than flow
starts means a rate change induced by a flow on *other* links of the
same component still resamples the watched link.

Samples are recorded with edge semantics
(:meth:`~repro.metrics.stats.Timeline.sample_edge`): when several bus
events land at one simulation instant — notably a macro-flow split
replaying its virtual per-batch history in a single call stack — only
the final post-transition value at that instant is kept.  Recording
every intermediate callback would stack duplicate zero-duration
samples and skew the sample-weighted mean.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.common.errors import ConfigError
from repro.metrics.stats import Timeline
from repro.net.links import Link
from repro.net.network import FlowNetwork
from repro.sim.core import Environment, Interrupt, Process
from repro.telemetry.events import FlowFinished, FlowsReallocated


class LinkUtilizationMonitor:
    """Samples utilization (allocated/capacity) of watched links."""

    def __init__(
        self,
        env: Environment,
        network: FlowNetwork,
        links: Iterable[Link],
        interval: float = 0.01,
        horizon: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ConfigError("sampling interval must be positive")
        self.env = env
        self.network = network
        self.links = list(links)
        if not self.links:
            raise ConfigError("monitor needs at least one link")
        self.interval = interval
        self.horizon = horizon
        self.timelines: dict[str, Timeline] = {
            link.link_id: Timeline() for link in self.links
        }
        self._watched_ids = {link.link_id for link in self.links}
        self._running = False
        self._process: Optional[Process] = None
        self._subscribed = False

    def start(self) -> None:
        """Begin sampling (idempotent).

        With a *horizon* the monitor stops by itself; without one it
        samples until :meth:`stop`.
        """
        if self._running:
            return
        self._running = True
        self._process = self.env.process(self._sample_loop())
        self._ensure_subscribed()

    def stop(self) -> None:
        """Stop sampling immediately (idempotent).

        Interrupts the sampling process so its pending timeout no
        longer drives the event queue — ``env.run()`` without an
        ``until`` drains even when the monitor had no horizon.
        """
        self._running = False
        process = self._process
        self._process = None
        if process is not None and process.is_alive:
            process.interrupt("monitor stopped")
        bus = self.env.telemetry
        if bus is not None and self._subscribed:
            bus.unsubscribe(FlowsReallocated, self._on_flow_change)
            bus.unsubscribe(FlowFinished, self._on_flow_change)
            self._subscribed = False

    def _ensure_subscribed(self) -> None:
        """Subscribe the bus consumer if a bus exists (idempotent).

        Checked again on every periodic tick, not just at
        :meth:`start`: a telemetry session attached mid-run (the spool
        / live-capture pattern) installs the bus *after* the monitor
        started, and the exact-transition resampling should engage the
        moment events begin to flow.
        """
        bus = self.env.telemetry
        if bus is not None and not self._subscribed:
            bus.subscribe(FlowsReallocated, self._on_flow_change)
            bus.subscribe(FlowFinished, self._on_flow_change)
            self._subscribed = True

    def _sample_loop(self):
        try:
            while self._running:
                if self.horizon is not None and self.env.now >= self.horizon:
                    self._running = False
                    return
                self._ensure_subscribed()
                self._sample_all()
                yield self.env.timeout(self.interval)
        except Interrupt:
            return

    def _sample_all(self) -> None:
        for link in self.links:
            utilization = self.network.allocated_on(link) / link.capacity
            self.timelines[link.link_id].sample_edge(self.env.now, utilization)

    def _on_flow_change(self, event) -> None:
        """Bus consumer: resample when a rate change touches a watched link.

        Both subscribed event types carry ``links``: the reallocated
        component's link set, or the finished flow's path.
        """
        if not self._running:
            return
        if self.horizon is not None and self.env.now >= self.horizon:
            return
        if self._watched_ids.intersection(event.links):
            self._sample_all()

    # -- reporting ------------------------------------------------------------
    def peak(self, link: Link) -> float:
        return self.timelines[link.link_id].peak

    def mean(self, link: Link) -> float:
        return self.timelines[link.link_id].mean

    def busiest(self) -> tuple[Link, float]:
        """The watched link with the highest mean utilization."""
        best = max(
            self.links,
            key=lambda link: self.timelines[link.link_id].mean,
        )
        return best, self.timelines[best.link_id].mean
