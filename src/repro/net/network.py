"""Fluid-flow bandwidth sharing over directed links.

Transfers are *flows* over link paths.  Whenever the flow population
changes, every flow's rate is recomputed from scratch:

1. **Reservations** — each flow may carry a ``min_rate`` (the paper's
   ``Rate_least`` from §4.3.2), granted in flow-arrival order up to the
   path's remaining capacity (admission-order isolation).
2. **Residual distribution** — the remaining capacity is handed out
   either by *progressive-filling max-min fairness* (how PCIe/NIC
   hardware arbitrates concurrent DMA engines — the baselines' world)
   or by *SLO-gated* allocation (GROUTER's rate control: all idle
   bandwidth goes to the flow with the tightest SLO first).

A multi-hop pipelined transfer is a single flow crossing all its links
simultaneously; its rate is bounded by the bottleneck link share, which
is the standard pipelining approximation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.common.errors import SimulationError
from repro.net.links import Link
from repro.sim.core import Environment, Event
from repro.telemetry.events import FlowFinished, FlowStarted

_EPS = 1e-9


@dataclass
class FlowStats:
    """Final accounting attached to a completed flow's done-event."""

    flow_id: int
    size: float
    started_at: float
    finished_at: float

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def mean_rate(self) -> float:
        return self.size / self.duration if self.duration > 0 else float("inf")


class Flow:
    """A single in-flight transfer over a fixed link path."""

    _ids = itertools.count()

    def __init__(
        self,
        env: Environment,
        path: Sequence[Link],
        size: float,
        min_rate: float = 0.0,
        rate_cap: float = float("inf"),
        slo_deadline: Optional[float] = None,
        tag: str = "",
    ) -> None:
        if not path:
            raise SimulationError("flow path must contain at least one link")
        if size <= 0:
            raise SimulationError(f"flow size must be positive, got {size}")
        if min_rate < 0:
            raise SimulationError(f"negative min_rate {min_rate}")
        self.flow_id = next(Flow._ids)
        self.path = tuple(path)
        self.size = float(size)
        self.remaining = float(size)
        self.min_rate = min_rate
        self.rate_cap = rate_cap
        self.slo_deadline = slo_deadline
        self.tag = tag
        self.rate = 0.0
        self.started_at = env.now
        self.done: Event = env.event()
        self._last_update = env.now
        self._timer_version = 0

    def __repr__(self) -> str:
        return (
            f"<Flow {self.flow_id} tag={self.tag!r} "
            f"{self.remaining:.0f}/{self.size:.0f}B rate={self.rate:.2e}>"
        )


@dataclass
class _LinkState:
    link: Link
    flows: set = field(default_factory=set)
    bytes_carried: float = 0.0


class FlowNetwork:
    """Tracks active flows and shares link bandwidth among them.

    Parameters
    ----------
    env:
        Simulation environment.
    policy:
        ``"maxmin"`` (default, baseline behaviour) or ``"slo_gated"``
        (GROUTER §4.3.2: residual bandwidth goes to the tightest SLO).
    """

    def __init__(self, env: Environment, policy: str = "maxmin") -> None:
        if policy not in ("maxmin", "slo_gated"):
            raise SimulationError(f"unknown allocation policy {policy!r}")
        self.env = env
        self.policy = policy
        self._links: dict[str, _LinkState] = {}
        self._flows: set[Flow] = set()

    # -- link registry ----------------------------------------------------
    def add_link(self, link: Link) -> None:
        """Register *link*; idempotent for the same object."""
        existing = self._links.get(link.link_id)
        if existing is not None and existing.link is not link:
            raise SimulationError(f"duplicate link id {link.link_id}")
        if existing is None:
            self._links[link.link_id] = _LinkState(link)

    def add_links(self, links: Iterable[Link]) -> None:
        for link in links:
            self.add_link(link)

    def link_state(self, link: Link) -> _LinkState:
        state = self._links.get(link.link_id)
        if state is None:
            # Links are registered lazily: a topology can hold thousands
            # of links while only a few ever carry flows.
            self.add_link(link)
            state = self._links[link.link_id]
        return state

    def allocated_on(self, link: Link) -> float:
        """Current total allocated rate on *link*."""
        # Summation order is fixed so results do not depend on set/hash
        # iteration order (which varies across processes).
        return sum(
            flow.rate
            for flow in sorted(
                self.link_state(link).flows, key=lambda f: f.flow_id
            )
        )

    def residual_on(self, link: Link) -> float:
        """Unallocated capacity on *link*."""
        return max(0.0, link.capacity - self.allocated_on(link))

    def flows_on(self, link: Link) -> set:
        """Active flows crossing *link* (live view copy)."""
        return set(self.link_state(link).flows)

    def bytes_carried(self, link: Link) -> float:
        """Total bytes carried by *link* so far (includes in-flight)."""
        self._advance_progress()
        return self.link_state(link).bytes_carried

    @property
    def active_flows(self) -> set[Flow]:
        return set(self._flows)

    # -- flow lifecycle ----------------------------------------------------
    def start_flow(
        self,
        path: Sequence[Link],
        size: float,
        min_rate: float = 0.0,
        rate_cap: float = float("inf"),
        slo_deadline: Optional[float] = None,
        tag: str = "",
    ) -> Flow:
        """Begin a transfer of *size* bytes over *path*.

        Returns the :class:`Flow`; its ``done`` event fires (with
        :class:`FlowStats`) when the last byte drains.
        """
        flow = Flow(
            self.env,
            path,
            size,
            min_rate=min_rate,
            rate_cap=rate_cap,
            slo_deadline=slo_deadline,
            tag=tag,
        )
        for link in flow.path:
            if link.link_id not in self._links:
                self.add_link(link)
        self._advance_progress()
        self._flows.add(flow)
        for link in flow.path:
            self._links[link.link_id].flows.add(flow)
        self._reallocate()
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(FlowStarted(
                t=self.env.now,
                flow_id=flow.flow_id,
                tag=flow.tag,
                size=flow.size,
                links=tuple(link.link_id for link in flow.path),
                src=flow.path[0].src,
                dst=flow.path[-1].dst,
            ))
        return flow

    def cancel_flow(self, flow: Flow) -> None:
        """Abort *flow*; its done-event fails with SimulationError."""
        if flow not in self._flows:
            raise SimulationError(f"cancel of unknown flow {flow.flow_id}")
        self._advance_progress()
        self._detach(flow)
        flow.done.fail(SimulationError(f"flow {flow.flow_id} cancelled"))
        self._reallocate()

    # -- internals -----------------------------------------------------------
    def _detach(self, flow: Flow) -> None:
        self._flows.discard(flow)
        for link in flow.path:
            self._links[link.link_id].flows.discard(flow)
        flow._timer_version += 1
        flow.rate = 0.0

    def _advance_progress(self) -> None:
        """Drain bytes for elapsed time at each flow's current rate."""
        now = self.env.now
        for flow in sorted(self._flows, key=lambda f: f.flow_id):
            elapsed = now - flow._last_update
            if elapsed > 0 and flow.rate > 0:
                moved = min(flow.remaining, flow.rate * elapsed)
                flow.remaining -= moved
                for link in flow.path:
                    self._links[link.link_id].bytes_carried += moved
            flow._last_update = now

    def _reallocate(self) -> None:
        """Recompute all flow rates and reschedule completion timers."""
        # Deterministic iteration order: set order depends on object
        # hashes, which vary across processes; flow_id does not.
        rates = self._compute_rates(
            sorted(self._flows, key=lambda f: f.flow_id)
        )
        for flow, rate in rates.items():
            flow.rate = rate
        # Completion timers are (re)armed in flow_id order: the heap
        # breaks same-time ties by scheduling sequence, so this keeps
        # event ordering independent of set/hash iteration order.
        for flow in sorted(self._flows, key=lambda f: f.flow_id):
            self._schedule_completion(flow)

    def _schedule_completion(self, flow: Flow) -> None:
        flow._timer_version += 1
        version = flow._timer_version
        if flow.remaining <= _EPS:
            self.env.schedule(0.0, lambda f=flow, v=version: self._on_timer(f, v))
            return
        if flow.rate <= _EPS:
            return  # starved; will be rescheduled on the next change
        eta = flow.remaining / flow.rate
        self.env.schedule(eta, lambda f=flow, v=version: self._on_timer(f, v))

    def _on_timer(self, flow: Flow, version: int) -> None:
        if flow._timer_version != version or flow.done.triggered:
            return
        self._advance_progress()
        # Float-drift guard: a microbyte of residual is "done"; likewise
        # finish when the residual is too small for the clock to advance
        # (now + eta == now), or the timer would loop at one timestamp.
        threshold = max(1e-6, flow.size * 1e-12)
        if flow.remaining > threshold:
            eta = (
                flow.remaining / flow.rate if flow.rate > _EPS else float("inf")
            )
            if eta != float("inf") and self.env.now + eta > self.env.now:
                self._schedule_completion(flow)
                return
            if eta == float("inf"):
                return  # starved; rescheduled on the next rate change
        flow.remaining = 0.0
        self._detach(flow)
        flow.done.succeed(
            FlowStats(
                flow_id=flow.flow_id,
                size=flow.size,
                started_at=flow.started_at,
                finished_at=self.env.now,
            )
        )
        self._reallocate()
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(FlowFinished(
                t=self.env.now,
                flow_id=flow.flow_id,
                tag=flow.tag,
                size=flow.size,
                links=tuple(link.link_id for link in flow.path),
                src=flow.path[0].src,
                dst=flow.path[-1].dst,
                started_at=flow.started_at,
            ))

    # -- rate computation -------------------------------------------------
    def _compute_rates(self, flows: list[Flow]) -> dict[Flow, float]:
        if not flows:
            return {}
        rates: dict[Flow, float] = {}
        residual: dict[str, float] = {
            lid: state.link.capacity for lid, state in self._links.items()
        }

        # Phase 1: reservations are granted in flow-arrival order, each
        # up to the path's remaining capacity.  Admission-order
        # guarantees give performance isolation (§4.3.2): a later flood
        # of reserving flows cannot dilute an earlier flow's Rate_least.
        for flow in sorted(flows, key=lambda f: f.flow_id):
            if flow.min_rate <= 0:
                rates[flow] = 0.0
                continue
            headroom = min(residual[link.link_id] for link in flow.path)
            granted = max(0.0, min(flow.min_rate, flow.rate_cap, headroom))
            rates[flow] = granted
            for link in flow.path:
                residual[link.link_id] -= granted

        # Phase 2: distribute the residual.
        if self.policy == "slo_gated":
            self._fill_slo_gated(flows, rates, residual)
        else:
            self._fill_maxmin(flows, rates, residual)
        return rates

    # SLO-gated flows are topped up to finish within this fraction of
    # their remaining slack — comfortably early, but without hoarding.
    _SLO_SLACK_TARGET = 0.5

    def _fill_slo_gated(
        self,
        flows: list[Flow],
        rates: dict[Flow, float],
        residual: dict[str, float],
    ) -> None:
        """Idle bandwidth to the tightest SLO first (§4.3.2).

        Two passes.  First, flows with a *future* deadline are topped
        up — tightest deadline first — to the rate that finishes them
        within half their remaining slack; expired deadlines are lost
        causes and drop to best effort (otherwise a backlog of missed
        transfers starves every still-meetable SLO).  Second, whatever
        capacity remains is shared max-min among all flows, so nothing
        is left idle and best-effort traffic never fully starves.
        """
        now = self.env.now
        pending = [
            flow
            for flow in flows
            if flow.slo_deadline is not None and flow.slo_deadline > now
        ]
        pending.sort(key=lambda f: (f.slo_deadline, f.flow_id))
        for flow in pending:
            slack = (flow.slo_deadline - now) * self._SLO_SLACK_TARGET
            target_rate = flow.remaining / max(slack, _EPS)
            want = min(target_rate, flow.rate_cap) - rates[flow]
            if want <= _EPS:
                continue
            headroom = min(residual[link.link_id] for link in flow.path)
            grant = min(want, headroom)
            if grant <= _EPS:
                continue
            rates[flow] += grant
            for link in flow.path:
                residual[link.link_id] -= grant
        # Work conservation: leftovers shared max-min among everyone.
        self._fill_maxmin(flows, rates, residual)

    def _fill_maxmin(
        self,
        flows: list[Flow],
        rates: dict[Flow, float],
        residual: dict[str, float],
    ) -> None:
        """Progressive-filling max-min fairness over the residual."""
        unfrozen = [
            flow for flow in flows if rates[flow] < flow.rate_cap - _EPS
        ]
        # Iteration bound: each pass freezes at least one flow.
        for _ in range(len(flows) + 1):
            if not unfrozen:
                break
            crossing: dict[str, int] = {}
            for flow in unfrozen:
                for link in flow.path:
                    crossing[link.link_id] = crossing.get(link.link_id, 0) + 1
            delta = min(
                residual[link_id] / count for link_id, count in crossing.items()
            )
            delta = min(
                [delta] + [flow.rate_cap - rates[flow] for flow in unfrozen]
            )
            if delta > _EPS:
                for flow in unfrozen:
                    rates[flow] += delta
                    for link in flow.path:
                        residual[link.link_id] -= delta
            # Freeze flows pinned by a saturated link or their own cap.
            frozen = set()
            for flow in unfrozen:
                at_cap = rates[flow] >= flow.rate_cap - _EPS
                saturated = any(
                    residual[link.link_id] <= _EPS for link in flow.path
                )
                if at_cap or saturated:
                    frozen.add(flow)
            if not frozen:
                break
            unfrozen = [flow for flow in unfrozen if flow not in frozen]
