"""Fluid-flow bandwidth sharing over directed links.

Transfers are *flows* over link paths.  Whenever the flow population
changes, flow rates are recomputed:

1. **Reservations** — each flow may carry a ``min_rate`` (the paper's
   ``Rate_least`` from §4.3.2), granted in flow-arrival order up to the
   path's remaining capacity (admission-order isolation).
2. **Residual distribution** — the remaining capacity is handed out
   either by *progressive-filling max-min fairness* (how PCIe/NIC
   hardware arbitrates concurrent DMA engines — the baselines' world)
   or by *SLO-gated* allocation (GROUTER's rate control: all idle
   bandwidth goes to the flow with the tightest SLO first).

A multi-hop pipelined transfer is a single flow crossing all its links
simultaneously; its rate is bounded by the bottleneck link share, which
is the standard pipelining approximation.

Incremental, component-scoped reallocation
------------------------------------------
Rates only couple through shared links, so the flow/link graph
decomposes into connected components (links sharing a flow are
connected).  The default ``incremental`` allocator exploits this: when a
flow starts, finishes, or is cancelled, only its component's rates are
recomputed.  Flows outside the component keep their rates, their
progress is advanced lazily per-flow (``_last_update`` accounting), and
their completion timers are left untouched.  Within the component, a
flow whose recomputed rate is exactly unchanged keeps its pending timer
(reschedule elision), eliminating the one-stale-timer-per-flow heap
churn of a from-scratch allocator.

Incremental *within*-component water-fill
-----------------------------------------
Component scoping buys nothing when everything is one component (the
``fanin_hotspot`` regime: thousands of flows into one NIC).  For that
the ``incremental`` allocator also maintains a *persistent component
registry* (components are updated in place on arrival/merge and
single-link departure instead of re-derived by BFS) and, for *clean*
components — ``maxmin`` policy, no reservations (``min_rate == 0``),
no ``rate_cap``, no macro-flows, telemetry bus detached — a cached
*bottleneck-level structure* (:mod:`repro.net.waterfill`): the sorted
sequence of saturation levels the progressive fill produces.  On a
single flow arrival or departure a splice scan finds the first
perturbed pass ``j*``; levels below it are reused verbatim (their
rates, freeze sets and link residuals are provably bit-identical) and
only passes ``>= j*`` are recomputed.  Completion timers collapse to
one armed timer per component (the level structure makes the earliest
completion a cheap scan), eliminating the per-flow heap churn that
made ``incremental`` *slower* than ``legacy`` on one big component.
Whenever a precondition fails — reservations, caps, SLO-gated phase-1
grants, macro splits, component merges, a telemetry bus attached —
the allocator degrades gracefully to the classic scoped full refill,
which is bit-identical to the pre-cache behaviour (and rebuilds the
cache when the component becomes clean again).

Three other allocator modes exist for validation and benchmarking:

``fullscan``
    Same semantics, but components are re-derived from scratch on every
    event by a union-find sweep over all flows.  Used as the
    differential-testing reference: its rates, event orderings, and
    finish times must be bit-identical to ``incremental``.
``legacy``
    The original from-scratch allocator: every event advances all
    flows, recomputes all rates globally, and rearms every completion
    timer.  Kept as the perf-benchmark baseline (`repro bench`).
``analytic``
    ``incremental`` plus closed-form completion for clean
    *single-link* components: instead of settling every member's
    ``remaining`` through each rate epoch (Θ(members) per event for
    any bit-exact chain), the component integrates one shared service
    curve and completes flows off a heap — O(log n) per event, flat
    in component size.  Rates are identical floats; completion
    *instants* drift from the eager subtraction chains at the ulp
    level, which is why this mode is opt-in rather than the default.
``epoch``
    ``incremental`` plus *deferred-advance epoch fast-forwarding* for
    clean components of **any** link count (:mod:`repro.sim.epoch`).
    Instead of eagerly settling every member at every event, each
    event records one piecewise-constant-rate *epoch boundary* in a
    per-component ledger; a member's exact eager subtraction chain is
    replayed — same floats, same order — only when it is observed (its
    own completion, a rate change, or a regime exit).  Unlike
    ``analytic`` this is bit-identical to ``incremental``: it replays
    the eager float chains lazily rather than replacing them with
    closed forms.  Any disturbance (merge, cancel, byte query, dirty
    precondition) hits an *epoch barrier* that materializes full eager
    state before proceeding.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.common.config import NET_ALLOCATORS, net_allocator
from repro.common.errors import SimulationError
from repro.net.links import Link
from repro.net.waterfill import AnalyticState, Level, splice_scan
from repro.sim.core import Environment, Event, ScheduledCall
from repro.sim.epoch import ArmSequencer, EpochLedger, EpochRegion, TimerSlot
from repro.telemetry.events import FlowFinished, FlowStarted, FlowsReallocated

_EPS = 1e-9

ALLOCATORS = NET_ALLOCATORS

# Deferred-advance ledgers are settled wholesale past this many epochs:
# bounds the replay-chain length (and thus the worst-case accumulated
# float error the >1-byte elision guard must absorb) and the ledger's
# memory growth in very long quiescent stretches.
_LEDGER_MAX_EPOCHS = 4096


@dataclass
class FlowStats:
    """Final accounting attached to a completed flow's done-event."""

    flow_id: int
    size: float
    started_at: float
    finished_at: float

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def mean_rate(self) -> float:
        return self.size / self.duration if self.duration > 0 else float("inf")


class Flow:
    """A single in-flight transfer over a fixed link path."""

    __slots__ = (
        "flow_id",
        "path",
        "size",
        "min_rate",
        "rate_cap",
        "slo_deadline",
        "tag",
        "owner",
        "started_at",
        "arrival_order",
        "done",
        "macro_outcome",
        "_remaining",
        "_rate",
        "_last_update",
        "_timer",
        "_timer_at",
        "_timer_seq",
        "_macro",
        "_comp",
        "_order_idx",
        "_level_idx",
        "_astate",
        "_v_done",
        "_eled",
        "_eh",
        "_eidx",
        "_ejoin",
        "_edept",
        "_erem0",
    )

    _ids = itertools.count()

    def __init__(
        self,
        env: Environment,
        path: Sequence[Link],
        size: float,
        min_rate: float = 0.0,
        rate_cap: float = float("inf"),
        slo_deadline: Optional[float] = None,
        tag: str = "",
        owner: str = "",
    ) -> None:
        if not path:
            raise SimulationError("flow path must contain at least one link")
        if size <= 0:
            raise SimulationError(f"flow size must be positive, got {size}")
        if min_rate < 0:
            raise SimulationError(f"negative min_rate {min_rate}")
        self.flow_id = next(Flow._ids)
        self.path = tuple(path)
        self.size = float(size)
        self._remaining = float(size)
        self.min_rate = min_rate
        self.rate_cap = rate_cap
        self.slo_deadline = slo_deadline
        self.tag = tag
        self.owner = owner
        self._rate = 0.0
        self.started_at = env.now
        # Logical arrival instant used for ordering guarantees
        # (admission-order reservations, SLO tie-breaks).  Equals
        # ``started_at`` for ordinary flows; a macro-flow converted
        # back into its current batch inherits the batch's virtual
        # start so it sorts exactly where the per-batch flow would.
        self.arrival_order = self.started_at
        self.done: Event = env.event()
        # Set by the network on macro-flow resolution; the transfer
        # engine reads it after ``done`` to continue the batch loop.
        self.macro_outcome: Optional["MacroOutcome"] = None
        self._last_update = env.now
        self._timer: Optional[ScheduledCall] = None
        self._timer_at = 0.0
        # Conceptual arming sequence for the comp-timer fast path: -1
        # means "not armed"; ties on equal instants resolve by arming
        # order, mirroring the per-flow timer heap.
        self._timer_seq = -1
        self._macro: Optional[_MacroState] = None
        # Persistent-component bookkeeping (incremental/analytic).
        self._comp: Optional["_Component"] = None
        self._order_idx = 0
        # Index of the cached saturation level this flow froze at in
        # its component's last clean fill; None = not bound.
        self._level_idx: Optional[int] = None
        # Analytic-mode virtual-service state (clean 1-link components).
        self._astate: Optional[AnalyticState] = None
        self._v_done = 0.0
        # Epoch-ledger membership (epoch allocator): the owning
        # EpochLedger while this flow's advances are deferred, plus the
        # replay bookkeeping it maintains (rate history, settled-epoch
        # index, join/depart epochs, remaining-at-join seed).
        self._eled: Optional[EpochLedger] = None
        self._eh: Optional[list] = None
        self._eidx = 0
        self._ejoin = 0
        self._edept = 0
        self._erem0 = 0.0

    @property
    def rate(self) -> float:
        st = self._astate
        if st is not None:
            return st.rate
        return self._rate

    @rate.setter
    def rate(self, value: float) -> None:
        self._rate = value

    @property
    def remaining(self) -> float:
        st = self._astate
        if st is not None:
            rem = self._v_done - st.service_now()
            return rem if rem > 0.0 else 0.0
        led = self._eled
        if led is not None:
            # Settle-on-read: replays only this flow's own deferred
            # subtraction chain (order-independent across flows), so
            # external observers see the same as-of-last-boundary value
            # an eager run would hold.
            led.settle_member(self)
        return self._remaining

    @remaining.setter
    def remaining(self, value: float) -> None:
        self._remaining = value

    def __repr__(self) -> str:
        return (
            f"<Flow {self.flow_id} tag={self.tag!r} "
            f"{self.remaining:.0f}/{self.size:.0f}B rate={self.rate:.2e}>"
        )


def _flow_order(flow: Flow) -> tuple[float, int]:
    """Deterministic allocation order: arrival instant, then id.

    For ordinary flows this is exactly flow_id order (ids are handed
    out monotonically in simulation time); converted macro-flows carry
    their current batch's virtual start so they keep the position the
    equivalent per-batch flow would have had.
    """
    return (flow.arrival_order, flow.flow_id)


@dataclass(slots=True)
class _LinkState:
    link: Link
    # flow_id -> Flow.  Insertion-ordered: flows attach in flow_id
    # order, so iteration is deterministic without sorting.
    flows: dict = field(default_factory=dict)
    bytes_carried: float = 0.0
    # Owning component (persistent registry; incremental/analytic).
    comp: Optional["_Component"] = None
    # Component whose epoch ledger still defers byte credits for this
    # link after the link emptied and was pruned from it.  A
    # ``bytes_carried`` query barriers it (and clears the pointer) so
    # the accumulator is exact even though the link has no owner.
    epoch_comp: Optional["_Component"] = None
    # Contention-index memo: the allocated-rate sum as of network
    # generation ``alloc_gen`` (-1 = never computed).  Recomputed with
    # the exact expression ``allocated_on`` uses, so a fresh read and a
    # memoized read return the same float bit for bit.
    alloc_gen: int = -1
    alloc_rates: float = 0.0


class ContentionIndex:
    """O(1)-readable per-link contention: flow counts and residuals.

    The allocator already touches per-link state on every flow start,
    finish, and reallocation; this index piggybacks on those events by
    bumping one generation counter (``FlowNetwork._touch_contention``)
    at every mutation choke point.  Reads memoize the allocated-rate
    sum per link against that generation, so Algorithm 1 and the
    harvest selectors — which probe many links between consecutive
    network mutations — pay the flow-set walk once per (link, change)
    instead of once per probe.

    Bit-identity: a memoized value is the literal result of the same
    ``sum(flow.rate for flow in state.flows.values())`` expression
    :meth:`FlowNetwork.allocated_on` evaluates, cached only while no
    mutation has intervened, so reads agree with the uncached
    reference in every allocator mode (incremental / epoch / macro
    virtual replay included — lazily advanced macro rates are read
    identically by both).  The seeded routing differential suite pins
    this equivalence.
    """

    __slots__ = ("_net",)

    def __init__(self, net: "FlowNetwork") -> None:
        self._net = net

    def flow_count(self, link: Link) -> int:
        """Number of active flows crossing *link* (no set copy)."""
        return len(self._net.link_state(link).flows)

    def allocated(self, link: Link) -> float:
        """Total allocated rate on *link* (memoized per generation)."""
        net = self._net
        state = net.link_state(link)
        if state.alloc_gen != net._contention_gen:
            state.alloc_rates = sum(
                flow.rate for flow in state.flows.values()
            )
            state.alloc_gen = net._contention_gen
            net.contention_recomputes += 1
        return state.alloc_rates

    def residual(self, link: Link) -> float:
        """Unallocated capacity on *link* (memoized per generation)."""
        return max(0.0, link.capacity - self.allocated(link))


class _Component:
    """A persistent connected component of the flow/link graph.

    Maintained in place by the ``incremental``/``analytic`` allocators:
    arrivals append (merging bridged components into the largest one),
    single-link departures tombstone, multi-link departures dissolve
    the component and BFS re-derives the split parts.  All flows on a
    link always belong to one component, so exactness of the registry
    follows from exactness of these three updates.

    Timer-regime state lives in the component's
    :class:`~repro.sim.epoch.EpochRegion`: ``region.mode`` tracks which
    regime the members are in — ``classic`` (per-flow timers, the
    pre-cache behaviour, used whenever a telemetry bus is attached or
    the component is unclean), ``fast`` (one slot timer over conceptual
    ``(instant, seq)`` completions, optionally with a deferred-advance
    ledger under the ``epoch`` allocator), or ``analytic`` (one shared
    service curve).  Transitions cancel the old regime's timers and
    re-arm under the new one.
    """

    __slots__ = (
        "order", "live", "links", "n_unclean", "n_macro", "order_dirty",
        "cache", "region",
    )

    def __init__(self, env: Environment, seq: ArmSequencer) -> None:
        # Arrival-ordered members; departures leave None tombstones
        # (compacted amortizedly), so iteration order never needs a
        # per-event sort.
        self.order: list[Optional[Flow]] = []
        self.live = 0
        self.links: dict[str, _LinkState] = {}
        # Members with a reservation or a rate cap (they freeze the
        # fill in ways the level cache cannot splice over).
        self.n_unclean = 0
        self.n_macro = 0
        # Set when arrival order may be violated (component merge,
        # macro conversion rewriting arrival_order): the next members()
        # call re-sorts.
        self.order_dirty = False
        # Cached bottleneck levels from the last clean fill.
        self.cache: Optional[list[Level]] = None
        # Timer regime, slot timer, service curve, deferred ledger.
        self.region = EpochRegion(env, seq)


@dataclass(slots=True)
class MacroOutcome:
    """How a macro-flow resolved; read by the transfer engine.

    ``kind``:

    ``"completed"``
        All coalesced batches drained undisturbed.
    ``"converted"``
        A flow arrival touched the macro's component mid-batch; the
        macro mutated into its current per-batch flow and ``done``
        fired at that batch's boundary.
    ``"setup"``
        The split landed inside a batch-setup window (the per-batch
        world has no flow in flight there); the engine resumes at
        ``resume_at`` and sends ``block`` without repeating the setup
        delay it already spent virtually.
    ``"truncated"``
        Pinned-buffer contention cut the macro at the current batch
        boundary; ``done`` fired there.
    """

    kind: str
    rem_before: float = 0.0  # engine-loop `remaining` entering the boundary batch
    block: float = 0.0  # boundary batch size in bytes
    resume_at: float = 0.0  # kind == "setup": the virtual batch-start instant


@dataclass(slots=True)
class _MacroBatch:
    """One virtual per-batch flow inside a macro-flow's schedule.

    Every float here is produced by replaying the exact arithmetic the
    per-batch path would execute (setup add, allocator rate, ``s +
    b/rate`` completion), so splits and telemetry decomposition are
    bit-identical to the batch-granular world.
    """

    w: float  # setup begins (engine loop reaches the batch)
    s: float  # batch flow starts (w + batch_setup)
    f: float  # batch flow finishes (s + b / rate)
    b: float  # batch size in bytes
    rem_before: float  # engine-loop remaining entering this batch
    rate: float  # allocator rate for the lone batch flow


class _MacroState:
    """Mutable bookkeeping for an in-flight macro-flow."""

    __slots__ = (
        "entries",
        "index",
        "cur_rem",
        "cur_last",
        "pinned_hold",
        "pinned_refund",
        "published",
        "truncate_at",
        "slot",
    )

    def __init__(
        self,
        entries: list[_MacroBatch],
        pinned_hold: float,
        pinned_refund,
    ) -> None:
        self.entries = entries
        # The macro's one analytic-completion timer (armed at the final
        # batch boundary, re-armed at the truncation boundary on pinned
        # contention); owned by a TimerSlot so re-arming at the same
        # boundary is elided like every other epoch provider.
        self.slot: Optional[TimerSlot] = None
        # Virtual replica of the current per-batch flow's lazy-advance
        # state: batch index, its remaining bytes, last advance instant.
        self.index = 0
        self.cur_rem = entries[0].b
        self.cur_last = entries[0].s
        # Pinned-pool claim held on the engine's behalf, and the
        # callback that returns surplus bytes to the pool on a split.
        self.pinned_hold = pinned_hold
        self.pinned_refund = pinned_refund
        # Virtual batches already emitted to telemetry (prefix length).
        self.published = 0
        # Set when pinned contention truncates the macro at a boundary.
        self.truncate_at: Optional[int] = None


class FlowNetwork:
    """Tracks active flows and shares link bandwidth among them.

    Parameters
    ----------
    env:
        Simulation environment.
    policy:
        ``"maxmin"`` (default, baseline behaviour) or ``"slo_gated"``
        (GROUTER §4.3.2: residual bandwidth goes to the tightest SLO).
    allocator:
        ``"incremental"`` (default), ``"fullscan"`` (differential-test
        reference), or ``"legacy"`` (original from-scratch allocator,
        the benchmark baseline).  See the module docstring.  When
        ``None``, the ``REPRO_NET_ALLOCATOR`` environment variable is
        consulted, so whole experiment runs can be A/B-compared across
        allocators without code changes.
    """

    def __init__(
        self,
        env: Environment,
        policy: str = "maxmin",
        allocator: Optional[str] = None,
    ) -> None:
        # Precedence: kwarg > REPRO_NET_ALLOCATOR > REPRO_NET_EPOCH
        # flipping the default > "incremental" (repro.common.config).
        allocator = net_allocator(allocator)
        if policy not in ("maxmin", "slo_gated"):
            raise SimulationError(f"unknown allocation policy {policy!r}")
        self.env = env
        self.policy = policy
        self.allocator = allocator
        self._links: dict[str, _LinkState] = {}
        # flow_id -> Flow; insertion-ordered (ids are monotonic), so
        # iteration is always in flow_id order without sorting.
        self._flows: dict[int, Flow] = {}
        # Persistent component registry + level cache apply to the
        # incremental family only.
        self._use_components = allocator in ("incremental", "epoch", "analytic")
        # Live macro-flow count: lets start_flow skip the O(path)
        # macro-split sweep entirely in macro-free workloads.
        self._macro_live = 0
        # Conceptual timer-arming sequence for the comp-timer regime,
        # shared by every component's EpochRegion.
        self._arm = ArmSequencer()
        # Ledger in effect while an epoch reallocation runs: routes
        # _bind_fast calls through the deferred-settle variant.
        self._cur_ledger: Optional[EpochLedger] = None
        # Instrumentation (cheap, always on; exported by `repro bench`
        # and :meth:`export_metrics`).
        self.realloc_count = 0
        self.realloc_flows = 0  # cumulative component sizes
        self.flows_started = 0
        self.timer_reschedules = 0
        self.timer_elisions = 0
        # Level-cache effectiveness (clean-component fast path).
        self.cache_hits = 0
        self.cache_rebuilds = 0
        self.levels_spliced = 0
        self.levels_recomputed = 0
        self.analytic_events = 0
        # Macro-flow coalescing effectiveness (PR 5 fast path).
        self.macro_coalesced = 0
        self.macro_splits = 0
        # Epoch-engine effectiveness: boundaries recorded into ledgers
        # (deferred Θ(members) advances) and full settle barriers.
        self.epoch_boundaries = 0
        self.epoch_settles = 0
        # Contention index: generation counter bumped at every rate /
        # membership mutation choke point; per-link allocated sums are
        # memoized against it (see ContentionIndex).
        self._contention_gen = 0
        self.contention_recomputes = 0
        self.contention = ContentionIndex(self)

    def export_metrics(self, registry) -> None:
        """Publish allocator counters into a telemetry MetricsRegistry.

        Counters are monotonic; repeated exports increment by the
        delta, so the registry tracks the live values.
        """
        for name, value in (
            ("net.realloc_count", self.realloc_count),
            ("net.timer_reschedules", self.timer_reschedules),
            ("net.timer_elisions", self.timer_elisions),
            ("net.waterfill_cache_hits", self.cache_hits),
            ("net.waterfill_cache_rebuilds", self.cache_rebuilds),
            ("net.waterfill_levels_spliced", self.levels_spliced),
            ("net.waterfill_levels_recomputed", self.levels_recomputed),
            ("net.waterfill_analytic_events", self.analytic_events),
            ("net.macro_coalesced", self.macro_coalesced),
            ("net.macro_splits", self.macro_splits),
            ("net.epoch_boundaries", self.epoch_boundaries),
            ("net.epoch_settles", self.epoch_settles),
            ("net.contention_recomputes", self.contention_recomputes),
        ):
            counter = registry.counter(name)
            if value > counter.value:
                counter.inc(value - counter.value)

    # -- link registry ----------------------------------------------------
    def add_link(self, link: Link) -> None:
        """Register *link*; idempotent for the same object."""
        existing = self._links.get(link.link_id)
        if existing is not None and existing.link is not link:
            raise SimulationError(f"duplicate link id {link.link_id}")
        if existing is None:
            self._links[link.link_id] = _LinkState(link)

    def add_links(self, links: Iterable[Link]) -> None:
        for link in links:
            self.add_link(link)

    def link_state(self, link: Link) -> _LinkState:
        state = self._links.get(link.link_id)
        if state is None:
            # Links are registered lazily: a topology can hold thousands
            # of links while only a few ever carry flows.
            self.add_link(link)
            state = self._links[link.link_id]
        return state

    def allocated_on(self, link: Link) -> float:
        """Current total allocated rate on *link*."""
        return sum(flow.rate for flow in self.link_state(link).flows.values())

    def residual_on(self, link: Link) -> float:
        """Unallocated capacity on *link*."""
        return max(0.0, link.capacity - self.allocated_on(link))

    def flow_count_on(self, link: Link) -> int:
        """Number of active flows crossing *link*, without copying.

        Equivalent to ``len(flows_on(link))`` but O(1): emptiness /
        count probes (path-is-free checks, harvest uplink tests) should
        use this instead of materializing a set per link.
        """
        return len(self.link_state(link).flows)

    def flows_on(self, link: Link) -> set:
        """Active flows crossing *link* (live view copy)."""
        return set(self.link_state(link).flows.values())

    def _touch_contention(self) -> None:
        """Invalidate the contention index's per-link memos.

        Called (cheaply) from every method that can change a flow's
        rate or a link's flow membership; over-calling is safe — it
        only forces the next read to recompute.
        """
        self._contention_gen += 1

    def bytes_carried(self, link: Link) -> float:
        """Total bytes carried by *link* so far (includes in-flight)."""
        state = self.link_state(link)
        if self.allocator == "legacy":
            self._advance_all()
        else:
            if state.comp is not None:
                # A deferred-advance ledger holds this link's byte
                # credits; settle it before the eager advance below so
                # the accumulator replays in exact eager order.
                self._epoch_barrier(state.comp)
            if state.epoch_comp is not None:
                # The link emptied and was pruned from a component
                # whose ledger still defers credits for it.
                self._epoch_barrier(state.epoch_comp)
                state.epoch_comp = None
            now = self.env.now
            for flow in state.flows.values():
                self._advance_flow(flow, now)
        return state.bytes_carried

    @property
    def active_flows(self) -> set[Flow]:
        return set(self._flows.values())

    @property
    def mean_component_size(self) -> float:
        """Mean number of flows per rate recomputation so far."""
        if self.realloc_count == 0:
            return 0.0
        return self.realloc_flows / self.realloc_count

    # -- flow lifecycle ----------------------------------------------------
    def start_flow(
        self,
        path: Sequence[Link],
        size: float,
        min_rate: float = 0.0,
        rate_cap: float = float("inf"),
        slo_deadline: Optional[float] = None,
        tag: str = "",
        owner: str = "",
    ) -> Flow:
        """Begin a transfer of *size* bytes over *path*.

        Returns the :class:`Flow`; its ``done`` event fires (with
        :class:`FlowStats`) when the last byte drains.
        """
        self._touch_contention()
        flow = Flow(
            self.env,
            path,
            size,
            min_rate=min_rate,
            rate_cap=rate_cap,
            slo_deadline=slo_deadline,
            tag=tag,
            owner=owner,
        )
        for link in flow.path:
            if link.link_id not in self._links:
                self.add_link(link)
        if self.allocator == "legacy":
            self._advance_all()
        elif self._macro_live:
            # A new flow disturbing a macro-flow's component forces the
            # macro back to per-batch granularity *before* this flow is
            # announced, so preemption happens at the batch boundary the
            # paper's §4.3.2 semantics require.
            self._split_macros_on(flow.path)
        self.flows_started += 1
        self._flows[flow.flow_id] = flow
        for link in flow.path:
            self._links[link.link_id].flows[flow.flow_id] = flow
        comp = self._comp_attach(flow) if self._use_components else None
        # Announce the flow before the reallocation below publishes its
        # first rate epoch, so stream consumers (the profiler's span
        # trees) see a complete bandwidth history from birth.
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(FlowStarted(
                t=self.env.now,
                flow_id=flow.flow_id,
                tag=flow.tag,
                size=flow.size,
                links=tuple(link.link_id for link in flow.path),
                src=flow.path[0].src,
                dst=flow.path[-1].dst,
                nominal_bw=min(link.capacity for link in flow.path),
                owner=flow.owner,
                capacities=tuple(link.capacity for link in flow.path),
            ))
        if self.allocator == "legacy":
            self._reallocate_legacy("start", flow.flow_id)
        elif comp is not None:
            self._comp_realloc(comp, "start", flow, arrival=True)
        else:
            # A new flow can merge previously disjoint components; the
            # component search from the attached flow covers the merge.
            # Progress inside the component is advanced at the old
            # rates before they change; everything outside stays lazy.
            self._reallocate_scoped([flow], "start", flow.flow_id)
        return flow

    def cancel_flow(self, flow: Flow) -> None:
        """Abort *flow*; its done-event fails with SimulationError.

        Cancelling a macro-flow aborts the whole coalesced remainder
        (the engine's batch loop dies with the failed done-event).
        """
        if flow.flow_id not in self._flows:
            raise SimulationError(f"cancel of unknown flow {flow.flow_id}")
        self._touch_contention()
        if flow._macro is not None:
            macro = flow._macro
            self._advance_flow(flow, self.env.now)
            if macro.slot is not None:
                macro.slot.disarm()
            self._publish_virtual_batches(flow, macro, macro.index)
            if macro.pinned_refund is not None and macro.pinned_hold > 0:
                macro.pinned_refund(macro.pinned_hold)
                macro.pinned_hold = 0.0
            flow._macro = None
            self._macro_resolved(flow)
            self._detach(flow)
            flow.done.fail(SimulationError(f"flow {flow.flow_id} cancelled"))
            return
        if self.allocator == "legacy":
            self._advance_all()
            self._detach(flow)
            flow.done.fail(SimulationError(f"flow {flow.flow_id} cancelled"))
            self._reallocate_legacy("cancel", flow.flow_id)
            return
        comp = flow._comp
        if comp is not None:
            # A cancel is a disturbance the ledger cannot express (the
            # eager world advances the cancelled flow outside the
            # uniform all-member cadence): settle everything first.
            self._epoch_barrier(comp)
        self._advance_flow(flow, self.env.now)
        if comp is not None and len(flow.path) == 1:
            # A one-link flow cannot split its component: the other
            # flows on that link stay connected through it.
            st = flow._astate
            if st is not None:
                flow._remaining = max(0.0, flow._v_done - st.v)
                flow._astate = None
            self._detach(flow)
            flow.done.fail(SimulationError(f"flow {flow.flow_id} cancelled"))
            if comp.live:
                self._comp_realloc(comp, "cancel", flow, arrival=False)
            return
        # Removing a flow can split its component; every surviving
        # part contains a link-sharing neighbour of the removed flow,
        # so seeding the scoped pass with the neighbours covers all of
        # them without a separate whole-component search.
        neighbors = self._neighbors(flow)
        if comp is not None:
            flow._timer_seq = -1  # cancelled; no timer to carry over
            self._comp_dissolve(comp)
        self._detach(flow)
        flow.done.fail(SimulationError(f"flow {flow.flow_id} cancelled"))
        self._reallocate_scoped(neighbors, "cancel", flow.flow_id)

    # -- macro-flows (steady-state batch coalescing) ----------------------
    def macro_eligible(self, path: Sequence[Link]) -> bool:
        """Cheap pre-check: can a macro-flow start on *path* right now?

        True only when every path link is idle — the macro would be
        alone in its bandwidth component, which is exactly the regime
        where per-batch granularity does no preemption work.  The
        legacy allocator predates components and never coalesces.
        """
        if self.allocator == "legacy":
            return False
        for link in path:
            state = self._links.get(link.link_id)
            if state is not None and state.flows:
                return False
        return True

    def start_macro_flow(
        self,
        path: Sequence[Link],
        size: float,
        batch_bytes: float,
        batch_setup: float,
        min_rate: float = 0.0,
        rate_cap: float = float("inf"),
        slo_deadline: Optional[float] = None,
        tag: str = "",
        owner: str = "",
        pinned_hold: float = 0.0,
        pinned_refund=None,
    ) -> Optional[Flow]:
        """Coalesce a whole chunk-batch loop into one analytic flow.

        Precomputes the exact per-batch schedule (setup instants, batch
        rates from the allocator at each virtual start, completion
        times) by replaying the per-batch float arithmetic, then arms a
        single timer at the final boundary.  Returns ``None`` when
        ineligible — path links busy, fewer than two batches, a starved
        or degenerate schedule — and the caller falls back to per-batch
        flows.  Any later disturbance splits the macro at the current
        batch boundary (see :meth:`_split_macro`), preserving the
        paper's §4.3.2 preemption semantics bit-exactly.
        """
        if self.allocator == "legacy" or size <= batch_bytes:
            return None
        for link in path:
            if link.link_id not in self._links:
                self.add_link(link)
        if any(self._links[link.link_id].flows for link in path):
            return None
        self._touch_contention()
        flow = Flow(
            self.env,
            path,
            size,
            min_rate=min_rate,
            rate_cap=rate_cap,
            slo_deadline=slo_deadline,
            tag=tag,
            owner=owner,
        )
        links = {link.link_id: self._links[link.link_id] for link in flow.path}
        entries: list[_MacroBatch] = []
        t = self.env.now
        rem = float(size)
        ok = True
        rate: Optional[float] = None
        while rem > 0:
            # float() mirrors Flow.__init__'s coercion in the per-batch
            # world so published event payloads compare bit-identically.
            b = float(min(batch_bytes, rem))
            w = t
            s = (w + batch_setup) if batch_setup > 0 else w
            flow.remaining = b
            if rate is None or self.policy == "slo_gated":
                # Max-min rates for a lone flow read neither *now* nor
                # the flow's remaining bytes, so one allocator call
                # covers every batch bit-exactly; only slo_gated rates
                # are time-varying and must be replayed per batch.
                rate = self._compute_rates([flow], links, now=s)[flow]
            if rate <= _EPS:
                ok = False  # starved; per-batch parks until a change
                break
            eta = b / rate
            f = s + eta
            if not f > s:
                ok = False  # clock cannot advance past this batch
                break
            residual = b - min(b, rate * (f - s))
            if residual > max(1e-6, b * 1e-12):
                ok = False  # per-batch would re-arm mid-batch; stay exact
                break
            entries.append(
                _MacroBatch(w=w, s=s, f=f, b=b, rem_before=rem, rate=rate)
            )
            t = f
            rem = rem - b
        if not ok or len(entries) < 2:
            return None
        flow.remaining = float(size)
        macro = _MacroState(entries, pinned_hold, pinned_refund)
        flow._macro = macro
        self.flows_started += 1
        self.macro_coalesced += 1
        self._flows[flow.flow_id] = flow
        for link in flow.path:
            self._links[link.link_id].flows[flow.flow_id] = flow
        self._macro_live += 1
        if self._use_components:
            comp = self._comp_attach(flow)
            comp.n_macro += 1
        end = entries[-1].f
        macro.slot = TimerSlot(self.env)
        macro.slot.arm(end, flow, lambda f_=flow: self._on_macro_timer(f_))
        flow._timer_at = end
        return flow

    def _split_macros_on(self, path: Sequence[Link]) -> None:
        """Split every macro-flow whose component *path* would touch."""
        macros: dict[int, Flow] = {}
        for link in path:
            state = self._links.get(link.link_id)
            if state is None:
                continue
            for other in state.flows.values():
                if other._macro is not None:
                    macros[other.flow_id] = other
        if not macros:
            return
        now = self.env.now
        for other in sorted(macros.values(), key=_flow_order):
            self._split_macro(other, now)

    def _split_macro(self, flow: Flow, now: float) -> None:
        """Disturbance fallback: return to per-batch granularity.

        Transmit phase — the macro mutates *in place* into its current
        virtual batch's flow (batch size, rate, virtual start as
        arrival order), so the caller's ensuing reallocation treats it
        exactly like the established per-batch flow it replaces; its
        done-event then fires at the batch boundary.  Setup window —
        the per-batch world has no flow in flight between batches, so
        the macro vanishes immediately and the engine resumes the
        batch loop at the next virtual start.  Either way the already-
        elapsed batches are emitted as virtual per-batch telemetry
        first, keeping the event stream decomposed.
        """
        macro = flow._macro
        self.macro_splits += 1
        self._touch_contention()
        self._advance_flow(flow, now)
        if macro.slot is not None:
            macro.slot.disarm()
        entry = macro.entries[macro.index]
        self._publish_virtual_batches(flow, macro, macro.index)
        bus = self.env.telemetry
        if now >= entry.s:
            # Become the current per-batch flow F_k.
            if macro.pinned_refund is not None:
                target = min(entry.b, macro.pinned_hold)
                surplus = macro.pinned_hold - target
                if surplus > 0:
                    macro.pinned_refund(surplus)
                    macro.pinned_hold = target
            flow._macro = None
            self._macro_resolved(flow)
            comp = flow._comp
            if comp is not None:
                # The conversion rewrites arrival_order, so the
                # component's arrival-sorted member list must re-sort.
                comp.order_dirty = True
            flow.macro_outcome = MacroOutcome(
                kind="converted", rem_before=entry.rem_before, block=entry.b
            )
            flow.size = entry.b
            flow.remaining = macro.cur_rem
            flow.rate = entry.rate
            flow.started_at = entry.s
            flow.arrival_order = entry.s
            flow._last_update = now
            if bus is not None:
                links = tuple(link.link_id for link in flow.path)
                bus.publish(FlowStarted(
                    t=entry.s,
                    flow_id=flow.flow_id,
                    tag=flow.tag,
                    size=flow.size,
                    links=links,
                    src=flow.path[0].src,
                    dst=flow.path[-1].dst,
                    nominal_bw=min(link.capacity for link in flow.path),
                    owner=flow.owner,
                    capacities=tuple(link.capacity for link in flow.path),
                ))
                bus.publish(FlowsReallocated(
                    t=entry.s,
                    trigger="start",
                    flow_id=flow.flow_id,
                    component=(flow.flow_id,),
                    links=links,
                    rescheduled=(flow.flow_id,),
                    rates=(entry.rate,),
                ))
        else:
            # Setup window: refund the whole pinned claim and hand the
            # loop back to the engine at the virtual batch start.
            if macro.pinned_refund is not None and macro.pinned_hold > 0:
                macro.pinned_refund(macro.pinned_hold)
                macro.pinned_hold = 0.0
            flow.macro_outcome = MacroOutcome(
                kind="setup",
                rem_before=entry.rem_before,
                block=entry.b,
                resume_at=entry.s,
            )
            flow._macro = None
            self._macro_resolved(flow)
            self._detach(flow)
            flow.done.succeed(None)

    def _macro_resolved(self, flow: Flow) -> None:
        """Bookkeeping when a flow stops being a macro-flow."""
        self._macro_live -= 1
        comp = flow._comp
        if comp is not None:
            comp.n_macro -= 1
            comp.cache = None

    def split_macro_for_pinned(self, flow: Flow) -> None:
        """Pinned-pool contention: cut the macro at its batch boundary.

        Called synchronously from ``Container.on_blocked`` when a get
        on the macro's pinned pool would block.  Mid-batch the macro is
        truncated to finish at the current boundary — the surplus claim
        above the in-flight batch's own hold is refunded immediately,
        matching what the eager per-batch world would be holding right
        now.  In a setup window the whole claim is refunded and the
        engine resumes per-batch at once.
        """
        macro = flow._macro
        if macro is None or macro.truncate_at is not None:
            return
        now = self.env.now
        # Seek only: the eager world would not advance any flow here (a
        # container get is not a network event), so a partial advance
        # would split one batch's byte credit into two float adds.
        self._advance_macro(flow, now, partial=False)
        entry = macro.entries[macro.index]
        self.macro_splits += 1
        if now >= entry.s:
            macro.truncate_at = macro.index
            if macro.pinned_refund is not None:
                target = min(entry.b, macro.pinned_hold)
                surplus = macro.pinned_hold - target
                if surplus > 0:
                    macro.pinned_refund(surplus)
                    macro.pinned_hold = target
            macro.slot.arm(
                entry.f, flow, lambda f_=flow: self._on_macro_timer(f_)
            )
            flow._timer_at = entry.f
        else:
            self._publish_virtual_batches(flow, macro, macro.index)
            if macro.pinned_refund is not None and macro.pinned_hold > 0:
                macro.pinned_refund(macro.pinned_hold)
                macro.pinned_hold = 0.0
            flow.macro_outcome = MacroOutcome(
                kind="setup",
                rem_before=entry.rem_before,
                block=entry.b,
                resume_at=entry.s,
            )
            flow._macro = None
            self._macro_resolved(flow)
            self._detach(flow)
            flow.done.succeed(None)

    def _on_macro_timer(self, flow: Flow) -> None:
        """Analytic completion (or truncation boundary) of a macro."""
        if flow.done.triggered or flow.flow_id not in self._flows:
            return
        macro = flow._macro
        if macro.slot is not None:
            macro.slot.fired()
        now = self.env.now
        self._advance_flow(flow, now)
        if macro.truncate_at is not None:
            entry = macro.entries[macro.truncate_at]
            upto = macro.truncate_at + 1
            flow.macro_outcome = MacroOutcome(
                kind="truncated", rem_before=entry.rem_before, block=entry.b
            )
        else:
            upto = len(macro.entries)
            flow.macro_outcome = MacroOutcome(kind="completed")
        self._publish_virtual_batches(flow, macro, upto)
        flow._macro = None
        self._macro_resolved(flow)
        flow.remaining = 0.0
        self._detach(flow)
        flow.done.succeed(self._stats(flow))
        # No reallocation and no live FlowFinished: the macro was alone
        # in its component by construction (a lone per-batch finish
        # publishes no epoch either), and its telemetry was emitted as
        # the virtual per-batch decomposition above.

    def _publish_virtual_batches(
        self, flow: Flow, macro: _MacroState, upto: int
    ) -> None:
        """Emit the per-batch-equivalent event stream for batches < *upto*.

        Each virtual batch gets a fresh flow id and the exact
        FlowStarted / single-flow FlowsReallocated / FlowFinished
        triple the per-batch world would have published, at the
        virtual timestamps.  Ids differ from a real per-batch run
        (they are allocated lazily); consumers key on ids, not their
        values, so span trees and blame tiling stay exact.
        """
        if macro.published >= upto:
            return
        bus = self.env.telemetry
        if bus is None:
            macro.published = upto
            return
        links = tuple(link.link_id for link in flow.path)
        src = flow.path[0].src
        dst = flow.path[-1].dst
        nominal = min(link.capacity for link in flow.path)
        caps = tuple(link.capacity for link in flow.path)
        for j in range(macro.published, upto):
            entry = macro.entries[j]
            vid = next(Flow._ids)
            bus.publish(FlowStarted(
                t=entry.s,
                flow_id=vid,
                tag=flow.tag,
                size=entry.b,
                links=links,
                src=src,
                dst=dst,
                nominal_bw=nominal,
                owner=flow.owner,
                capacities=caps,
            ))
            bus.publish(FlowsReallocated(
                t=entry.s,
                trigger="start",
                flow_id=vid,
                component=(vid,),
                links=links,
                rescheduled=(vid,),
                rates=(entry.rate,),
            ))
            bus.publish(FlowFinished(
                t=entry.f,
                flow_id=vid,
                tag=flow.tag,
                size=entry.b,
                links=links,
                src=src,
                dst=dst,
                started_at=entry.s,
                owner=flow.owner,
            ))
        macro.published = upto

    # -- progress accounting ----------------------------------------------
    def _advance_flow(self, flow: Flow, now: float) -> None:
        """Drain bytes for *flow* since its last update."""
        if flow._macro is not None:
            self._advance_macro(flow, now)
            return
        st = flow._astate
        if st is not None:
            # Analytic members progress through the shared service
            # curve; per-flow byte draining would double-count.
            st.advance(now)
            flow._last_update = now
            return
        elapsed = now - flow._last_update
        if elapsed > 0 and flow._rate > 0:
            moved = min(flow._remaining, flow._rate * elapsed)
            flow._remaining -= moved
            for link in flow.path:
                self._links[link.link_id].bytes_carried += moved
        flow._last_update = now

    def _advance_macro(self, flow: Flow, now: float, partial: bool = True) -> None:
        """Replay the per-batch lazy-advance arithmetic virtually.

        Walks the macro's virtual batches up to *now* using the same
        float operations, in the same order, that the equivalent
        per-batch flows would execute for the same advance instants —
        so ``bytes_carried`` stays bit-identical between modes even
        under mid-flight queries.  Batch residuals vanish at batch
        boundaries exactly like the per-batch drift guard drops them.

        With ``partial=False`` the in-flight batch is *not* advanced to
        *now* — only wholly completed batches are settled.  Used where
        the per-batch world would not have advanced the flow at *now*
        at all (e.g. pinned-pool contention: a container ``get`` is not
        a network event), since splitting one batch's credit into two
        adds would perturb the float accumulation by an ulp.
        """
        macro = flow._macro
        entries = macro.entries
        last = len(entries) - 1
        self._touch_contention()
        while True:
            entry = entries[macro.index]
            if now < entry.s:
                break  # setup window: no virtual flow in flight
            if now < entry.f and not partial:
                break  # seek mode: leave the in-flight batch untouched
            t_end = now if now < entry.f else entry.f
            elapsed = t_end - macro.cur_last
            if elapsed > 0 and entry.rate > 0:
                moved = min(macro.cur_rem, entry.rate * elapsed)
                macro.cur_rem -= moved
                for link in flow.path:
                    self._links[link.link_id].bytes_carried += moved
            macro.cur_last = t_end
            if now < entry.f or macro.index == last:
                break
            macro.index += 1
            nxt = entries[macro.index]
            macro.cur_rem = nxt.b
            macro.cur_last = nxt.s
        entry = entries[macro.index]
        # Introspection mirrors the per-batch world: during a setup
        # window no flow is transmitting, so the observable rate is 0.
        flow.remaining = (entry.rem_before - entry.b) + macro.cur_rem
        flow.rate = entry.rate if now >= entry.s else 0.0
        flow._last_update = now

    def _advance_component(self, flows: Sequence[Flow]) -> None:
        now = self.env.now
        for flow in flows:
            self._advance_flow(flow, now)

    def _advance_all(self) -> None:
        now = self.env.now
        for flow in self._flows.values():
            self._advance_flow(flow, now)

    # -- component discovery ------------------------------------------------
    def _component_with(self, flow: Flow) -> tuple[list[Flow], dict[str, _LinkState]]:
        """The connected component containing *flow* (which is attached).

        Flows are returned sorted by flow_id; links are every link any
        member crosses (capacity constraints), keyed by link_id.
        """
        if self.allocator == "fullscan":
            for flows, links in self._partition_all():
                if any(f.flow_id == flow.flow_id for f in flows):
                    return flows, links
            raise SimulationError(
                f"flow {flow.flow_id} missing from component scan"
            )
        members: dict[int, Flow] = {flow.flow_id: flow}
        links: dict[str, _LinkState] = {}
        stack = [flow]
        while stack:
            current = stack.pop()
            for link in current.path:
                lid = link.link_id
                if lid in links:
                    continue
                state = self._links[lid]
                links[lid] = state
                for other in state.flows.values():
                    if other.flow_id not in members:
                        members[other.flow_id] = other
                        stack.append(other)
        component = sorted(members.values(), key=_flow_order)
        return component, links

    def _neighbors(self, flow: Flow) -> list[Flow]:
        """Flows sharing a link with *flow*, in arrival order."""
        members: dict[int, Flow] = {}
        for link in flow.path:
            for other in self._links[link.link_id].flows.values():
                if other.flow_id != flow.flow_id:
                    members[other.flow_id] = other
        return sorted(members.values(), key=_flow_order)

    def _partition_all(self) -> list[tuple[list[Flow], dict[str, _LinkState]]]:
        """All components, re-derived from scratch (fullscan reference)."""
        parent: dict[int, int] = {fid: fid for fid in self._flows}

        def find(a: int) -> int:
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        owner: dict[str, int] = {}
        for fid, flow in self._flows.items():
            for link in flow.path:
                other = owner.setdefault(link.link_id, fid)
                ra, rb = find(fid), find(other)
                if ra != rb:
                    parent[max(ra, rb)] = min(ra, rb)
        groups: dict[int, tuple[list[Flow], dict[str, _LinkState]]] = {}
        for fid, flow in self._flows.items():
            flows, links = groups.setdefault(find(fid), ([], {}))
            flows.append(flow)
            for link in flow.path:
                links.setdefault(link.link_id, self._links[link.link_id])
        for flows, _links_ in groups.values():
            flows.sort(key=_flow_order)
        return [groups[root] for root in sorted(groups)]

    # -- reallocation -----------------------------------------------------
    def _reallocate_scoped(
        self, flows: Sequence[Flow], trigger: str, changed_id: int
    ) -> None:
        """Recompute rates for every component touching *flows*.

        *flows* seed the affected region (flow_id-sorted); after a
        departure they may span several newly split components, each
        advanced at its old rates and then recomputed independently.
        """
        seen: set[int] = set()
        for flow in flows:
            if flow.flow_id in seen:
                continue
            if self._use_components:
                comp = flow._comp
                if comp is not None:
                    # The classic path settles per-flow state eagerly;
                    # leave the fast regime before recomputing.
                    self._enter_classic(comp)
            component, links = self._component_with(flow)
            seen.update(f.flow_id for f in component)
            self._advance_component(component)
            self._recompute_component(component, links, trigger, changed_id)
            if self._use_components and flow._comp is None:
                # Post-split rebuild: the BFS just re-derived this
                # part's exact membership, so register it.
                self._comp_rebuild(component, links)

    def _recompute_component(
        self,
        component: list[Flow],
        links: dict[str, _LinkState],
        trigger: str,
        changed_id: int,
    ) -> None:
        self.realloc_count += 1
        self.realloc_flows += len(component)
        self._touch_contention()
        rates = self._compute_rates(component, links)
        rescheduled: list[int] = []
        for flow in component:
            new_rate = rates[flow]
            if (
                new_rate == flow.rate
                and flow.remaining > _EPS
                and (flow._timer is not None or new_rate <= _EPS)
            ):
                # Exactly unchanged: the pending completion timer (or
                # starved no-timer state) is still correct as-is.
                self.timer_elisions += 1
                continue
            if (
                flow._timer is not None
                and flow.remaining > _EPS
                and new_rate > _EPS
                and self.env.now + flow.remaining / new_rate == flow._timer_at
            ):
                # Completion-time elision: the rate moved, but the
                # recomputed completion instant lands bit-for-bit on the
                # armed timer (e.g. simultaneous departures perturb and
                # restore a symmetric share).  Keep the timer; only the
                # rate needs updating for progress accounting.
                flow.rate = new_rate
                self.timer_elisions += 1
                continue
            flow.rate = new_rate
            self._schedule_completion(flow)
            rescheduled.append(flow.flow_id)
        self.timer_reschedules += len(rescheduled)
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(FlowsReallocated(
                t=self.env.now,
                trigger=trigger,
                flow_id=changed_id,
                component=tuple(f.flow_id for f in component),
                links=tuple(links),
                rescheduled=tuple(rescheduled),
                rates=tuple(f.rate for f in component),
            ))

    def _reallocate_legacy(self, trigger: str, changed_id: int) -> None:
        """Original behaviour: global recompute + rearm every timer."""
        flows = sorted(self._flows.values(), key=lambda f: f.flow_id)
        self.realloc_count += 1
        self.realloc_flows += len(flows)
        self._touch_contention()
        rates = self._compute_rates(flows, self._links)
        for flow, rate in rates.items():
            flow.rate = rate
        # Completion timers are (re)armed in flow_id order: the heap
        # breaks same-time ties by scheduling sequence, so this keeps
        # event ordering independent of set/hash iteration order.
        for flow in flows:
            self._schedule_completion(flow)
        self.timer_reschedules += len(flows)
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(FlowsReallocated(
                t=self.env.now,
                trigger=trigger,
                flow_id=changed_id,
                component=tuple(f.flow_id for f in flows),
                links=tuple(self._links),
                rescheduled=tuple(f.flow_id for f in flows),
                rates=tuple(f.rate for f in flows),
            ))

    # -- persistent component registry (incremental/analytic) -------------
    def _comp_attach(self, flow: Flow) -> "_Component":
        """Register an attached *flow*, merging bridged components.

        The flow is already in the link flow dicts.  Components the
        flow's path bridges are merged into the largest one (fewest
        members to re-index); any merge invalidates the level cache.
        """
        comps: list[_Component] = []
        for link in flow.path:
            st = self._links[link.link_id]
            c = st.comp
            if c is not None and c not in comps:
                comps.append(c)
        if not comps:
            comp = _Component(self.env, self._arm)
        else:
            comp = comps[0]
            for c in comps[1:]:
                if c.live > comp.live:
                    comp = c
            for c in comps:
                if c is not comp:
                    self._comp_absorb(comp, c)
            if len(comps) > 1:
                comp.cache = None
        flow._comp = comp
        flow._order_idx = len(comp.order)
        comp.order.append(flow)
        comp.live += 1
        if flow.min_rate > 0.0 or flow.rate_cap != float("inf"):
            comp.n_unclean += 1
        for link in flow.path:
            st = self._links[link.link_id]
            prev = st.epoch_comp
            if prev is not None:
                if prev is not comp:
                    # Re-adoption by a *different* component: flush the
                    # old generation's deferred byte credits first, so
                    # this link's accumulator keeps eager add order.
                    self._epoch_barrier(prev)
                # Same component: its (still live) ledger keeps the
                # deferred credits in order; st.comp covers queries.
                st.epoch_comp = None
            st.comp = comp
            comp.links[link.link_id] = st
        return comp

    def _comp_absorb(self, target: "_Component", source: "_Component") -> None:
        """Merge *source* into *target* (arrival bridged them)."""
        if target.region.mode == "analytic":
            self._materialize_analytic(target)
        if source.region.mode == "analytic":
            self._materialize_analytic(source)
        # Merges restore uniform eager state on both sides first: the
        # merged fill advances every member at the merge instant, which
        # the per-side ledgers cannot express.
        self._epoch_barrier(target)
        self._epoch_barrier(source)
        # Classic mode's invariant is "armed member <=> real timer".
        # When one side is classic the merged component runs classic,
        # so the fast side's conceptual instants must become real
        # timers *at their recorded values* — letting _enter_fast
        # disarm them later would recompute now + rem/rate, which can
        # land one ulp off the instant the eager regime carries.
        if source.region.mode == "classic" and target.region.mode == "fast":
            target.region.disarm()
            self._materialize_timers(target)
            target.region.mode = "classic"
        elif target.region.mode == "classic" and source.region.mode == "fast":
            self._materialize_timers(source)
        source.region.disarm()
        for f in source.order:
            if f is None:
                continue
            f._comp = target
            f._order_idx = len(target.order)
            f._level_idx = None
            target.order.append(f)
        target.live += source.live
        target.n_unclean += source.n_unclean
        target.n_macro += source.n_macro
        for lid, st in source.links.items():
            st.comp = target
            target.links[lid] = st
        source.order.clear()
        source.links.clear()
        source.live = 0
        # Appended members break arrival order; re-sort on next use.
        target.order_dirty = True
        target.cache = None

    def _comp_members(self, comp: "_Component") -> list[Flow]:
        """Live members in arrival order; compacts/re-sorts lazily."""
        order = comp.order
        if comp.order_dirty:
            members = [f for f in order if f is not None]
            members.sort(key=_flow_order)
            comp.order = members
            for i, f in enumerate(members):
                f._order_idx = i
            comp.order_dirty = False
            return list(members)
        if comp.live != len(order):
            members = [f for f in order if f is not None]
            comp.order = members
            for i, f in enumerate(members):
                f._order_idx = i
            return list(members)
        return list(order)

    def _comp_rebuild(
        self, component: list[Flow], links: dict[str, _LinkState]
    ) -> None:
        """Register a freshly BFS-derived component (post-split)."""
        comp = _Component(self.env, self._arm)
        comp.region.mode = "classic"  # _recompute_component just armed timers
        comp.order = list(component)
        comp.live = len(component)
        for i, f in enumerate(component):
            f._comp = comp
            f._order_idx = i
            f._level_idx = None
            if f.min_rate > 0.0 or f.rate_cap != float("inf"):
                comp.n_unclean += 1
            if f._macro is not None:
                comp.n_macro += 1
        comp.links = dict(links)
        for st in links.values():
            st.comp = comp

    def _comp_dissolve(self, comp: "_Component") -> None:
        """Drop the registry entry; a scoped BFS will re-derive parts."""
        if comp.region.mode == "analytic":
            self._materialize_analytic(comp)
        self._epoch_barrier(comp)
        comp.region.disarm()
        # The parts re-derived by the BFS run classic; hand each member
        # its conceptual completion instant as a real timer so elision
        # keeps it rather than recomputing a possibly-1-ulp-off one.
        self._materialize_timers(comp)
        for st in comp.links.values():
            if st.comp is comp:
                st.comp = None
        comp.links.clear()
        for f in comp.order:
            if f is not None:
                f._comp = None
                f._level_idx = None
        comp.order.clear()
        comp.live = 0
        comp.cache = None

    # -- timer-regime transitions ------------------------------------------
    def _materialize_timers(self, comp: "_Component") -> None:
        """Realize conceptual fast-regime instants as per-flow timers.

        The armed instant is carried over bit-for-bit: re-deriving it
        as ``now + remaining / rate`` can land one ulp away once the
        lazy advances split the byte drain into a different float
        subtraction chain, and the classic elision predicates only
        keep a timer whose recorded instant matches exactly.
        """
        for f in comp.order:
            if f is None or f._timer_seq == -1:
                continue
            f._timer_seq = -1
            if f._timer is None and f._macro is None:
                f._timer = self.env.schedule_at(
                    f._timer_at, lambda g=f: self._on_timer(g)
                )

    def _enter_classic(self, comp: "_Component") -> None:
        """Leave the comp-timer regime; per-flow timers take over.

        Every armed conceptual instant becomes a real timer at the
        same instant, so the ensuing _recompute_component elides it
        exactly as a never-fast run would.
        """
        if comp.region.mode == "classic":
            return
        if comp.region.mode == "analytic":
            self._materialize_analytic(comp)
        self._epoch_barrier(comp)
        comp.region.disarm()
        self._materialize_timers(comp)
        comp.region.mode = "classic"
        comp.cache = None

    def _enter_fast(self, comp: "_Component") -> None:
        """Collapse per-flow timers into the single component timer.

        An armed per-flow timer becomes a conceptual (instant, seq)
        pair — the instant is kept bit-for-bit, the seq is re-based in
        member order — and the handle is cancelled.
        """
        if comp.region.mode == "analytic":
            self._materialize_analytic(comp)
            return
        if comp.region.mode != "classic":
            return
        for f in comp.order:
            if f is None:
                continue
            if f._timer is not None:
                f._timer.cancel()
                f._timer = None
                f._timer_seq = self._arm_seq()
            else:
                f._timer_seq = -1
        comp.region.mode = "fast"

    def _materialize_analytic(self, comp: "_Component") -> None:
        """Settle every member's eager slots out of the service curve."""
        region = comp.region
        st = region.astate
        if st is None:
            if region.mode == "analytic":
                region.mode = "fast"
            return
        self._touch_contention()
        now = self.env.now
        st.advance(now)
        v = st.v
        for f in comp.order:
            if f is None or f._astate is not st:
                continue
            rem = f._v_done - v
            f._remaining = rem if rem > 0.0 else 0.0
            f._rate = st.rate
            f._last_update = now
            f._astate = None
            f._timer_seq = -1
        region.disarm()
        region.astate = None
        region.mode = "fast"
        comp.cache = None

    # -- component-scoped dispatch -----------------------------------------
    def _comp_realloc(
        self, comp: "_Component", trigger: str, changed: Flow, arrival: bool
    ) -> None:
        """Route one arrival/departure through the cheapest exact path.

        Clean components (maxmin, no reservations/caps/macros, bus
        detached) take the cached-waterfill fast path — or closed-form
        analytic completion for single-link components under the
        ``analytic`` allocator.  Everything else degrades to the
        classic scoped pass, which is verbatim PR-2 behaviour.
        """
        clean = (
            self.policy == "maxmin"
            and comp.n_unclean == 0
            and comp.n_macro == 0
            and self.env.telemetry is None
        )
        if clean:
            if self.allocator == "analytic" and len(comp.links) == 1:
                self._analytic_realloc(comp, changed, arrival)
            elif self.allocator == "epoch":
                self._epoch_realloc(comp, changed, arrival)
            else:
                self._fast_realloc(comp, changed, arrival)
            return
        if arrival:
            self._reallocate_scoped([changed], trigger, changed.flow_id)
        else:
            self._reallocate_scoped(
                self._neighbors(changed), trigger, changed.flow_id
            )

    def _arm_seq(self) -> int:
        return self._arm.next()

    # -- fast regime: cached bottleneck levels, one component timer --------
    def _fast_realloc(
        self, comp: "_Component", changed: Flow, arrival: bool
    ) -> None:
        now = self.env.now
        if comp.region.mode != "fast":
            self._enter_fast(comp)
        members = self._comp_members(comp)
        self.realloc_count += 1
        self.realloc_flows += len(members)
        for f in members:
            self._advance_flow(f, now)
        levels = None
        cache = comp.cache
        if cache is not None:
            scan = splice_scan(changed, cache, self._links, arrival)
            if scan.j_star is not None:
                levels = self._splice_fill(cache, scan, members, now)
                self.cache_hits += 1
        if levels is None:
            self.cache_rebuilds += 1
            for f in members:
                f._level_idx = None
            residual = {
                lid: st.link.capacity for lid, st in comp.links.items()
            }
            levels = self._clean_fill(members, residual, 0, 0.0, now)
        comp.cache = levels
        self._arm_comp_timer(comp, members)

    def _splice_fill(
        self, cache: list, scan, members: list[Flow], now: float
    ) -> list:
        """Reuse levels below ``j*`` verbatim; recompute the rest."""
        j = scan.j_star
        self.levels_spliced += j
        # Patch the reused levels' entry snapshots with the changed
        # flow's new-population chains so future splices on its links
        # resume from exact state.
        for i, patch in enumerate(scan.history):
            entry = cache[i].entry_residual
            for lid, val in patch.items():
                entry[lid] = val
        # Resume residual: cached snapshot at pass j (absent when j is
        # past the last cached level), overlaid with the replayed
        # chains for the changed flow's links.
        if j < len(cache):
            residual = dict(cache[j].entry_residual)
        else:
            residual = {}
        residual.update(scan.flink_residuals)
        cum0 = cache[j - 1].cum if j > 0 else 0.0
        unfrozen: list[Flow] = []
        for f in members:
            lvl = f._level_idx
            if lvl is None or lvl >= j:
                f._level_idx = None
                unfrozen.append(f)
            else:
                # Spliced: rate provably unchanged.  Apply the classic
                # elision decision anyway (a drained flow is re-armed
                # for immediate completion exactly like classic would).
                self._bind_fast(f, f._rate, now)
        tail = self._clean_fill(unfrozen, residual, j, cum0, now)
        return cache[:j] + tail

    def _clean_fill(
        self,
        flows: list[Flow],
        residual: dict[str, float],
        start_index: int,
        cum0: float,
        now: float,
    ) -> list:
        """Progressive max-min fill over clean flows, recording levels.

        Mirrors :meth:`_fill_maxmin` restricted to the clean case
        (no reservations, no caps): identical delta arithmetic,
        identical freeze predicate, identical accumulation order — the
        shared ``cum`` prefix equals every per-flow accumulator because
        all unfrozen flows receive the same adds in the same order.
        """
        levels: list = []
        unfrozen = list(flows)  # compacted in place below
        cum = cum0
        idx = start_index
        # A single-link component (the fan-in shape) needs no crossing
        # dict: every member crosses the one link, so the count is
        # len(unfrozen) and the subtraction chain runs on a local —
        # the same floats in the same order, minus the dict traffic.
        single = len(residual) == 1
        for _ in range(len(flows) + 1):
            if not unfrozen:
                break
            if single:
                ((lid, res),) = residual.items()
                count = len(unfrozen)
                delta = res / count
                entry = {lid: res}
                if delta > _EPS:
                    cum = cum + delta
                    for _ in range(count):
                        res -= delta
                    residual[lid] = res
                if res <= _EPS:
                    frozen = unfrozen
                    unfrozen = []
                else:
                    frozen = []
            else:
                crossing: dict[str, int] = {}
                for f in unfrozen:
                    for link in f.path:
                        lid = link.link_id
                        crossing[lid] = crossing.get(lid, 0) + 1
                delta = min(
                    residual[lid] / count
                    for lid, count in crossing.items()
                )
                entry = dict(residual)
                if delta > _EPS:
                    cum = cum + delta
                    for f in unfrozen:
                        for link in f.path:
                            residual[link.link_id] -= delta
                write = 0
                frozen = []
                for f in unfrozen:
                    for link in f.path:
                        if residual[link.link_id] <= _EPS:
                            frozen.append(f)
                            break
                    else:
                        unfrozen[write] = f
                        write += 1
                del unfrozen[write:]
            if not frozen:
                # Terminal: loop exits with flows still unfrozen (no
                # link crossed the epsilon).  Never spliced over.
                level = Level(idx, delta, cum, entry, terminal=True)
                level.members = list(unfrozen)
                levels.append(level)
                for f in unfrozen:
                    f._level_idx = idx
                    self._bind_fast(f, cum, now)
                self.levels_recomputed += 1
                return levels
            level = Level(idx, delta, cum, entry)
            level.members = frozen
            levels.append(level)
            self.levels_recomputed += 1
            for f in frozen:
                f._level_idx = idx
                self._bind_fast(f, cum, now)
            idx += 1
        return levels

    def _bind_fast(self, flow: Flow, new_rate: float, now: float) -> None:
        """Apply a recomputed rate under the comp-timer regime.

        Mirrors _recompute_component's two elision predicates and
        _schedule_completion's arithmetic exactly, with "armed"
        meaning ``_timer_seq != -1`` instead of a live handle, so the
        conceptual (instant, seq) ordering matches what the per-flow
        heap would contain bit-for-bit.
        """
        ledger = self._cur_ledger
        if ledger is not None:
            self._bind_epoch(flow, new_rate, now, ledger)
            return
        self._touch_contention()
        armed = flow._timer_seq != -1
        rem = flow._remaining
        if (
            new_rate == flow._rate
            and rem > _EPS
            and (armed or new_rate <= _EPS)
        ):
            self.timer_elisions += 1
            return
        if (
            armed
            and rem > _EPS
            and new_rate > _EPS
            and now + rem / new_rate == flow._timer_at
        ):
            flow._rate = new_rate
            self.timer_elisions += 1
            return
        flow._rate = new_rate
        self.timer_reschedules += 1
        if rem <= _EPS:
            flow._timer_at = now
            flow._timer_seq = self._arm_seq()
            return
        if new_rate <= _EPS:
            flow._timer_seq = -1  # starved
            return
        flow._timer_at = now + rem / new_rate
        flow._timer_seq = self._arm_seq()

    def _arm_comp_timer(
        self, comp: "_Component", members: list[Flow]
    ) -> None:
        """(Re-)arm the single component timer at the earliest armed
        conceptual instant; ties resolve by arming seq like the heap."""
        best: Optional[Flow] = None
        for f in members:
            if f._timer_seq == -1:
                continue
            if best is None or (f._timer_at, f._timer_seq) < (
                best._timer_at,
                best._timer_seq,
            ):
                best = f
        slot = comp.region.slot
        if best is None:
            slot.disarm()
            return
        slot.arm(
            best._timer_at, best, lambda c=comp: self._on_comp_timer(c)
        )

    def _on_comp_timer(self, comp: "_Component") -> None:
        slot = comp.region.slot
        armed_at = slot.at
        flow = slot.fired()
        if (
            comp.region.mode != "fast"
            or flow is None
            or flow._comp is not comp
            or flow._timer_seq == -1
            or flow._timer_at != armed_at
        ):
            return  # stale arming; a newer state superseded it
        now = self.env.now
        self._advance_flow(flow, now)
        # Same float-drift guard as _on_timer.
        threshold = max(1e-6, flow.size * 1e-12)
        if flow._remaining > threshold:
            rate = flow._rate
            eta = flow._remaining / rate if rate > _EPS else float("inf")
            if eta != float("inf") and now + eta > now:
                flow._timer_at = now + eta
                flow._timer_seq = self._arm_seq()
                self._arm_comp_timer(comp, self._comp_members(comp))
                return
            if eta == float("inf"):
                flow._timer_seq = -1  # starved
                self._arm_comp_timer(comp, self._comp_members(comp))
                return
        if len(flow.path) == 1:
            flow._remaining = 0.0
            self._detach(flow)
            flow.done.succeed(self._stats(flow))
            if comp.live:
                self._comp_realloc(comp, "finish", flow, arrival=False)
        else:
            neighbors = self._neighbors(flow)
            flow._timer_seq = -1  # finishing here; no timer to carry over
            self._comp_dissolve(comp)
            flow._remaining = 0.0
            self._detach(flow)
            flow.done.succeed(self._stats(flow))
            self._reallocate_scoped(neighbors, "finish", flow.flow_id)
        bus = self.env.telemetry
        if bus is not None:
            # Bus attached mid-run: emit the finish even though the
            # fast regime published no rate epochs for this flow.
            bus.publish(FlowFinished(
                t=self.env.now,
                flow_id=flow.flow_id,
                tag=flow.tag,
                size=flow.size,
                links=tuple(link.link_id for link in flow.path),
                src=flow.path[0].src,
                dst=flow.path[-1].dst,
                started_at=flow.started_at,
                owner=flow.owner,
            ))

    # -- epoch regime: deferred advances, heap completions, no-dissolve ----
    def _epoch_realloc(
        self, comp: "_Component", changed: Flow, arrival: bool
    ) -> None:
        """Clean-component reallocation with deferred member advances.

        Identical rate computation to :meth:`_fast_realloc` (same
        splice scan, same fill, same elision predicates), but instead
        of advancing every member's ``remaining`` at every event
        (Θ(members), the eager fast regime's per-event cost), the event
        becomes one recorded ledger boundary.  A member's subtraction
        chain is replayed — same floats, same order — only when it is
        actually observed: at its own completion, a rate change, or a
        barrier.  Per-event cost drops to O(changed members + log n).
        """
        now = self.env.now
        region = comp.region
        if region.mode != "fast":
            self._enter_fast(comp)
        self.realloc_count += 1
        self.realloc_flows += comp.live
        ledger = region.ledger
        if ledger is not None and ledger.epochs >= _LEDGER_MAX_EPOCHS:
            # Bound replay-chain length (float-error budget of the
            # elision guard) and ledger memory.
            self._epoch_barrier(comp)
            ledger = None
        if ledger is not None:
            if ledger.bounds[-1] != now:
                # Same-instant events collapse into one epoch: the
                # eager advance at the second event has elapsed == 0
                # and is a no-op for both chains and byte credits.
                self.epoch_boundaries += 1
                ledger.boundary(now, None)
            if changed._eled is None and changed.flow_id in self._flows:
                # Arrival: the new member's chain starts at this epoch
                # (its initial rate is set by the fill below).
                ledger.join(changed, ledger.epochs, changed._rate)
            cache = comp.cache
            scan = (
                splice_scan(changed, cache, self._links, arrival)
                if cache is not None else None
            )
            self._cur_ledger = ledger
            try:
                if scan is not None and scan.j_star is not None:
                    # Bucket splice: only tail-level members are
                    # visited, so the whole event costs O(tail) —
                    # independent of component size.  Spliced members'
                    # rates are provably unchanged; their eager elision
                    # decisions are no-ops skipped wholesale.
                    levels = self._epoch_splice_fill(
                        comp, cache, scan, changed, arrival, now
                    )
                    self.cache_hits += 1
                else:
                    members = self._comp_members(comp)
                    self.cache_rebuilds += 1
                    for f in members:
                        f._level_idx = None
                    residual = {
                        lid: st.link.capacity
                        for lid, st in comp.links.items()
                    }
                    levels = self._clean_fill(members, residual, 0, 0.0, now)
            finally:
                self._cur_ledger = None
            comp.cache = levels
            self._arm_epoch_timer(comp)
            return
        # (Re)enter the deferred regime: one eager catch-up, then
        # boundaries replace the per-member advances.
        members = self._comp_members(comp)
        for f in members:
            self._advance_flow(f, now)
        ledger = region.start_ledger(now, self._epoch_credit)
        for f in members:
            ledger.join(f, 0, f._rate)
            if f._timer_seq != -1:
                region.push_completion(f)
        levels = None
        self._cur_ledger = ledger
        try:
            cache = comp.cache
            if cache is not None:
                scan = splice_scan(changed, cache, self._links, arrival)
                if scan.j_star is not None:
                    levels = self._splice_fill(cache, scan, members, now)
                    self.cache_hits += 1
            if levels is None:
                self.cache_rebuilds += 1
                for f in members:
                    f._level_idx = None
                residual = {
                    lid: st.link.capacity for lid, st in comp.links.items()
                }
                levels = self._clean_fill(members, residual, 0, 0.0, now)
        finally:
            self._cur_ledger = None
        comp.cache = levels
        self._arm_epoch_timer(comp)

    def _epoch_splice_fill(
        self,
        comp: "_Component",
        cache: list,
        scan,
        changed: Flow,
        arrival: bool,
        now: float,
    ) -> list:
        """Splice via per-level member buckets; only the tail is visited.

        The eager :meth:`_splice_fill` partitions the full member list
        to find the flows at levels ``>= j*`` — Θ(members) even when
        the tail is one flow.  Here the reused levels' buckets are
        simply kept (their members' rates are provably unchanged, so
        the eager bind would elide with no state change) and the tail
        flows come from the tail levels' buckets, filtered for
        staleness and re-sorted into arrival order so the recomputed
        fill runs the same float chains on the same sequence the eager
        partition would have produced.
        """
        j = scan.j_star
        self.levels_spliced += j
        for i, patch in enumerate(scan.history):
            entry = cache[i].entry_residual
            for lid, val in patch.items():
                entry[lid] = val
        if j < len(cache):
            residual = dict(cache[j].entry_residual)
        else:
            residual = {}
        residual.update(scan.flink_residuals)
        cum0 = cache[j - 1].cum if j > 0 else 0.0
        unfrozen: list[Flow] = []
        for level in cache[j:]:
            idx = level.index
            for f in level.members:
                # Stale bucket entries: departed (comp cleared) or
                # re-frozen at another level since recording.
                if f._comp is comp and f._level_idx == idx:
                    f._level_idx = None
                    unfrozen.append(f)
        if arrival and changed._level_idx is None and changed._comp is comp:
            unfrozen.append(changed)
        unfrozen.sort(key=_flow_order)
        # The skipped spliced members' eager binds are all elisions.
        self.timer_elisions += max(0, comp.live - len(unfrozen))
        tail = self._clean_fill(unfrozen, residual, j, cum0, now)
        return cache[:j] + tail

    def _bind_epoch(
        self, flow: Flow, new_rate: float, now: float, ledger: EpochLedger
    ) -> None:
        """Epoch-regime twin of :meth:`_bind_fast`.

        The elision decisions must match the eager regime bit-for-bit,
        but settling a member just to decide "unchanged, keep timer"
        would reintroduce the Θ(members) cost.  Two guards elide
        *without* settling, each with a proof the eager predicate would
        agree:

        * armed, rate unchanged, and ``rate * (timer_at - now)`` is
          more than one byte — the settled remaining equals that
          analytic value up to chain rounding (≤ epochs × size-ulp,
          orders of magnitude under a byte), so the eager
          ``remaining > _EPS`` check cannot disagree;
        * starved (rate 0): zero-rate epochs leave the chain untouched
          (``elapsed > 0 and rate > 0`` guards every term), so the
          stale remaining *is* the exact eager value.

        Anything else settles the member's chain first and then applies
        the verbatim predicates on exact state.
        """
        self._touch_contention()
        armed = flow._timer_seq != -1
        if new_rate == flow._rate:
            if armed and new_rate * (flow._timer_at - now) > 1.0:
                self.timer_elisions += 1
                return
            if not armed and new_rate <= _EPS and flow._remaining > _EPS:
                self.timer_elisions += 1
                return
        ledger.settle_member(flow)
        rem = flow._remaining
        if (
            new_rate == flow._rate
            and rem > _EPS
            and (armed or new_rate <= _EPS)
        ):
            self.timer_elisions += 1
            return
        if (
            armed
            and rem > _EPS
            and new_rate > _EPS
            and now + rem / new_rate == flow._timer_at
        ):
            flow._rate = new_rate
            ledger.set_rate(flow, ledger.epochs, new_rate)
            self.timer_elisions += 1
            return
        flow._rate = new_rate
        ledger.set_rate(flow, ledger.epochs, new_rate)
        self.timer_reschedules += 1
        if rem <= _EPS:
            flow._timer_at = now
            flow._timer_seq = self._arm_seq()
            flow._comp.region.push_completion(flow)
            return
        if new_rate <= _EPS:
            flow._timer_seq = -1  # starved
            return
        flow._timer_at = now + rem / new_rate
        flow._timer_seq = self._arm_seq()
        flow._comp.region.push_completion(flow)

    def _arm_epoch_timer(self, comp: "_Component") -> None:
        """Arm the slot at the completion heap's live head (O(log n))."""
        region = comp.region
        entry = region.pop_earliest(
            lambda f: f._comp is comp and not f.done.triggered
        )
        if entry is None:
            region.slot.disarm()
            return
        at, _seq, flow = entry
        region.slot.arm(at, flow, lambda c=comp: self._on_epoch_timer(c))

    def _on_epoch_timer(self, comp: "_Component") -> None:
        region = comp.region
        slot = region.slot
        armed_at = slot.at
        flow = slot.fired()
        if (
            region.mode != "fast"
            or flow is None
            or flow._comp is not comp
            or flow._timer_seq == -1
            or flow._timer_at != armed_at
            or flow.done.triggered
        ):
            return  # stale arming; a newer state superseded it
        now = self.env.now
        ledger = region.ledger
        if ledger is not None:
            # Settle the due member's chain through the last boundary,
            # then apply the final [boundary, now] step without
            # committing — the drift guard below may reject it.
            ledger.settle_member(flow)
            rem = flow._remaining
            rate = flow._rate
            elapsed = now - ledger.bounds[-1]
            if elapsed > 0 and rate > 0:
                rem = rem - min(rem, rate * elapsed)
        else:
            # Post-barrier firing: the conceptual instant survived a
            # settle; eager state is current.
            self._advance_flow(flow, now)
            rem = flow._remaining
        # Same float-drift guard as _on_timer / _on_comp_timer.
        threshold = max(1e-6, flow.size * 1e-12)
        if rem > threshold:
            # Rare drift re-arm: the eager world advances only this
            # member here (outside the uniform cadence), so restore
            # full eager state first.
            self._epoch_barrier(comp)
            self._advance_flow(flow, now)
            rate = flow._rate
            eta = flow._remaining / rate if rate > _EPS else float("inf")
            if eta != float("inf") and now + eta > now:
                flow._timer_at = now + eta
                flow._timer_seq = self._arm_seq()
                self._arm_comp_timer(comp, self._comp_members(comp))
                return
            if eta == float("inf"):
                flow._timer_seq = -1  # starved
                self._arm_comp_timer(comp, self._comp_members(comp))
                return
            # Finite eta that cannot advance the clock: the eager
            # handlers fall through to completion here, so we must
            # too — stranding the flow as "starved" would leave it
            # unarmed forever at a positive rate.  The barrier above
            # already dropped the ledger; don't replay it below.
            ledger = None
            rem = flow._remaining
        if ledger is not None:
            # Commit the completion boundary; the due member advances
            # first at it, exactly like the eager completion handler.
            self.epoch_boundaries += 1
            e_new = ledger.boundary(now, flow)
            flow._remaining = rem
            flow._eidx = e_new
            ledger.depart(flow, e_new)
            flow._last_update = now
        # Multi-link no-dissolve check: if at most one of the departed
        # flow's links still carries other flows, every neighbour stays
        # connected through that link and the component cannot split —
        # the dissolve + BFS re-derivation (the eager regime's
        # Θ(component) departure cost) is provably unnecessary.
        links_with_others = 0
        for link in flow.path:
            st = self._links[link.link_id]
            n = len(st.flows)
            if flow.flow_id in st.flows:
                n -= 1
            if n:
                links_with_others += 1
        if links_with_others <= 1:
            flow._remaining = 0.0
            self._detach(flow)
            flow.done.succeed(self._stats(flow))
            if comp.live:
                self._comp_realloc(comp, "finish", flow, arrival=False)
        else:
            neighbors = self._neighbors(flow)
            flow._timer_seq = -1  # finishing here; no timer to carry over
            self._comp_dissolve(comp)  # barriers the ledger internally
            flow._remaining = 0.0
            self._detach(flow)
            flow.done.succeed(self._stats(flow))
            self._reallocate_scoped(neighbors, "finish", flow.flow_id)
        bus = self.env.telemetry
        if bus is not None:
            # Bus attached mid-run: emit the finish even though the
            # epoch regime published no rate epochs for this flow.
            bus.publish(FlowFinished(
                t=self.env.now,
                flow_id=flow.flow_id,
                tag=flow.tag,
                size=flow.size,
                links=tuple(link.link_id for link in flow.path),
                src=flow.path[0].src,
                dst=flow.path[-1].dst,
                started_at=flow.started_at,
                owner=flow.owner,
            ))

    def _epoch_barrier(self, comp: "_Component") -> None:
        """Materialize full eager state out of the deferred ledger.

        Settles every member's subtraction chain, replays the shared
        per-link byte accumulators in exact eager order, and drops the
        ledger.  No-op when the component has none.  The slot timer and
        conceptual (instant, seq) armings survive — they are
        eager-exact by construction.
        """
        region = comp.region
        ledger = region.ledger
        if ledger is None:
            return
        self.epoch_settles += 1
        last = ledger.bounds[-1]
        for m in ledger.members:
            if m._eled is ledger:
                ledger.settle_member(m)
                m._last_update = last
        ledger.replay_bytes()
        region.drop_ledger()

    def _epoch_credit(self, flow: Flow, moved: float) -> None:
        """Byte-credit callback for ledger replay (eager add order)."""
        for link in flow.path:
            self._links[link.link_id].bytes_carried += moved

    # -- analytic regime: shared service curve, heap completions ----------
    def _analytic_realloc(
        self, comp: "_Component", changed: Flow, arrival: bool
    ) -> None:
        now = self.env.now
        self.realloc_count += 1
        self.realloc_flows += comp.live
        self.analytic_events += 1
        self._touch_contention()
        st = comp.region.astate
        if comp.region.mode != "analytic" or st is None:
            self._enter_analytic(comp)
            self._arm_analytic_timer(comp, comp.region.astate)
            return
        st.advance(now)
        if arrival:
            st.join(changed, changed._remaining)
        else:
            # The departed member was already settled and detached;
            # its heap entry lazy-deletes.
            st.count -= 1
        st.recompute_rate()
        self._arm_analytic_timer(comp, st)

    def _enter_analytic(self, comp: "_Component") -> None:
        """Move a clean single-link component onto the service curve."""
        self._touch_contention()
        now = self.env.now
        if comp.region.mode == "classic":
            self._enter_fast(comp)
        members = self._comp_members(comp)
        for f in members:
            self._advance_flow(f, now)
        comp.region.disarm()
        (link_state,) = comp.links.values()
        st = AnalyticState(self.env, link_state)
        st.last_t = now
        for f in members:
            f._timer_seq = -1
            st.join(f, f._remaining)
        st.recompute_rate()
        comp.region.astate = st
        comp.region.mode = "analytic"
        comp.cache = None

    def _arm_analytic_timer(self, comp: "_Component", st) -> None:
        entry = st.front() if st is not None else None
        slot = comp.region.slot
        if entry is None or st.rate <= 0.0:
            slot.disarm()
            return
        t_done = st.last_t + (entry[0] - st.v) / st.rate
        now = self.env.now
        if t_done < now:
            t_done = now  # service-curve division rounded below now
        flow = entry[3]
        slot.arm(t_done, flow, lambda c=comp: self._on_analytic_timer(c))

    def _on_analytic_timer(self, comp: "_Component") -> None:
        due = comp.region.slot.fired()
        st = comp.region.astate
        if comp.region.mode != "analytic" or st is None:
            return
        self._touch_contention()
        now = self.env.now
        st.advance(now)
        entry = st.front()
        if entry is None:
            return
        flow = entry[3]
        if due is not flow:
            self._arm_analytic_timer(comp, st)
            return
        # The armed instant is authoritative (the service curve may
        # land an ulp short of the heap target), matching the classic
        # drift guard's treatment of microbyte residuals.
        heapq.heappop(st.heap)
        st.count -= 1
        flow._astate = None
        flow._remaining = 0.0
        self._detach(flow)
        flow.done.succeed(self._stats(flow))
        if comp.live:
            self.realloc_count += 1
            self.realloc_flows += comp.live
            self.analytic_events += 1
            st.recompute_rate()
            self._arm_analytic_timer(comp, st)

    # -- internals -----------------------------------------------------------
    def _detach(self, flow: Flow) -> None:
        self._touch_contention()
        self._flows.pop(flow.flow_id, None)
        for link in flow.path:
            self._links[link.link_id].flows.pop(flow.flow_id, None)
        if flow._timer is not None:
            flow._timer.cancel()
            flow._timer = None
        flow._rate = 0.0
        flow._timer_seq = -1
        flow._astate = None
        comp = flow._comp
        if comp is None:
            return
        flow._comp = None
        # _level_idx is deliberately kept: the ensuing departure splice
        # scan reads the departed flow's freeze level, and a detached
        # flow is never re-attached.
        # Tombstone in the ordered member list; compact lazily.
        idx = flow._order_idx
        if 0 <= idx < len(comp.order) and comp.order[idx] is flow:
            comp.order[idx] = None
        else:  # order_dirty re-sorts invalidated the index
            for i, f in enumerate(comp.order):
                if f is flow:
                    comp.order[i] = None
                    break
        comp.live -= 1
        if flow.min_rate > 0.0 or flow.rate_cap != float("inf"):
            comp.n_unclean -= 1
        # The level cache survives the detach: the ensuing departure
        # realloc runs the splice scan against it (and every detach is
        # followed by a realloc or a dissolve).
        if comp.live <= 0:
            # Flush any deferred byte credits (the departed members'
            # ledger chains) before the registry entry is dropped.
            self._epoch_barrier(comp)
            comp.region.disarm()
            for st in comp.links.values():
                if st.comp is comp:
                    st.comp = None
            comp.links.clear()
            comp.order.clear()
            comp.region.astate = None
            return
        for link in flow.path:
            st = self._links.get(link.link_id)
            if st is not None and st.comp is comp and not st.flows:
                if comp.region.ledger is not None:
                    # The ledger still defers this link's byte credits;
                    # leave a pointer so a later bytes_carried query can
                    # flush them.  At most one such component per link:
                    # flush any previous one now (rare — the link must
                    # empty under two distinct ledgered components with
                    # no query in between).
                    prev = st.epoch_comp
                    if prev is not None and prev is not comp:
                        self._epoch_barrier(prev)
                    st.epoch_comp = comp
                st.comp = None
                comp.links.pop(link.link_id, None)
        if len(comp.order) > 64 and len(comp.order) > 2 * comp.live:
            self._comp_members(comp)

    def _schedule_completion(self, flow: Flow) -> None:
        if flow._macro is not None:
            return  # macro timers are armed analytically at creation
        if flow._timer is not None:
            flow._timer.cancel()
            flow._timer = None
        if flow.remaining <= _EPS:
            flow._timer = self.env.schedule(
                0.0, lambda f=flow: self._on_timer(f)
            )
            flow._timer_at = self.env.now
            return
        if flow.rate <= _EPS:
            # Starved; will be rescheduled on the next change.  The
            # fast regime relies on "disarmed => seq == -1".
            flow._timer_seq = -1
            return
        eta = flow.remaining / flow.rate
        flow._timer = self.env.schedule(eta, lambda f=flow: self._on_timer(f))
        flow._timer_at = self.env.now + eta

    def _on_timer(self, flow: Flow) -> None:
        flow._timer = None
        if flow.done.triggered or flow.flow_id not in self._flows:
            return
        now = self.env.now
        if self.allocator == "legacy":
            self._advance_all()
        else:
            self._advance_flow(flow, now)
        # Float-drift guard: a microbyte of residual is "done"; likewise
        # finish when the residual is too small for the clock to advance
        # (now + eta == now), or the timer would loop at one timestamp.
        threshold = max(1e-6, flow.size * 1e-12)
        if flow.remaining > threshold:
            eta = (
                flow.remaining / flow.rate if flow.rate > _EPS else float("inf")
            )
            if eta != float("inf") and now + eta > now:
                flow._timer = self.env.schedule(
                    eta, lambda f=flow: self._on_timer(f)
                )
                flow._timer_at = now + eta
                return
            if eta == float("inf"):
                return  # starved; rescheduled on the next rate change
        if self.allocator == "legacy":
            flow.remaining = 0.0
            self._detach(flow)
            flow.done.succeed(self._stats(flow))
            self._reallocate_legacy("finish", flow.flow_id)
        else:
            neighbors = self._neighbors(flow)
            if (
                self._use_components
                and flow._comp is not None
                and len(flow.path) > 1
            ):
                # A multi-link departure can split its component; the
                # scoped pass re-derives the exact parts by BFS.
                self._comp_dissolve(flow._comp)
            flow.remaining = 0.0
            self._detach(flow)
            flow.done.succeed(self._stats(flow))
            self._reallocate_scoped(neighbors, "finish", flow.flow_id)
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(FlowFinished(
                t=self.env.now,
                flow_id=flow.flow_id,
                tag=flow.tag,
                size=flow.size,
                links=tuple(link.link_id for link in flow.path),
                src=flow.path[0].src,
                dst=flow.path[-1].dst,
                started_at=flow.started_at,
                owner=flow.owner,
            ))

    def _stats(self, flow: Flow) -> FlowStats:
        return FlowStats(
            flow_id=flow.flow_id,
            size=flow.size,
            started_at=flow.started_at,
            finished_at=self.env.now,
        )

    # -- rate computation -------------------------------------------------
    def _compute_rates(
        self,
        flows: list[Flow],
        links: dict[str, _LinkState],
        now: Optional[float] = None,
    ) -> dict[Flow, float]:
        """Rates for *flows* (arrival-ordered) over *links*.

        *links* restricts the residual bookkeeping to the links the
        component actually crosses; the legacy allocator passes every
        registered link (its original cost model).  *now* overrides the
        SLO-slack reference instant — macro-flow schedule replay asks
        for rates at virtual future batch starts.
        """
        if not flows:
            return {}
        rates: dict[Flow, float] = {}
        residual: dict[str, float] = {
            lid: state.link.capacity for lid, state in links.items()
        }

        # Phase 1: reservations are granted in flow-arrival order, each
        # up to the path's remaining capacity.  Admission-order
        # guarantees give performance isolation (§4.3.2): a later flood
        # of reserving flows cannot dilute an earlier flow's Rate_least.
        for flow in flows:
            if flow.min_rate <= 0:
                rates[flow] = 0.0
                continue
            headroom = min(residual[link.link_id] for link in flow.path)
            granted = max(0.0, min(flow.min_rate, flow.rate_cap, headroom))
            rates[flow] = granted
            for link in flow.path:
                residual[link.link_id] -= granted

        # Phase 2: distribute the residual.
        if self.policy == "slo_gated":
            self._fill_slo_gated(flows, rates, residual, now)
        else:
            self._fill_maxmin(flows, rates, residual)
        return rates

    # SLO-gated flows are topped up to finish within this fraction of
    # their remaining slack — comfortably early, but without hoarding.
    _SLO_SLACK_TARGET = 0.5

    def _fill_slo_gated(
        self,
        flows: list[Flow],
        rates: dict[Flow, float],
        residual: dict[str, float],
        now: Optional[float] = None,
    ) -> None:
        """Idle bandwidth to the tightest SLO first (§4.3.2).

        Two passes.  First, flows with a *future* deadline are topped
        up — tightest deadline first — to the rate that finishes them
        within half their remaining slack; expired deadlines are lost
        causes and drop to best effort (otherwise a backlog of missed
        transfers starves every still-meetable SLO).  Second, whatever
        capacity remains is shared max-min among all flows, so nothing
        is left idle and best-effort traffic never fully starves.
        """
        if now is None:
            now = self.env.now
        pending = [
            flow
            for flow in flows
            if flow.slo_deadline is not None and flow.slo_deadline > now
        ]
        pending.sort(key=lambda f: (f.slo_deadline, f.arrival_order, f.flow_id))
        # Saturated-link short-circuit: a flow whose path crosses a
        # zero-residual link can only be granted <= _EPS (its headroom
        # min is bounded by that link), which the grant check below
        # would discard anyway — skip the O(path) headroom scan.  The
        # set is maintained as grants consume residuals.
        saturated = (
            {lid for lid, res in residual.items() if res <= _EPS}
            if pending
            else set()
        )
        for flow in pending:
            slack = (flow.slo_deadline - now) * self._SLO_SLACK_TARGET
            target_rate = flow.remaining / max(slack, _EPS)
            want = min(target_rate, flow.rate_cap) - rates[flow]
            if want <= _EPS:
                continue
            if any(link.link_id in saturated for link in flow.path):
                continue
            headroom = min(residual[link.link_id] for link in flow.path)
            grant = min(want, headroom)
            if grant <= _EPS:
                continue
            rates[flow] += grant
            for link in flow.path:
                lid = link.link_id
                residual[lid] -= grant
                if residual[lid] <= _EPS:
                    saturated.add(lid)
        # Work conservation: leftovers shared max-min among everyone.
        self._fill_maxmin(flows, rates, residual)

    def _fill_maxmin(
        self,
        flows: list[Flow],
        rates: dict[Flow, float],
        residual: dict[str, float],
    ) -> None:
        """Progressive-filling max-min fairness over the residual.

        The crossing counts are maintained decrementally (a freezing
        flow decrements its links) instead of rebuilt every pass, the
        cap-minimisation loop is skipped entirely when no flow carries
        a finite ``rate_cap``, and the unfrozen list is compacted in
        place — all bit-exact (``min`` over the same multiset, same
        add/subtract order), turning the per-pass cost from
        O(flows × path) into O(survivors + frozen × path).
        """
        unfrozen = [
            flow for flow in flows if rates[flow] < flow.rate_cap - _EPS
        ]
        any_cap = any(f.rate_cap != float("inf") for f in unfrozen)
        crossing: dict[str, int] = {}
        for flow in unfrozen:
            for link in flow.path:
                lid = link.link_id
                crossing[lid] = crossing.get(lid, 0) + 1
        # Iteration bound: each pass freezes at least one flow.
        for _ in range(len(flows) + 1):
            if not unfrozen:
                break
            delta = min(
                residual[link_id] / count for link_id, count in crossing.items()
            )
            if any_cap:
                for flow in unfrozen:
                    head = flow.rate_cap - rates[flow]
                    if head < delta:
                        delta = head
            if delta > _EPS:
                for flow in unfrozen:
                    rates[flow] += delta
                    for link in flow.path:
                        residual[link.link_id] -= delta
            # Freeze flows pinned by a saturated link or their own cap;
            # survivors are compacted in place, preserving order.
            write = 0
            frozen_any = False
            for flow in unfrozen:
                at_cap = rates[flow] >= flow.rate_cap - _EPS
                saturated = any(
                    residual[link.link_id] <= _EPS for link in flow.path
                )
                if at_cap or saturated:
                    frozen_any = True
                    for link in flow.path:
                        lid = link.link_id
                        count = crossing[lid] - 1
                        if count:
                            crossing[lid] = count
                        else:
                            del crossing[lid]
                else:
                    unfrozen[write] = flow
                    write += 1
            if not frozen_any:
                break
            del unfrozen[write:]
