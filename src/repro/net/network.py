"""Fluid-flow bandwidth sharing over directed links.

Transfers are *flows* over link paths.  Whenever the flow population
changes, flow rates are recomputed:

1. **Reservations** — each flow may carry a ``min_rate`` (the paper's
   ``Rate_least`` from §4.3.2), granted in flow-arrival order up to the
   path's remaining capacity (admission-order isolation).
2. **Residual distribution** — the remaining capacity is handed out
   either by *progressive-filling max-min fairness* (how PCIe/NIC
   hardware arbitrates concurrent DMA engines — the baselines' world)
   or by *SLO-gated* allocation (GROUTER's rate control: all idle
   bandwidth goes to the flow with the tightest SLO first).

A multi-hop pipelined transfer is a single flow crossing all its links
simultaneously; its rate is bounded by the bottleneck link share, which
is the standard pipelining approximation.

Incremental, component-scoped reallocation
------------------------------------------
Rates only couple through shared links, so the flow/link graph
decomposes into connected components (links sharing a flow are
connected).  The default ``incremental`` allocator exploits this: when a
flow starts, finishes, or is cancelled, only its component's rates are
recomputed.  Flows outside the component keep their rates, their
progress is advanced lazily per-flow (``_last_update`` accounting), and
their completion timers are left untouched.  Within the component, a
flow whose recomputed rate is exactly unchanged keeps its pending timer
(reschedule elision), eliminating the one-stale-timer-per-flow heap
churn of a from-scratch allocator.

Two other allocator modes exist for validation and benchmarking:

``fullscan``
    Same semantics, but components are re-derived from scratch on every
    event by a union-find sweep over all flows.  Used as the
    differential-testing reference: its rates, event orderings, and
    finish times must be bit-identical to ``incremental``.
``legacy``
    The original from-scratch allocator: every event advances all
    flows, recomputes all rates globally, and rearms every completion
    timer.  Kept as the perf-benchmark baseline (`repro bench`).
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.common.errors import SimulationError
from repro.net.links import Link
from repro.sim.core import Environment, Event, ScheduledCall
from repro.telemetry.events import FlowFinished, FlowStarted, FlowsReallocated

_EPS = 1e-9

ALLOCATORS = ("incremental", "fullscan", "legacy")


@dataclass
class FlowStats:
    """Final accounting attached to a completed flow's done-event."""

    flow_id: int
    size: float
    started_at: float
    finished_at: float

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def mean_rate(self) -> float:
        return self.size / self.duration if self.duration > 0 else float("inf")


class Flow:
    """A single in-flight transfer over a fixed link path."""

    _ids = itertools.count()

    def __init__(
        self,
        env: Environment,
        path: Sequence[Link],
        size: float,
        min_rate: float = 0.0,
        rate_cap: float = float("inf"),
        slo_deadline: Optional[float] = None,
        tag: str = "",
        owner: str = "",
    ) -> None:
        if not path:
            raise SimulationError("flow path must contain at least one link")
        if size <= 0:
            raise SimulationError(f"flow size must be positive, got {size}")
        if min_rate < 0:
            raise SimulationError(f"negative min_rate {min_rate}")
        self.flow_id = next(Flow._ids)
        self.path = tuple(path)
        self.size = float(size)
        self.remaining = float(size)
        self.min_rate = min_rate
        self.rate_cap = rate_cap
        self.slo_deadline = slo_deadline
        self.tag = tag
        self.owner = owner
        self.rate = 0.0
        self.started_at = env.now
        self.done: Event = env.event()
        self._last_update = env.now
        self._timer: Optional[ScheduledCall] = None

    def __repr__(self) -> str:
        return (
            f"<Flow {self.flow_id} tag={self.tag!r} "
            f"{self.remaining:.0f}/{self.size:.0f}B rate={self.rate:.2e}>"
        )


@dataclass
class _LinkState:
    link: Link
    # flow_id -> Flow.  Insertion-ordered: flows attach in flow_id
    # order, so iteration is deterministic without sorting.
    flows: dict = field(default_factory=dict)
    bytes_carried: float = 0.0


class FlowNetwork:
    """Tracks active flows and shares link bandwidth among them.

    Parameters
    ----------
    env:
        Simulation environment.
    policy:
        ``"maxmin"`` (default, baseline behaviour) or ``"slo_gated"``
        (GROUTER §4.3.2: residual bandwidth goes to the tightest SLO).
    allocator:
        ``"incremental"`` (default), ``"fullscan"`` (differential-test
        reference), or ``"legacy"`` (original from-scratch allocator,
        the benchmark baseline).  See the module docstring.  When
        ``None``, the ``REPRO_NET_ALLOCATOR`` environment variable is
        consulted, so whole experiment runs can be A/B-compared across
        allocators without code changes.
    """

    def __init__(
        self,
        env: Environment,
        policy: str = "maxmin",
        allocator: Optional[str] = None,
    ) -> None:
        if allocator is None:
            allocator = os.environ.get("REPRO_NET_ALLOCATOR", "incremental")
        if policy not in ("maxmin", "slo_gated"):
            raise SimulationError(f"unknown allocation policy {policy!r}")
        if allocator not in ALLOCATORS:
            raise SimulationError(f"unknown allocator {allocator!r}")
        self.env = env
        self.policy = policy
        self.allocator = allocator
        self._links: dict[str, _LinkState] = {}
        # flow_id -> Flow; insertion-ordered (ids are monotonic), so
        # iteration is always in flow_id order without sorting.
        self._flows: dict[int, Flow] = {}
        # Instrumentation (cheap, always on; exported by `repro bench`).
        self.realloc_count = 0
        self.realloc_flows = 0  # cumulative component sizes
        self.flows_started = 0
        self.timer_reschedules = 0
        self.timer_elisions = 0

    # -- link registry ----------------------------------------------------
    def add_link(self, link: Link) -> None:
        """Register *link*; idempotent for the same object."""
        existing = self._links.get(link.link_id)
        if existing is not None and existing.link is not link:
            raise SimulationError(f"duplicate link id {link.link_id}")
        if existing is None:
            self._links[link.link_id] = _LinkState(link)

    def add_links(self, links: Iterable[Link]) -> None:
        for link in links:
            self.add_link(link)

    def link_state(self, link: Link) -> _LinkState:
        state = self._links.get(link.link_id)
        if state is None:
            # Links are registered lazily: a topology can hold thousands
            # of links while only a few ever carry flows.
            self.add_link(link)
            state = self._links[link.link_id]
        return state

    def allocated_on(self, link: Link) -> float:
        """Current total allocated rate on *link*."""
        return sum(flow.rate for flow in self.link_state(link).flows.values())

    def residual_on(self, link: Link) -> float:
        """Unallocated capacity on *link*."""
        return max(0.0, link.capacity - self.allocated_on(link))

    def flows_on(self, link: Link) -> set:
        """Active flows crossing *link* (live view copy)."""
        return set(self.link_state(link).flows.values())

    def bytes_carried(self, link: Link) -> float:
        """Total bytes carried by *link* so far (includes in-flight)."""
        state = self.link_state(link)
        if self.allocator == "legacy":
            self._advance_all()
        else:
            now = self.env.now
            for flow in state.flows.values():
                self._advance_flow(flow, now)
        return state.bytes_carried

    @property
    def active_flows(self) -> set[Flow]:
        return set(self._flows.values())

    @property
    def mean_component_size(self) -> float:
        """Mean number of flows per rate recomputation so far."""
        if self.realloc_count == 0:
            return 0.0
        return self.realloc_flows / self.realloc_count

    # -- flow lifecycle ----------------------------------------------------
    def start_flow(
        self,
        path: Sequence[Link],
        size: float,
        min_rate: float = 0.0,
        rate_cap: float = float("inf"),
        slo_deadline: Optional[float] = None,
        tag: str = "",
        owner: str = "",
    ) -> Flow:
        """Begin a transfer of *size* bytes over *path*.

        Returns the :class:`Flow`; its ``done`` event fires (with
        :class:`FlowStats`) when the last byte drains.
        """
        flow = Flow(
            self.env,
            path,
            size,
            min_rate=min_rate,
            rate_cap=rate_cap,
            slo_deadline=slo_deadline,
            tag=tag,
            owner=owner,
        )
        for link in flow.path:
            if link.link_id not in self._links:
                self.add_link(link)
        if self.allocator == "legacy":
            self._advance_all()
        self.flows_started += 1
        self._flows[flow.flow_id] = flow
        for link in flow.path:
            self._links[link.link_id].flows[flow.flow_id] = flow
        # Announce the flow before the reallocation below publishes its
        # first rate epoch, so stream consumers (the profiler's span
        # trees) see a complete bandwidth history from birth.
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(FlowStarted(
                t=self.env.now,
                flow_id=flow.flow_id,
                tag=flow.tag,
                size=flow.size,
                links=tuple(link.link_id for link in flow.path),
                src=flow.path[0].src,
                dst=flow.path[-1].dst,
                nominal_bw=min(link.capacity for link in flow.path),
                owner=flow.owner,
            ))
        if self.allocator == "legacy":
            self._reallocate_legacy("start", flow.flow_id)
        else:
            # A new flow can merge previously disjoint components; the
            # component search from the attached flow covers the merge.
            # Progress inside the component is advanced at the old
            # rates before they change; everything outside stays lazy.
            self._reallocate_scoped([flow], "start", flow.flow_id)
        return flow

    def cancel_flow(self, flow: Flow) -> None:
        """Abort *flow*; its done-event fails with SimulationError."""
        if flow.flow_id not in self._flows:
            raise SimulationError(f"cancel of unknown flow {flow.flow_id}")
        if self.allocator == "legacy":
            self._advance_all()
            self._detach(flow)
            flow.done.fail(SimulationError(f"flow {flow.flow_id} cancelled"))
            self._reallocate_legacy("cancel", flow.flow_id)
            return
        self._advance_flow(flow, self.env.now)
        # Removing a flow can split its component; every surviving
        # part contains a link-sharing neighbour of the removed flow,
        # so seeding the scoped pass with the neighbours covers all of
        # them without a separate whole-component search.
        neighbors = self._neighbors(flow)
        self._detach(flow)
        flow.done.fail(SimulationError(f"flow {flow.flow_id} cancelled"))
        self._reallocate_scoped(neighbors, "cancel", flow.flow_id)

    # -- progress accounting ----------------------------------------------
    def _advance_flow(self, flow: Flow, now: float) -> None:
        """Drain bytes for *flow* since its last update."""
        elapsed = now - flow._last_update
        if elapsed > 0 and flow.rate > 0:
            moved = min(flow.remaining, flow.rate * elapsed)
            flow.remaining -= moved
            for link in flow.path:
                self._links[link.link_id].bytes_carried += moved
        flow._last_update = now

    def _advance_component(self, flows: Sequence[Flow]) -> None:
        now = self.env.now
        for flow in flows:
            self._advance_flow(flow, now)

    def _advance_all(self) -> None:
        now = self.env.now
        for flow in self._flows.values():
            self._advance_flow(flow, now)

    # -- component discovery ------------------------------------------------
    def _component_with(self, flow: Flow) -> tuple[list[Flow], dict[str, _LinkState]]:
        """The connected component containing *flow* (which is attached).

        Flows are returned sorted by flow_id; links are every link any
        member crosses (capacity constraints), keyed by link_id.
        """
        if self.allocator == "fullscan":
            for flows, links in self._partition_all():
                if any(f.flow_id == flow.flow_id for f in flows):
                    return flows, links
            raise SimulationError(
                f"flow {flow.flow_id} missing from component scan"
            )
        members: dict[int, Flow] = {flow.flow_id: flow}
        links: dict[str, _LinkState] = {}
        stack = [flow]
        while stack:
            current = stack.pop()
            for link in current.path:
                lid = link.link_id
                if lid in links:
                    continue
                state = self._links[lid]
                links[lid] = state
                for other in state.flows.values():
                    if other.flow_id not in members:
                        members[other.flow_id] = other
                        stack.append(other)
        component = sorted(members.values(), key=lambda f: f.flow_id)
        return component, links

    def _neighbors(self, flow: Flow) -> list[Flow]:
        """Flows sharing a link with *flow*, sorted by flow_id."""
        members: dict[int, Flow] = {}
        for link in flow.path:
            for other in self._links[link.link_id].flows.values():
                if other.flow_id != flow.flow_id:
                    members[other.flow_id] = other
        return sorted(members.values(), key=lambda f: f.flow_id)

    def _partition_all(self) -> list[tuple[list[Flow], dict[str, _LinkState]]]:
        """All components, re-derived from scratch (fullscan reference)."""
        parent: dict[int, int] = {fid: fid for fid in self._flows}

        def find(a: int) -> int:
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        owner: dict[str, int] = {}
        for fid, flow in self._flows.items():
            for link in flow.path:
                other = owner.setdefault(link.link_id, fid)
                ra, rb = find(fid), find(other)
                if ra != rb:
                    parent[max(ra, rb)] = min(ra, rb)
        groups: dict[int, tuple[list[Flow], dict[str, _LinkState]]] = {}
        for fid, flow in self._flows.items():
            flows, links = groups.setdefault(find(fid), ([], {}))
            flows.append(flow)
            for link in flow.path:
                links.setdefault(link.link_id, self._links[link.link_id])
        return [groups[root] for root in sorted(groups)]

    # -- reallocation -----------------------------------------------------
    def _reallocate_scoped(
        self, flows: Sequence[Flow], trigger: str, changed_id: int
    ) -> None:
        """Recompute rates for every component touching *flows*.

        *flows* seed the affected region (flow_id-sorted); after a
        departure they may span several newly split components, each
        advanced at its old rates and then recomputed independently.
        """
        seen: set[int] = set()
        for flow in flows:
            if flow.flow_id in seen:
                continue
            component, links = self._component_with(flow)
            seen.update(f.flow_id for f in component)
            self._advance_component(component)
            self._recompute_component(component, links, trigger, changed_id)

    def _recompute_component(
        self,
        component: list[Flow],
        links: dict[str, _LinkState],
        trigger: str,
        changed_id: int,
    ) -> None:
        self.realloc_count += 1
        self.realloc_flows += len(component)
        rates = self._compute_rates(component, links)
        rescheduled: list[int] = []
        for flow in component:
            new_rate = rates[flow]
            if (
                new_rate == flow.rate
                and flow.remaining > _EPS
                and (flow._timer is not None or new_rate <= _EPS)
            ):
                # Exactly unchanged: the pending completion timer (or
                # starved no-timer state) is still correct as-is.
                self.timer_elisions += 1
                continue
            flow.rate = new_rate
            self._schedule_completion(flow)
            rescheduled.append(flow.flow_id)
        self.timer_reschedules += len(rescheduled)
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(FlowsReallocated(
                t=self.env.now,
                trigger=trigger,
                flow_id=changed_id,
                component=tuple(f.flow_id for f in component),
                links=tuple(links),
                rescheduled=tuple(rescheduled),
                rates=tuple(f.rate for f in component),
            ))

    def _reallocate_legacy(self, trigger: str, changed_id: int) -> None:
        """Original behaviour: global recompute + rearm every timer."""
        flows = sorted(self._flows.values(), key=lambda f: f.flow_id)
        self.realloc_count += 1
        self.realloc_flows += len(flows)
        rates = self._compute_rates(flows, self._links)
        for flow, rate in rates.items():
            flow.rate = rate
        # Completion timers are (re)armed in flow_id order: the heap
        # breaks same-time ties by scheduling sequence, so this keeps
        # event ordering independent of set/hash iteration order.
        for flow in flows:
            self._schedule_completion(flow)
        self.timer_reschedules += len(flows)
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(FlowsReallocated(
                t=self.env.now,
                trigger=trigger,
                flow_id=changed_id,
                component=tuple(f.flow_id for f in flows),
                links=tuple(self._links),
                rescheduled=tuple(f.flow_id for f in flows),
                rates=tuple(f.rate for f in flows),
            ))

    # -- internals -----------------------------------------------------------
    def _detach(self, flow: Flow) -> None:
        self._flows.pop(flow.flow_id, None)
        for link in flow.path:
            self._links[link.link_id].flows.pop(flow.flow_id, None)
        if flow._timer is not None:
            flow._timer.cancel()
            flow._timer = None
        flow.rate = 0.0

    def _schedule_completion(self, flow: Flow) -> None:
        if flow._timer is not None:
            flow._timer.cancel()
            flow._timer = None
        if flow.remaining <= _EPS:
            flow._timer = self.env.schedule(
                0.0, lambda f=flow: self._on_timer(f)
            )
            return
        if flow.rate <= _EPS:
            return  # starved; will be rescheduled on the next change
        eta = flow.remaining / flow.rate
        flow._timer = self.env.schedule(eta, lambda f=flow: self._on_timer(f))

    def _on_timer(self, flow: Flow) -> None:
        flow._timer = None
        if flow.done.triggered or flow.flow_id not in self._flows:
            return
        now = self.env.now
        if self.allocator == "legacy":
            self._advance_all()
        else:
            self._advance_flow(flow, now)
        # Float-drift guard: a microbyte of residual is "done"; likewise
        # finish when the residual is too small for the clock to advance
        # (now + eta == now), or the timer would loop at one timestamp.
        threshold = max(1e-6, flow.size * 1e-12)
        if flow.remaining > threshold:
            eta = (
                flow.remaining / flow.rate if flow.rate > _EPS else float("inf")
            )
            if eta != float("inf") and now + eta > now:
                flow._timer = self.env.schedule(
                    eta, lambda f=flow: self._on_timer(f)
                )
                return
            if eta == float("inf"):
                return  # starved; rescheduled on the next rate change
        if self.allocator == "legacy":
            flow.remaining = 0.0
            self._detach(flow)
            flow.done.succeed(self._stats(flow))
            self._reallocate_legacy("finish", flow.flow_id)
        else:
            neighbors = self._neighbors(flow)
            flow.remaining = 0.0
            self._detach(flow)
            flow.done.succeed(self._stats(flow))
            self._reallocate_scoped(neighbors, "finish", flow.flow_id)
        bus = self.env.telemetry
        if bus is not None:
            bus.publish(FlowFinished(
                t=self.env.now,
                flow_id=flow.flow_id,
                tag=flow.tag,
                size=flow.size,
                links=tuple(link.link_id for link in flow.path),
                src=flow.path[0].src,
                dst=flow.path[-1].dst,
                started_at=flow.started_at,
                owner=flow.owner,
            ))

    def _stats(self, flow: Flow) -> FlowStats:
        return FlowStats(
            flow_id=flow.flow_id,
            size=flow.size,
            started_at=flow.started_at,
            finished_at=self.env.now,
        )

    # -- rate computation -------------------------------------------------
    def _compute_rates(
        self, flows: list[Flow], links: dict[str, _LinkState]
    ) -> dict[Flow, float]:
        """Rates for *flows* (flow_id-sorted) over *links*.

        *links* restricts the residual bookkeeping to the links the
        component actually crosses; the legacy allocator passes every
        registered link (its original cost model).
        """
        if not flows:
            return {}
        rates: dict[Flow, float] = {}
        residual: dict[str, float] = {
            lid: state.link.capacity for lid, state in links.items()
        }

        # Phase 1: reservations are granted in flow-arrival order, each
        # up to the path's remaining capacity.  Admission-order
        # guarantees give performance isolation (§4.3.2): a later flood
        # of reserving flows cannot dilute an earlier flow's Rate_least.
        for flow in flows:
            if flow.min_rate <= 0:
                rates[flow] = 0.0
                continue
            headroom = min(residual[link.link_id] for link in flow.path)
            granted = max(0.0, min(flow.min_rate, flow.rate_cap, headroom))
            rates[flow] = granted
            for link in flow.path:
                residual[link.link_id] -= granted

        # Phase 2: distribute the residual.
        if self.policy == "slo_gated":
            self._fill_slo_gated(flows, rates, residual)
        else:
            self._fill_maxmin(flows, rates, residual)
        return rates

    # SLO-gated flows are topped up to finish within this fraction of
    # their remaining slack — comfortably early, but without hoarding.
    _SLO_SLACK_TARGET = 0.5

    def _fill_slo_gated(
        self,
        flows: list[Flow],
        rates: dict[Flow, float],
        residual: dict[str, float],
    ) -> None:
        """Idle bandwidth to the tightest SLO first (§4.3.2).

        Two passes.  First, flows with a *future* deadline are topped
        up — tightest deadline first — to the rate that finishes them
        within half their remaining slack; expired deadlines are lost
        causes and drop to best effort (otherwise a backlog of missed
        transfers starves every still-meetable SLO).  Second, whatever
        capacity remains is shared max-min among all flows, so nothing
        is left idle and best-effort traffic never fully starves.
        """
        now = self.env.now
        pending = [
            flow
            for flow in flows
            if flow.slo_deadline is not None and flow.slo_deadline > now
        ]
        pending.sort(key=lambda f: (f.slo_deadline, f.flow_id))
        for flow in pending:
            slack = (flow.slo_deadline - now) * self._SLO_SLACK_TARGET
            target_rate = flow.remaining / max(slack, _EPS)
            want = min(target_rate, flow.rate_cap) - rates[flow]
            if want <= _EPS:
                continue
            headroom = min(residual[link.link_id] for link in flow.path)
            grant = min(want, headroom)
            if grant <= _EPS:
                continue
            rates[flow] += grant
            for link in flow.path:
                residual[link.link_id] -= grant
        # Work conservation: leftovers shared max-min among everyone.
        self._fill_maxmin(flows, rates, residual)

    def _fill_maxmin(
        self,
        flows: list[Flow],
        rates: dict[Flow, float],
        residual: dict[str, float],
    ) -> None:
        """Progressive-filling max-min fairness over the residual."""
        unfrozen = [
            flow for flow in flows if rates[flow] < flow.rate_cap - _EPS
        ]
        # Iteration bound: each pass freezes at least one flow.
        for _ in range(len(flows) + 1):
            if not unfrozen:
                break
            crossing: dict[str, int] = {}
            for flow in unfrozen:
                for link in flow.path:
                    crossing[link.link_id] = crossing.get(link.link_id, 0) + 1
            delta = min(
                residual[link_id] / count for link_id, count in crossing.items()
            )
            delta = min(
                [delta] + [flow.rate_cap - rates[flow] for flow in unfrozen]
            )
            if delta > _EPS:
                for flow in unfrozen:
                    rates[flow] += delta
                    for link in flow.path:
                        residual[link.link_id] -= delta
            # Freeze flows pinned by a saturated link or their own cap.
            frozen = set()
            for flow in unfrozen:
                at_cap = rates[flow] >= flow.rate_cap - _EPS
                saturated = any(
                    residual[link.link_id] <= _EPS for link in flow.path
                )
                if at_cap or saturated:
                    frozen.add(flow)
            if not frozen:
                break
            unfrozen = [flow for flow in unfrozen if flow not in frozen]
