"""Directed link model.

A :class:`Link` is one direction of a physical interconnect (NVLink,
PCIe, NIC, node fabric, host shared memory).  Full-duplex hardware is
modelled as two independent directed links, which matches how NVLink and
PCIe bandwidths are quoted (per direction).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class LinkKind(enum.Enum):
    """Physical interconnect class a link belongs to."""

    NVLINK = "nvlink"
    PCIE = "pcie"
    NIC = "nic"
    FABRIC = "fabric"  # the inter-node switch fabric
    SHM = "shm"  # host shared memory (cFn-cFn)


@dataclass(frozen=True)
class Link:
    """One direction of a physical interconnect.

    Attributes
    ----------
    link_id:
        Unique name, e.g. ``"n0.nvlink.g1>g3"``.
    src, dst:
        Device ids of the endpoints (see :mod:`repro.topology`).
    capacity:
        Bytes per second in this direction.
    kind:
        Interconnect class; used by routing policies to restrict path
        search (e.g. NVLink-only parallel paths).
    latency:
        Per-traversal propagation latency in seconds (one chunk hop).
    """

    link_id: str
    src: str
    dst: str
    capacity: float
    kind: LinkKind
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"link {self.link_id}: capacity must be positive")
        if self.latency < 0:
            raise ValueError(f"link {self.link_id}: negative latency")

    def __repr__(self) -> str:
        gbps = self.capacity / 1e9
        return f"<Link {self.link_id} {self.src}->{self.dst} {gbps:.1f}GB/s>"


@dataclass
class LinkUsage:
    """Mutable per-link accounting maintained by the flow network."""

    link: Link
    flows: set = field(default_factory=set)

    @property
    def allocated(self) -> float:
        """Total rate currently allocated on this link."""
        return sum(flow.rate for flow in self.flows)

    @property
    def residual(self) -> float:
        """Unallocated capacity (never negative after rounding)."""
        return max(0.0, self.link.capacity - self.allocated)
