"""Chunked, batched, multi-path transfer engine (paper §4.3.1-§4.3.2).

GROUTER splits data into small chunks (2 MB by default), groups chunks
into batches (5 per batch by default), and pipelines batches over one or
more link paths.  Batches are the preemption granularity: a new function
can inject its chunks at the next batch boundary, which is exactly how
the fluid model behaves because every batch is a separate flow and rates
are recomputed on each flow arrival.

Multi-path transfers split the payload proportionally to each path's
nominal bandwidth (dynamic chunk sizing, §4.3.3) so all paths finish
together.

Steady-state coalescing (``coalesced`` mode, the default)
---------------------------------------------------------
The batch granularity exists so new functions can preempt bandwidth at
batch boundaries — but the fluid model pays it even when nothing
preempts.  While a chunked transfer's path links carry no other flow,
the engine hands the whole remaining batch loop to
:meth:`FlowNetwork.start_macro_flow`, which replays the per-batch float
arithmetic analytically and arms a single completion timer: a quiescent
1 GB transfer costs O(1) events instead of O(size/batch).  Any
disturbance — a flow arriving on the component, pinned-pool contention —
splits the macro at the current batch boundary and the loop falls back
to per-batch flows, so preemption semantics, byte accounting, and
telemetry stay bit-identical to ``per_batch`` mode (enforced by the
differential property suite).  Select per engine via ``mode=`` or
globally with the ``REPRO_NET_TRANSFER`` environment variable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.common.config import NET_TRANSFER_MODES, net_transfer_mode
from repro.common.errors import SimulationError
from repro.common.units import MB, US
from repro.net.links import Link
from repro.net.network import Flow, FlowNetwork
from repro.sim.core import Environment, Event, Process
from repro.sim.resources import Container
from repro.telemetry.events import TransferFinished, TransferStarted

DEFAULT_CHUNK_SIZE = 2 * MB
DEFAULT_BATCH_CHUNKS = 5
# Connection / launch overhead charged once per batch: a CUDA stream
# launch plus synchronization is on the order of tens of microseconds.
DEFAULT_BATCH_SETUP = 20 * US

# Canonical mode list lives in repro.common.config; re-exported here
# for the existing import sites.
TRANSFER_MODES = NET_TRANSFER_MODES


@dataclass(frozen=True)
class Path:
    """An ordered sequence of directed links from source to destination."""

    links: tuple[Link, ...]

    def __post_init__(self) -> None:
        if not self.links:
            raise SimulationError("empty path")
        for up, down in zip(self.links, self.links[1:]):
            if up.dst != down.src:
                raise SimulationError(
                    f"discontinuous path: {up.link_id} -> {down.link_id}"
                )
        # Links are immutable, so these are fixed at construction; the
        # chunk-batch loop asks for them on every batch otherwise.
        object.__setattr__(
            self, "_nominal_bandwidth", min(l.capacity for l in self.links)
        )
        object.__setattr__(
            self, "_propagation_latency", sum(l.latency for l in self.links)
        )
        object.__setattr__(
            self,
            "_devices",
            (self.links[0].src, *(link.dst for link in self.links)),
        )

    @property
    def src(self) -> str:
        return self.links[0].src

    @property
    def dst(self) -> str:
        return self.links[-1].dst

    @property
    def nominal_bandwidth(self) -> float:
        """Bottleneck capacity along the path (cached)."""
        return self._nominal_bandwidth

    @property
    def propagation_latency(self) -> float:
        """Sum of per-link propagation latencies (cached)."""
        return self._propagation_latency

    @property
    def hops(self) -> int:
        return len(self.links)

    def devices(self) -> list[str]:
        """All device ids the path touches, in order."""
        return list(self._devices)

    def __repr__(self) -> str:
        route = "->".join(self.devices())
        return f"<Path {route}>"


@dataclass
class TransferResult:
    """Outcome of a completed transfer."""

    size: float
    started_at: float
    finished_at: float
    paths: tuple[Path, ...]
    per_path_bytes: tuple[float, ...] = field(default=())

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def effective_bandwidth(self) -> float:
        return self.size / self.duration if self.duration > 0 else float("inf")


class _PinnedHold:
    """Pinned-pool bytes held on behalf of an in-flight macro-flow.

    The network refunds surplus through :meth:`refund` when a split
    reduces the claim to what the eager per-batch world would hold.
    """

    __slots__ = ("container", "amount")

    def __init__(self, container: Container) -> None:
        self.container = container
        self.amount = 0.0

    def refund(self, amount: float) -> None:
        self.amount -= amount
        self.container.put(amount)


class TransferEngine:
    """Executes (possibly multi-path, chunk-batched) transfers.

    Parameters
    ----------
    env, network:
        The simulation environment and the flow network carrying data.
    chunk_size, batch_chunks, batch_setup:
        Chunking defaults; individual transfers may override.
    mode:
        ``"coalesced"`` (default) — quiescent chunk-batch loops collapse
        into analytic macro-flows, splitting back to per-batch flows on
        any disturbance; ``"per_batch"`` — every batch is its own flow
        (the original, always-eager behaviour).  When ``None``, the
        ``REPRO_NET_TRANSFER`` environment variable is consulted, so
        whole experiment runs can be A/B-compared without code changes.
    """

    _ids = itertools.count()

    def __init__(
        self,
        env: Environment,
        network: FlowNetwork,
        chunk_size: float = DEFAULT_CHUNK_SIZE,
        batch_chunks: int = DEFAULT_BATCH_CHUNKS,
        batch_setup: float = DEFAULT_BATCH_SETUP,
        mode: Optional[str] = None,
    ) -> None:
        if chunk_size <= 0 or batch_chunks < 1 or batch_setup < 0:
            raise SimulationError("invalid transfer engine parameters")
        # kwarg > REPRO_NET_TRANSFER > "coalesced"; raises ConfigError
        # (a SimulationError) on anything outside TRANSFER_MODES.
        mode = net_transfer_mode(mode)
        self.env = env
        self.network = network
        self.chunk_size = chunk_size
        self.batch_chunks = batch_chunks
        self.batch_setup = batch_setup
        self.mode = mode
        # id(container) -> [(flow, hold), ...] for live macro claims;
        # consulted by the Container.on_blocked hook.
        self._macro_holds: dict[int, list[tuple[Flow, _PinnedHold]]] = {}

    # -- public API -------------------------------------------------------
    def transfer(
        self,
        paths: Sequence[Path],
        size: float,
        min_rate: float = 0.0,
        slo_deadline: Optional[float] = None,
        chunked: bool = True,
        pinned_buffer: Optional[Container] = None,
        tag: str = "",
        owner: str = "",
    ) -> Process:
        """Move *size* bytes over *paths*; returns the completion process.

        The process's value is a :class:`TransferResult`.  With
        ``chunked=False`` the whole payload is a single flow per path
        (how NCCL/NVSHMEM point-to-point transfers behave); with
        ``chunked=True`` GROUTER's batch pipeline is used.
        """
        if size <= 0:
            raise SimulationError(f"transfer size must be positive, got {size}")
        if not paths:
            raise SimulationError("transfer needs at least one path")
        return self.env.process(
            self._run(
                tuple(paths),
                float(size),
                min_rate,
                slo_deadline,
                chunked,
                pinned_buffer,
                tag,
                owner,
            )
        )

    def split_sizes(self, paths: Sequence[Path], size: float) -> list[float]:
        """Split *size* across *paths* proportionally to bandwidth."""
        total_bw = sum(path.nominal_bandwidth for path in paths)
        if total_bw <= 0:
            routes = ", ".join("->".join(path.devices()) for path in paths)
            raise SimulationError(
                "cannot split transfer: every path has zero nominal "
                f"bandwidth ({routes})"
            )
        shares = [size * path.nominal_bandwidth / total_bw for path in paths]
        # Fix rounding drift so the shares sum exactly to size.
        shares[-1] += size - sum(shares)
        return shares

    # -- internals ------------------------------------------------------------
    def _run(
        self,
        paths: tuple[Path, ...],
        size: float,
        min_rate: float,
        slo_deadline: Optional[float],
        chunked: bool,
        pinned_buffer: Optional[Container],
        tag: str,
        owner: str,
    ):
        started = self.env.now
        bus = self.env.telemetry
        transfer_id = -1
        if bus is not None:
            transfer_id = next(TransferEngine._ids)
            bus.publish(TransferStarted(
                t=started,
                transfer_id=transfer_id,
                tag=tag,
                size=size,
                src=paths[0].src,
                dst=paths[0].dst,
                num_paths=len(paths),
                owner=owner,
            ))
        shares = self.split_sizes(paths, size)
        workers = []
        for path, share in zip(paths, shares):
            if share <= 0:
                continue
            path_min_rate = min_rate * share / size
            workers.append(
                self.env.process(
                    self._run_path(
                        path,
                        share,
                        path_min_rate,
                        slo_deadline,
                        chunked,
                        pinned_buffer,
                        tag,
                        owner,
                    )
                )
            )
        yield self.env.all_of(workers)
        if bus is not None:
            bus.publish(TransferFinished(
                t=self.env.now,
                transfer_id=transfer_id,
                tag=tag,
                size=size,
                src=paths[0].src,
                dst=paths[0].dst,
                started_at=started,
                owner=owner,
            ))
        return TransferResult(
            size=size,
            started_at=started,
            finished_at=self.env.now,
            paths=paths,
            per_path_bytes=tuple(shares),
        )

    def _run_path(
        self,
        path: Path,
        size: float,
        min_rate: float,
        slo_deadline: Optional[float],
        chunked: bool,
        pinned_buffer: Optional[Container],
        tag: str,
        owner: str,
    ):
        # Pipeline-fill latency: the first chunk must traverse every hop
        # before the stream reaches steady state, plus propagation.
        fill_latency = path.propagation_latency
        if chunked and path.hops > 1:
            first_chunk = min(self.chunk_size, size)
            fill_latency += (path.hops - 1) * (
                first_chunk / path.nominal_bandwidth
            )
        if fill_latency > 0:
            yield self.env.timeout(fill_latency)

        if not chunked:
            yield from self._send_block(
                path, size, min_rate, slo_deadline, pinned_buffer, tag, owner
            )
            return

        batch_bytes = self.chunk_size * self.batch_chunks
        remaining = size
        while remaining > 0:
            if (
                self.mode == "coalesced"
                and remaining > batch_bytes
                and self.network.macro_eligible(path.links)
            ):
                outcome = yield from self._run_macro(
                    path,
                    remaining,
                    batch_bytes,
                    min_rate,
                    slo_deadline,
                    pinned_buffer,
                    tag,
                    owner,
                )
                if outcome is not None:
                    if outcome.kind == "completed":
                        return
                    if outcome.kind == "setup":
                        # The split landed between batches; the setup
                        # delay was already spent virtually, so send the
                        # boundary batch without repeating it.
                        yield self.env.timeout_until(outcome.resume_at)
                        yield from self._send_block(
                            path,
                            outcome.block,
                            min_rate,
                            slo_deadline,
                            pinned_buffer,
                            tag,
                            owner,
                        )
                    # converted/truncated: done already fired at the
                    # boundary batch's completion.  Either way the loop
                    # re-enters below it — and may re-coalesce once the
                    # disturbance has passed.
                    remaining = outcome.rem_before - outcome.block
                    continue
            block = min(batch_bytes, remaining)
            if self.batch_setup > 0:
                yield self.env.timeout(self.batch_setup)
            yield from self._send_block(
                path, block, min_rate, slo_deadline, pinned_buffer, tag, owner
            )
            remaining -= block

    def _run_macro(
        self,
        path: Path,
        remaining: float,
        batch_bytes: float,
        min_rate: float,
        slo_deadline: Optional[float],
        pinned_buffer: Optional[Container],
        tag: str,
        owner: str,
    ):
        """Attempt one macro-flow for the remaining batch loop.

        Returns the :class:`~repro.net.network.MacroOutcome` on
        success, or ``None`` when coalescing is ineligible (the caller
        falls back to a single per-batch iteration).
        """
        grab = 0.0
        hold: Optional[_PinnedHold] = None
        if pinned_buffer is not None:
            # Eligibility requires the whole steady-state claim (one
            # full batch, what the eager loop holds at any instant) to
            # be grabbable without queueing behind anyone.
            grab = min(batch_bytes, pinned_buffer.capacity)
            if pinned_buffer.queue_len > 0 or pinned_buffer.level < grab:
                return None
            hold = _PinnedHold(pinned_buffer)
        flow = self.network.start_macro_flow(
            path.links,
            remaining,
            batch_bytes,
            self.batch_setup,
            min_rate=min_rate,
            slo_deadline=slo_deadline,
            tag=tag,
            owner=owner,
            pinned_hold=grab,
            pinned_refund=hold.refund if hold is not None else None,
        )
        if flow is None:
            return None
        if pinned_buffer is not None:
            got = pinned_buffer.get(grab)  # instant: level checked above
            hold.amount = grab
            self._register_macro_hold(pinned_buffer, flow, hold)
            yield got
        try:
            yield flow.done
        finally:
            if pinned_buffer is not None:
                self._unregister_macro_hold(pinned_buffer, flow)
                if hold.amount > 0:
                    pinned_buffer.put(hold.amount)
                    hold.amount = 0.0
        return flow.macro_outcome

    # -- pinned-pool contention hook --------------------------------------
    def _register_macro_hold(
        self, container: Container, flow: Flow, hold: _PinnedHold
    ) -> None:
        entries = self._macro_holds.setdefault(id(container), [])
        entries.append((flow, hold))
        if container.on_blocked is None:
            container.on_blocked = self._on_pinned_blocked

    def _unregister_macro_hold(self, container: Container, flow: Flow) -> None:
        entries = self._macro_holds.get(id(container))
        if not entries:
            return
        self._macro_holds[id(container)] = [
            entry for entry in entries if entry[0] is not flow
        ]

    def _on_pinned_blocked(self, container: Container) -> None:
        """A pinned-pool get would block: split our macro claims.

        Splitting refunds each macro's surplus above what the eager
        per-batch world would hold right now, so the blocked get is
        served exactly when it would have been at batch granularity.
        """
        for flow, _hold in list(self._macro_holds.get(id(container), ())):
            self.network.split_macro_for_pinned(flow)

    def _send_block(
        self,
        path: Path,
        size: float,
        min_rate: float,
        slo_deadline: Optional[float],
        pinned_buffer: Optional[Container],
        tag: str,
        owner: str,
    ):
        if pinned_buffer is not None:
            grab = min(size, pinned_buffer.capacity)
            yield pinned_buffer.get(grab)
        else:
            grab = 0.0
        try:
            flow = self.network.start_flow(
                path.links,
                size,
                min_rate=min_rate,
                slo_deadline=slo_deadline,
                tag=tag,
                owner=owner,
            )
            yield flow.done
        finally:
            if pinned_buffer is not None:
                pinned_buffer.put(grab)


def single_flow_event(
    network: FlowNetwork, path: Path, size: float, tag: str = ""
) -> Event:
    """Convenience: start an unchunked flow and return its done-event."""
    flow = network.start_flow(path.links, size, tag=tag)
    return flow.done
