"""Fluid-flow link network and chunked multi-path transfer engine."""

from repro.net.links import Link, LinkKind
from repro.net.monitor import LinkUtilizationMonitor
from repro.net.network import (
    ContentionIndex,
    Flow,
    FlowNetwork,
    FlowStats,
    MacroOutcome,
)
from repro.net.transfer import (
    DEFAULT_BATCH_CHUNKS,
    DEFAULT_BATCH_SETUP,
    DEFAULT_CHUNK_SIZE,
    TRANSFER_MODES,
    Path,
    TransferEngine,
    TransferResult,
    single_flow_event,
)

__all__ = [
    "Link",
    "LinkUtilizationMonitor",
    "LinkKind",
    "ContentionIndex",
    "Flow",
    "FlowNetwork",
    "FlowStats",
    "MacroOutcome",
    "DEFAULT_BATCH_CHUNKS",
    "DEFAULT_BATCH_SETUP",
    "DEFAULT_CHUNK_SIZE",
    "TRANSFER_MODES",
    "Path",
    "TransferEngine",
    "TransferResult",
    "single_flow_event",
]
