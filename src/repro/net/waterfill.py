"""Cached bottleneck-level structure for the within-component water-fill.

The progressive max-min fill (:meth:`FlowNetwork._fill_maxmin`) produces,
per connected component, a sequence of *saturation levels*: pass ``j``
hands every still-unfrozen flow the same increment ``delta_j``, then
freezes the flows pinned by a newly saturated link.  A flow frozen at
level ``j`` ends with rate ``cum_j = delta_0 + ... + delta_j`` (each
flow's accumulator applies the same float additions in the same order,
so the prefix sum is one shared float per level, not a per-flow value).

This module caches that structure per component so that a single flow
arrival or departure can *splice*: levels below the first perturbed pass
``j*`` are reused verbatim — their deltas, freeze sets, per-flow rates
and link residuals are provably bit-identical to what a from-scratch
fill over the new population would recompute — and only passes ``>= j*``
are re-run, starting from the cached entry state.

Bit-exactness argument (the cache is only used for *clean* components:
``maxmin`` policy, every member with ``min_rate == 0`` and an infinite
``rate_cap``, no macro-flows):

* Links not crossed by the changed flow keep an identical per-pass
  subtraction sequence (same flows, same order, same deltas), hence
  bit-identical residuals — snapshotted at each pass entry.
* Links crossed by the changed flow have their residual chains replayed
  exactly.  Within one pass every unfrozen crosser subtracts the *same*
  ``delta``, and a chain of identical subtractions yields the same value
  in any order, so including/excluding the changed flow is one extra or
  one fewer subtraction per pass — exact either way.
* ``delta_j`` is a ``min`` over link ratios — order-independent for
  floats — so it is unchanged as long as the changed flow's links never
  tie or undercut the cached minimum; the scan detects exactly that
  (treating ties as divergence, since a tie can reassign freeze sets).

Whenever a precondition fails (reservations, caps, SLO-gated fills,
macro splits, component merges, ambiguous terminal passes) the caller
falls back to a full refill, which rebuilds the cache from scratch.
The fallback is always bit-exact by construction, so the cache is
purely an optimisation with a correctness proof, validated by the
differential suite against the ``fullscan`` oracle.
"""

from __future__ import annotations

import heapq
from typing import Sequence

_EPS = 1e-9

# Sentinel level index for flows not yet frozen by any recorded pass
# (a just-attached flow during an arrival splice scan).
UNFROZEN = 1 << 30


class Level:
    """One saturation level of a component's cached fill.

    ``delta``
        The fair-share increment handed out by this pass.
    ``cum``
        Prefix-sum rate of every flow frozen at this level (the shared
        float accumulator ``delta_0 + ... + delta_j``).
    ``entry_residual``
        Snapshot of every component link's residual at entry of this
        pass — the resume state for a splice at this level.
    ``terminal``
        True when the fill loop exited with these flows still unfrozen
        (no link crossed the saturation epsilon — a float-edge case).
        Terminal levels are never spliced over; any event touching one
        forces recomputation from it.
    ``members``
        The flows frozen at this level when it was recorded (the
        terminal level records the still-unfrozen flows).  Entries go
        stale when a flow departs or re-freezes elsewhere; consumers
        filter on ``f._comp is comp and f._level_idx == level.index``.
        The epoch allocator's splice walks only the tail levels'
        buckets instead of partitioning the whole member list, which is
        what makes its per-event cost independent of component size.
    """

    __slots__ = ("index", "delta", "cum", "entry_residual", "terminal",
                 "members")

    def __init__(self, index: int, delta: float, cum: float,
                 entry_residual: dict, terminal: bool = False) -> None:
        self.index = index
        self.delta = delta
        self.cum = cum
        self.entry_residual = entry_residual
        self.terminal = terminal
        self.members: Sequence = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Level {self.index} delta={self.delta:.3e} "
                f"cum={self.cum:.3e} terminal={self.terminal}>")


class SpliceScan:
    """Result of a splice feasibility scan.

    ``j_star``
        First pass whose outcome the event perturbs; levels below it
        are reused verbatim.  ``None`` means the cache cannot be used
        (ambiguous state — caller must full-refill).
    ``flink_residuals``
        Replayed entry-of-pass-``j_star`` residuals for the changed
        flow's links (bit-exact chains for the new population).
    ``history``
        Entry-of-pass-``i`` residuals for the changed flow's links, for
        every reused pass ``i < j_star``.  The caller patches these
        into the cached levels' ``entry_residual`` snapshots so future
        splices on those links resume from new-population chains.
    """

    __slots__ = ("j_star", "flink_residuals", "history")

    def __init__(self, j_star, flink_residuals, history=None):
        self.j_star = j_star
        self.flink_residuals = flink_residuals
        self.history = history if history is not None else []


def splice_scan(flow, levels: list, link_states: dict,
                arrival: bool) -> SpliceScan:
    """Find the first cached pass perturbed by *flow* arriving/departing.

    For each cached pass ``j`` (lowest first) the changed flow's links
    are checked against the cached ``delta_j``:

    * **arrival** — with the new flow counted as an unfrozen crosser,
      a link ratio ``residual / count`` at or below ``delta_j`` means
      the pass minimum (or its achieving link) changes; a link that
      would cross the saturation epsilon after the pass freezes the
      new flow (and that link's other crossers) earlier than cached.
    * **departure** — the departed flow's links are checked with the
      *old* population (its subtractions replayed, its crossing
      counted): a ratio at or below ``delta_j`` means the cached
      minimum was achieved (or tied) by one of its links, so removing
      it changes the pass.  Ratios strictly above the cached delta
      only move further above it when the flow leaves.

    The scan never runs past the departing flow's own freeze level
    (that pass loses a member, so it is always recomputed) or past a
    terminal level.  The caller guarantees *flow* is already attached
    (arrival) or detached (departure) from the link flow dicts.
    """
    m = len(levels)
    if arrival:
        limit = m
    else:
        my_level = flow._level_idx
        if my_level is None:
            return SpliceScan(None, None)
        # The departed flow's own freeze pass loses a member and is
        # always recomputed; passes beyond it need no scan.
        limit = min(my_level, m)

    # Replayed residual chains for the changed flow's links.  Each cell
    # carries the *new*-population chain (the splice entry state) and,
    # for departures, the *old*-population chain (with the departed
    # flow's one-extra subtraction per pass) used to detect
    # cached-argmin ties.
    flink = {}
    for link in flow.path:
        state = link_states.get(link.link_id)
        if state is None:
            return SpliceScan(None, None)
        cap = state.link.capacity
        flink[link.link_id] = [state, cap, cap]  # [state, new, old]

    j_star = limit
    history: list = []
    resume = None
    for j in range(limit):
        level = levels[j]
        # Entry-of-pass-j chains for the new population (pre-advance).
        entry_now = {lid: cell[1] for lid, cell in flink.items()}
        if level.terminal:
            j_star = j
            resume = entry_now
            break
        delta = level.delta
        diverged = False
        for cell in flink.values():
            state = cell[0]
            # Unfrozen crossers of this link at entry of pass j (the
            # new population: an arriving flow is already attached and
            # carries no level yet, a departed flow is detached).
            cnt = 0
            for g in state.flows.values():
                lvl = g._level_idx
                if lvl is None:
                    lvl = UNFROZEN
                if lvl >= j:
                    cnt += 1
            if arrival:
                if cnt and cell[1] / cnt <= delta:
                    diverged = True
                    break
            else:
                # The departed flow was unfrozen at every scanned pass
                # (j < its own freeze level).
                if cell[2] / (cnt + 1) <= delta:
                    diverged = True
                    break
        if diverged:
            j_star = j
            resume = entry_now
            break
        # Advance the replayed chains through pass j: exact sequential
        # subtraction.  All subtractions in a pass are the same delta,
        # so in-pass order is numerically irrelevant; the departed
        # flow's own subtraction is appended once per pass.
        if delta > _EPS:
            for cell in flink.values():
                state, res_new, res_old = cell
                for g in state.flows.values():
                    lvl = g._level_idx
                    if lvl is None:
                        lvl = UNFROZEN
                    if lvl >= j:
                        res_new -= delta
                        res_old -= delta
                if not arrival:
                    res_old -= delta
                cell[1] = res_new
                cell[2] = res_old
        if arrival:
            # With the new flow's subtraction applied, a link of the
            # new flow crossing the saturation epsilon at the end of
            # this pass freezes it (and the link's other unfrozen
            # crossers) here — earlier than the cache recorded.  The
            # chained value is exact, so this matches the fill's own
            # freeze predicate bit-for-bit; pass j itself must be
            # re-run, so the entry state is the pre-advance chain.
            froze = False
            for cell in flink.values():
                if cell[1] <= _EPS:
                    froze = True
                    break
            if froze:
                return SpliceScan(j, entry_now, history)
        history.append(entry_now)
    if resume is None:
        resume = {lid: cell[1] for lid, cell in flink.items()}
    return SpliceScan(j_star, resume, history)


def epoch_horizon(members, now: float):
    """Earliest analytic completion instant over *members*, or ``None``.

    The epoch engine's whole contract in one expression: between
    disturbances every member's rate is constant, so the next
    observable event is ``min(now + remaining / rate)`` over members
    with positive rate — the instant the region's single timer targets.

    Diagnostic only.  The live engine never re-derives an armed
    instant this way: it carries each member's recorded ``_timer_at``
    bit-for-bit (``now + remaining / rate`` can land one ulp away from
    the instant the eager chains produced — see
    :meth:`repro.sim.epoch.EpochLedger.settle_member`).  Tests use
    this to bound the armed slot from above without assuming float
    equality.
    """
    best = None
    for f in members:
        rate = f._rate
        if rate <= _EPS or f.done.triggered:
            continue
        at = now + f._remaining / rate
        if best is None or at < best:
            best = at
    return best


class AnalyticState:
    """Virtual-service accounting for an ``analytic``-mode component.

    Restricted to *clean single-link* components, where the fill is a
    single level: every member shares the link's fair share
    ``capacity / n``.  Instead of settling each member's ``remaining``
    through every rate epoch (provably Θ(members) per event for any
    bit-exact chain), the component integrates one shared service
    curve ``V(t) = ∫ rate dt``: a flow joining at service level
    ``V_join`` with ``size`` bytes completes exactly when
    ``V(t) = V_join + size``.  Completion order is a static key, so a
    single heap and one armed timer give O(log n) per event — flat in
    component size.  Rates are identical floats to the eager fill;
    completion *instants* agree with the eager chains only in real
    arithmetic (ulp-level drift), which is why this lives behind the
    opt-in ``analytic`` allocator mode.
    """

    __slots__ = ("env", "link_state", "v", "last_t", "rate", "count", "heap")

    def __init__(self, env, link_state) -> None:
        self.env = env
        self.link_state = link_state
        self.v = 0.0
        self.last_t = env.now
        self.rate = 0.0
        self.count = 0
        # (v_target, arrival_order, flow_id, flow)
        self.heap: list = []

    def advance(self, now: float) -> None:
        """Integrate the shared service curve up to *now*."""
        elapsed = now - self.last_t
        if elapsed > 0.0 and self.rate > 0.0:
            dv = self.rate * elapsed
            self.v += dv
            # Every member is active for the whole epoch (completions
            # and churn are themselves events), so the link carries
            # count * dv bytes.
            self.link_state.bytes_carried += self.count * dv
        self.last_t = now

    def service_now(self) -> float:
        """Current V including the in-flight epoch (read-only)."""
        elapsed = self.env.now - self.last_t
        if elapsed > 0.0 and self.rate > 0.0:
            return self.v + self.rate * elapsed
        return self.v

    def recompute_rate(self) -> None:
        cap = self.link_state.link.capacity
        self.rate = cap / self.count if self.count else 0.0

    def join(self, flow, remaining: float) -> None:
        """Register *flow* with *remaining* bytes at the current V."""
        flow._astate = self
        flow._v_done = self.v + remaining
        self.count += 1
        heapq.heappush(
            self.heap,
            (flow._v_done, flow.arrival_order, flow.flow_id, flow),
        )

    def front(self):
        """The live head of the completion heap (lazy-deleted)."""
        heap = self.heap
        while heap:
            flow = heap[0][3]
            if flow.done.triggered or flow._astate is not self:
                heapq.heappop(heap)
                continue
            return heap[0]
        return None
