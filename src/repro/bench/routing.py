"""Route-decision microbenchmarks: books + contention index vs enumeration.

Every transfer the dataplanes issue starts with a route decision —
Algorithm 1 over NVLink candidates, PCIe harvest selection, or NIC lane
fan-out.  The ``book`` routing mode answers those decisions from
precomputed route books and the O(1) contention index; the
``enumerate`` mode re-runs the original graph enumeration per decision
and is the bit-identical reference.  These scenarios measure the gap as
``route_decisions_per_sec`` on the presets the paper evaluates:

``nvlink_mesh``
    §4.3.3 Algorithm 1 on the DGX-1V asymmetric NVLink mesh (the
    worst-case enumeration: a simple-paths DFS per decision).  The
    acceptance headline: warm-book must beat enumeration >= 5x.
``nvlink_mesh_contended``
    The same decisions with live flows loading the mesh, so the
    busy-path branch (residual reads) is exercised in both modes.
``nvlink_nvswitch``
    Algorithm 1 on DGX-A100 (NVSwitch short-circuit — both modes are
    cheap; guards the constant factor).
``pcie_harvest``
    Topology-aware PCIe route selection plus parallel host-path
    construction (the gFn-host hot path).
``cluster_nic``
    Cross-node NIC lane fan-out plus GDR path construction on a
    two-node DGX-1V cluster.

Each scenario runs three modes: ``enumerate``, ``book_cold`` (the book
is evicted every round, so fill cost is charged), and ``book_warm``
(the steady state every request after the first pays).
"""

from __future__ import annotations

import platform as _platform
import time
from typing import Callable, Optional, Sequence

from repro.bench.netflow import SCHEMA_VERSION, _gc_paused
from repro.common.config import mode_metadata
from repro.common.units import MB
from repro.net.network import FlowNetwork
from repro.routing.harvest import (
    parallel_nic_paths,
    pcie_host_paths,
    select_pcie_routes,
)
from repro.routing.nvlink import select_parallel_nvlink_paths
from repro.sim.core import Environment
from repro.topology import make_cluster
from repro.topology import routebook as _routebook
from repro.topology.paths import cross_node_gdr_path, nvlink_simple_paths

MODES = ("enumerate", "book_cold", "book_warm")


def _evict_books(cluster) -> None:
    """Drop the interned books so the next decision rebuilds them."""
    _routebook._CLUSTER_BOOKS.pop(cluster, None)
    for node in cluster.nodes:
        _routebook._NODE_BOOKS.pop(node, None)


def _timed(decide: Callable[[], int], rounds: int,
           per_round: Optional[Callable[[], None]] = None) -> dict:
    with _gc_paused():
        decisions = 0
        start = time.perf_counter()
        for _ in range(rounds):
            if per_round is not None:
                per_round()
            decisions += decide()
        wall = max(time.perf_counter() - start, 1e-9)
    return {
        "decisions": decisions,
        "wall_s": wall,
        "decisions_per_sec": decisions / wall,
    }


def _run_modes(cluster, decide_for: Callable[[str], Callable[[], int]],
               rounds: int) -> dict:
    modes = {
        "enumerate": _timed(decide_for("enumerate"), rounds),
        "book_cold": _timed(
            decide_for("book"), rounds,
            per_round=lambda: _evict_books(cluster),
        ),
    }
    # Warm explicitly so the first timed round is already steady-state.
    _routebook.cluster_route_book(cluster).warm()
    modes["book_warm"] = _timed(decide_for("book"), rounds)
    return modes


def _scenario(name: str, preset: str, cluster, decide_for, rounds: int,
              **config) -> dict:
    modes = _run_modes(cluster, decide_for, rounds)
    enum_rate = modes["enumerate"]["decisions_per_sec"]
    warm_rate = modes["book_warm"]["decisions_per_sec"]
    return {
        "name": name,
        "preset": preset,
        "config": {"rounds": rounds, **config},
        "modes": modes,
        "speedup_warm_book_over_enumerate": (
            warm_rate / enum_rate if enum_rate > 0 else float("inf")
        ),
    }


def _gpu_pairs(node) -> list[tuple]:
    gpus = node.gpus
    return [(a, b) for a in gpus for b in gpus if a is not b]


def bench_nvlink_select(preset: str = "dgx-v100", rounds: int = 30,
                        contended: bool = False,
                        name: Optional[str] = None) -> dict:
    """Algorithm 1 over every ordered GPU pair of one node."""
    cluster = make_cluster(preset)
    node = cluster.nodes[0]
    env = Environment()
    net = FlowNetwork(env)
    pairs = _gpu_pairs(node)
    if contended:
        # Load every third pair's best candidate with a long-lived flow
        # so free/busy classification and residual reads both fire.
        for src, dst in pairs[::3]:
            candidates = nvlink_simple_paths(node, src, dst)
            if candidates:
                net.start_flow(list(candidates[0].links), 1024 * MB)

    def decide_for(routing: str) -> Callable[[], int]:
        def decide() -> int:
            for src, dst in pairs:
                select_parallel_nvlink_paths(
                    node, net, src, dst, routing=routing
                )
            return len(pairs)
        return decide

    return _scenario(
        name or f"nvlink_{'mesh' if not node.has_nvswitch else 'nvswitch'}",
        preset, cluster, decide_for, rounds,
        pairs=len(pairs), contended=contended,
    )


def bench_pcie_harvest(preset: str = "dgx-v100", rounds: int = 30) -> dict:
    """Topology-aware PCIe harvest + host path construction per GPU."""
    cluster = make_cluster(preset)
    node = cluster.nodes[0]
    env = Environment()
    net = FlowNetwork(env)

    def decide_for(routing: str) -> Callable[[], int]:
        def decide() -> int:
            for gpu in node.gpus:
                routes = select_pcie_routes(
                    node, gpu, network=net, routing=routing
                )
                pcie_host_paths(node, gpu, routes, "to_host",
                                routing=routing)
                pcie_host_paths(node, gpu, routes, "from_host",
                                routing=routing)
            return 3 * len(node.gpus)
        return decide

    return _scenario("pcie_harvest", preset, cluster, decide_for, rounds,
                     gpus=len(node.gpus))


def bench_cluster_nic(preset: str = "dgx-v100", num_nodes: int = 2,
                      rounds: int = 30) -> dict:
    """Cross-node NIC lane fan-out + GDR paths between two nodes."""
    cluster = make_cluster(preset, num_nodes=num_nodes)
    src_node, dst_node = cluster.nodes[0], cluster.nodes[1]
    book = _routebook.cluster_route_book
    pairs = [(s, d) for s in src_node.gpus for d in dst_node.gpus]

    def decide_for(routing: str) -> Callable[[], int]:
        def decide() -> int:
            for src, dst in pairs:
                parallel_nic_paths(cluster, src, dst, routing=routing)
                if routing == "book":
                    book(cluster).gdr_path(src.device_id, dst.device_id)
                else:
                    cross_node_gdr_path(cluster, src, dst)
            return 2 * len(pairs)
        return decide

    return _scenario("cluster_nic", preset, cluster, decide_for, rounds,
                     num_nodes=num_nodes, pairs=len(pairs))


BenchFn = Callable[..., dict]

ROUTING_BENCHMARKS: dict[str, tuple[BenchFn, dict, dict]] = {
    # name -> (fn, full-run kwargs, quick-run kwargs)
    "nvlink_mesh": (
        bench_nvlink_select,
        {"preset": "dgx-v100", "rounds": 30},
        {"preset": "dgx-v100", "rounds": 5},
    ),
    "nvlink_mesh_contended": (
        bench_nvlink_select,
        {"preset": "dgx-v100", "rounds": 30, "contended": True,
         "name": "nvlink_mesh_contended"},
        {"preset": "dgx-v100", "rounds": 5, "contended": True,
         "name": "nvlink_mesh_contended"},
    ),
    "nvlink_nvswitch": (
        bench_nvlink_select,
        {"preset": "dgx-a100", "rounds": 30},
        {"preset": "dgx-a100", "rounds": 5},
    ),
    "pcie_harvest": (
        bench_pcie_harvest,
        {"preset": "dgx-v100", "rounds": 30},
        {"preset": "dgx-v100", "rounds": 5},
    ),
    "cluster_nic": (
        bench_cluster_nic,
        {"preset": "dgx-v100", "num_nodes": 2, "rounds": 30},
        {"preset": "dgx-v100", "num_nodes": 2, "rounds": 5},
    ),
}


def run_routing_benchmarks(
    quick: bool = False,
    names: Optional[Sequence[str]] = None,
) -> dict:
    """Run the selected benchmarks; returns BENCH_routing.json."""
    selected = list(names) if names else list(ROUTING_BENCHMARKS)
    unknown = [n for n in selected if n not in ROUTING_BENCHMARKS]
    if unknown:
        raise ValueError(
            f"unknown benchmark(s): {', '.join(unknown)}; "
            f"choose from {', '.join(ROUTING_BENCHMARKS)}"
        )
    runs: list[dict] = []
    for name in selected:
        fn, full_kwargs, quick_kwargs = ROUTING_BENCHMARKS[name]
        kwargs = quick_kwargs if quick else full_kwargs
        runs.append(fn(**kwargs))
    return {
        "schema": SCHEMA_VERSION,
        "generated_by": "repro bench --suite routing",
        "mode": "quick" if quick else "full",
        "modes": mode_metadata(),
        "python": _platform.python_version(),
        "benchmarks": runs,
        "speedup_warm_book_over_enumerate": {
            run["name"]: run["speedup_warm_book_over_enumerate"]
            for run in runs
        },
    }


def format_routing_summary(document: dict) -> str:
    """Human-readable summary for logs and CI output."""
    lines = [
        f"{'benchmark':<24} {'mode':<12} {'decisions':>10} {'wall (s)':>9} "
        f"{'decisions/s':>12}"
    ]
    for run in document["benchmarks"]:
        for mode in MODES:
            stats = run["modes"].get(mode)
            if stats is None:
                continue
            lines.append(
                f"{run['name']:<24} {mode:<12} {stats['decisions']:>10} "
                f"{stats['wall_s']:>9.3f} {stats['decisions_per_sec']:>12.0f}"
            )
        lines.append(
            f"{run['name']:<24} {'warm/enum (x)':<12} "
            f"{run['speedup_warm_book_over_enumerate']:>33.1f}"
        )
    return "\n".join(lines)
