"""Platform microbenchmark: request churn through the lifecycle pipeline.

``request_churn`` pushes N concurrent requests through the driving
workflow on a GROUTER platform — the workload that made the seed's
list-backed pending queue quadratic (every ``finish`` was a
``list.remove``, every eviction-oracle probe a ``list.index``).  It
reports end-to-end requests per second plus the pending-queue
operation counters, so a regression that sneaks a linear scan back
onto the queue path shows up as a throughput cliff in
``BENCH_platform.json`` next to the op counts that explain it.

Results ride the same schema/IO helpers as the network benchmarks
(:mod:`repro.bench.netflow`); ``repro bench --suite platform`` is the
CLI entry point.
"""

from __future__ import annotations

import platform as _platform
import time
from typing import Callable, Optional, Sequence

from repro.bench.netflow import SCHEMA_VERSION
from repro.common.config import mode_metadata
from repro.platform import build_platform
from repro.workflow import get_workload


def bench_request_churn(
    requests: int = 96,
    waves: int = 8,
    workflow: str = "driving",
    plane_name: str = "grouter",
    replicas: int = 1,
    dispatch: str = "round-robin",
) -> dict:
    """N concurrent requests in back-to-back waves; measures queue cost.

    Requests are submitted in ``waves`` bursts spaced one second of sim
    time apart, so the pending queue repeatedly fills and drains — the
    access pattern that exercises enqueue/finish/bind/position together
    with compaction.
    """
    plat = build_platform(plane_name=plane_name, dispatch=dispatch)
    deployment = plat.deploy(get_workload(workflow), replicas=replicas)
    env = plat.env
    per_wave = max(1, requests // waves)
    procs = []

    def driver():
        for _wave in range(waves):
            for _ in range(per_wave):
                procs.append(plat.submit(deployment))
            yield env.timeout(1.0)

    env.process(driver())
    start = time.perf_counter()
    env.run()
    wall = max(time.perf_counter() - start, 1e-9)
    completed = len(plat.results)
    counters = dict(plat.queue.counters)
    queue_ops = (
        counters["enqueue"] + counters["finish"]
        + counters["bind"] + counters["position"]
    )
    return {
        "name": "request_churn",
        "plane": plane_name,
        "config": {
            "requests": per_wave * waves,
            "waves": waves,
            "workflow": workflow,
            "replicas": replicas,
            "dispatch": dispatch,
        },
        "completed": completed,
        "wall_s": wall,
        "requests_per_sec": completed / wall,
        "sim_time": env.now,
        "queue_ops": counters,
        "queue_ops_total": queue_ops,
        "queue_ops_per_request": queue_ops / max(completed, 1),
        "pending_bound_objects_after": plat.queue.bound_objects,
    }


BenchFn = Callable[..., dict]

PLATFORM_BENCHMARKS: dict[str, tuple[BenchFn, dict, dict]] = {
    # name -> (fn, full-run kwargs, quick-run kwargs)
    "request_churn": (
        bench_request_churn,
        {"requests": 96, "waves": 8},
        {"requests": 24, "waves": 4},
    ),
}


def run_platform_benchmarks(
    quick: bool = False,
    names: Optional[Sequence[str]] = None,
) -> dict:
    """Run the selected platform benchmarks; returns BENCH_platform.json."""
    selected = list(names) if names else list(PLATFORM_BENCHMARKS)
    unknown = [n for n in selected if n not in PLATFORM_BENCHMARKS]
    if unknown:
        raise ValueError(
            f"unknown benchmark(s): {', '.join(unknown)}; "
            f"choose from {', '.join(PLATFORM_BENCHMARKS)}"
        )
    runs: list[dict] = []
    for name in selected:
        fn, full_kwargs, quick_kwargs = PLATFORM_BENCHMARKS[name]
        kwargs = quick_kwargs if quick else full_kwargs
        runs.append(fn(**kwargs))
    return {
        "schema": SCHEMA_VERSION,
        "generated_by": "repro bench --suite platform",
        "mode": "quick" if quick else "full",
        "modes": mode_metadata(),
        "python": _platform.python_version(),
        "benchmarks": runs,
    }


def format_platform_summary(document: dict) -> str:
    """Human-readable summary for logs and CI output."""
    lines = [
        f"{'benchmark':<18} {'plane':<10} {'req/s':>10} {'wall (s)':>9} "
        f"{'queue ops':>10} {'ops/req':>8} {'compact':>8} {'leaked':>7}"
    ]
    for run in document["benchmarks"]:
        lines.append(
            f"{run['name']:<18} {run['plane']:<10} "
            f"{run['requests_per_sec']:>10.0f} {run['wall_s']:>9.3f} "
            f"{run['queue_ops_total']:>10} "
            f"{run['queue_ops_per_request']:>8.1f} "
            f"{run['queue_ops']['compactions']:>8} "
            f"{run['pending_bound_objects_after']:>7}"
        )
    return "\n".join(lines)
