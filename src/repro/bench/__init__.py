"""Performance microbenchmarks for the repro data plane."""

from repro.bench.netflow import (
    BENCHMARKS,
    DEFAULT_ALLOCATORS,
    SCHEMA_VERSION,
    bench_fanin_hotspot,
    bench_flow_churn,
    bench_multipath_chunk_storm,
    format_summary,
    run_benchmarks,
    write_results,
)

__all__ = [
    "BENCHMARKS",
    "DEFAULT_ALLOCATORS",
    "SCHEMA_VERSION",
    "bench_fanin_hotspot",
    "bench_flow_churn",
    "bench_multipath_chunk_storm",
    "format_summary",
    "run_benchmarks",
    "write_results",
]
