"""Performance microbenchmarks for the repro data plane and platform."""

from repro.bench.endtoend import (
    ENDTOEND_BENCHMARKS,
    RSS_RATIO_THRESHOLD,
    bench_endtoend,
    format_endtoend_summary,
    run_endtoend_benchmarks,
    rss_check,
)
from repro.bench.netflow import (
    BENCHMARKS,
    DEFAULT_ALLOCATORS,
    SCHEMA_VERSION,
    bench_fanin_hotspot,
    bench_flow_churn,
    bench_multipath_chunk_storm,
    bench_transfer_storm,
    format_summary,
    run_benchmarks,
    write_results,
)
from repro.bench.requests import (
    PLATFORM_BENCHMARKS,
    bench_request_churn,
    format_platform_summary,
    run_platform_benchmarks,
)
from repro.bench.telemetry import (
    TELEMETRY_BENCHMARKS,
    bench_event_fanout,
    format_telemetry_summary,
    run_telemetry_benchmarks,
)

__all__ = [
    "BENCHMARKS",
    "DEFAULT_ALLOCATORS",
    "ENDTOEND_BENCHMARKS",
    "PLATFORM_BENCHMARKS",
    "RSS_RATIO_THRESHOLD",
    "SCHEMA_VERSION",
    "TELEMETRY_BENCHMARKS",
    "bench_endtoend",
    "bench_event_fanout",
    "bench_fanin_hotspot",
    "bench_flow_churn",
    "bench_multipath_chunk_storm",
    "bench_transfer_storm",
    "bench_request_churn",
    "format_endtoend_summary",
    "format_platform_summary",
    "format_summary",
    "format_telemetry_summary",
    "rss_check",
    "run_benchmarks",
    "run_endtoend_benchmarks",
    "run_platform_benchmarks",
    "run_telemetry_benchmarks",
    "write_results",
]
