"""Telemetry microbenchmark: event fan-out cost with consumers attached.

``event_fanout`` replays a deterministic synthetic event mix — the
publish pattern of one request walking a three-stage chain (spans,
flows, reallocations, transfers, pool churn) — through four
configurations:

``disabled``
    No bus on the environment.  Publishers pay one attribute load and
    an ``is None`` test; events are never constructed.  This is the
    default-path cost every uninstrumented run pays.
``bus``
    A bus with zero subscribers (publish bookkeeping only).
``recorder``
    Bus + :class:`~repro.telemetry.TraceRecorder` +
    :class:`~repro.telemetry.StandardMetrics` — the ``repro trace``
    configuration.
``recorder+profiler``
    The above plus a live
    :class:`~repro.telemetry.profiler.SpanTreeBuilder` — the
    ``repro profile`` configuration.

Each mode reports events/sec, so a regression in the bus fan-out, the
metrics handlers, or the profiler's event intake shows up directly in
``BENCH_telemetry.json`` (wired into the CI perf-smoke job,
non-gating).
"""

from __future__ import annotations

import platform as _platform
import time
from typing import Callable, Optional, Sequence

from repro.bench.netflow import SCHEMA_VERSION
from repro.common.config import mode_metadata
from repro.telemetry.bus import EventBus
from repro.telemetry.events import (
    FlowFinished,
    FlowsReallocated,
    FlowStarted,
    PoolAlloc,
    RequestArrived,
    RequestFinished,
    StageSpan,
    TransferFinished,
    TransferStarted,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiler import SpanTreeBuilder
from repro.telemetry.recorder import StandardMetrics, TraceRecorder

MODES = ("disabled", "bus", "recorder", "recorder+profiler")


def _request_events(index: int, t: float) -> list:
    """The publish mix of one request over a three-stage chain."""
    rid = f"r{index}"
    events: list = [
        RequestArrived(t=t, request_id=rid, workflow="driving"),
    ]
    clock = t
    for stage_index, stage in enumerate(("detect", "track", "plan")):
        flow_id = index * 3 + stage_index
        events.extend([
            FlowStarted(
                t=clock, flow_id=flow_id, tag="gfn-gfn-intra",
                size=16e6, links=("n0.pcie0", "n0.pcie1"),
                src="n0.g0", dst="n0.g1", nominal_bw=12e9, owner=rid,
            ),
            FlowsReallocated(
                t=clock, trigger="start", flow_id=flow_id,
                component=(flow_id,), links=("n0.pcie0", "n0.pcie1"),
                rescheduled=(flow_id,), rates=(12e9,),
            ),
            TransferStarted(
                t=clock, transfer_id=flow_id, tag="gfn-gfn-intra",
                size=16e6, src="n0.g0", dst="n0.g1", num_paths=1,
                owner=rid,
            ),
            PoolAlloc(
                t=clock + 0.001, device_id="n0.g1", size=16e6,
                reserved=3e8, in_use=16e6, grew=False,
                requested_at=clock,
            ),
            StageSpan(
                t=clock + 0.002, request_id=rid, stage=stage,
                kind="get", start=clock, end=clock + 0.002,
                device_id="n0.g1", replica=f"{stage}#0",
            ),
            FlowFinished(
                t=clock + 0.002, flow_id=flow_id, tag="gfn-gfn-intra",
                size=16e6, links=("n0.pcie0", "n0.pcie1"),
                src="n0.g0", dst="n0.g1", started_at=clock, owner=rid,
            ),
            TransferFinished(
                t=clock + 0.002, transfer_id=flow_id,
                tag="gfn-gfn-intra", size=16e6, src="n0.g0",
                dst="n0.g1", started_at=clock, owner=rid,
            ),
            StageSpan(
                t=clock + 0.012, request_id=rid, stage=stage,
                kind="exec", start=clock + 0.002, end=clock + 0.012,
                device_id="n0.g1", replica=f"{stage}#0",
            ),
            StageSpan(
                t=clock + 0.014, request_id=rid, stage=stage,
                kind="put", start=clock + 0.012, end=clock + 0.014,
                device_id="n0.g1", replica=f"{stage}#0",
            ),
        ])
        clock += 0.014
    events.append(RequestFinished(
        t=clock, request_id=rid, workflow="driving",
        latency=clock - t, slo_met=True,
    ))
    return events


class _DisabledEnv:
    """Stand-in for an uninstrumented Environment: telemetry is None."""

    telemetry: Optional[EventBus] = None


def bench_event_fanout(requests: int = 2000) -> dict:
    """Publish the synthetic mix through every mode; report events/sec.

    The ``disabled`` mode measures the real publisher-side guard: the
    event objects are **not** constructed, exactly like production
    publish sites behind ``if bus is not None``.
    """
    batches = [
        _request_events(i, float(i) * 0.05) for i in range(requests)
    ]
    per_request = len(batches[0])
    results: dict[str, dict] = {}

    # disabled: guard-only loop, events never built.
    env = _DisabledEnv()
    start = time.perf_counter()
    for _batch in batches:
        for _ in range(per_request):
            bus = env.telemetry
            if bus is not None:  # pragma: no cover - never taken
                bus.publish(None)
    wall = max(time.perf_counter() - start, 1e-9)
    total = requests * per_request
    results["disabled"] = {
        "events": total,
        "wall_s": wall,
        "events_per_sec": total / wall,
    }

    def _timed(bus: EventBus) -> dict:
        start = time.perf_counter()
        for batch in batches:
            for event in batch:
                bus.publish(event)
        wall = max(time.perf_counter() - start, 1e-9)
        return {
            "events": bus.published,
            "wall_s": wall,
            "events_per_sec": bus.published / wall,
        }

    results["bus"] = _timed(EventBus())

    bus = EventBus()
    recorder = TraceRecorder()
    recorder.attach(bus)
    StandardMetrics(MetricsRegistry()).attach(bus)
    results["recorder"] = _timed(bus)

    bus = EventBus()
    recorder = TraceRecorder()
    recorder.attach(bus)
    StandardMetrics(MetricsRegistry()).attach(bus)
    profiler = SpanTreeBuilder()
    profiler.attach(bus)
    results["recorder+profiler"] = _timed(bus)
    completed = len(profiler.completed)

    baseline = results["disabled"]["events_per_sec"]
    full = results["recorder+profiler"]["events_per_sec"]
    return {
        "name": "event_fanout",
        "config": {"requests": requests, "events_per_request": per_request},
        "modes": results,
        "profiled_requests_completed": completed,
        "overhead_x": baseline / full if full > 0 else float("inf"),
    }


BenchFn = Callable[..., dict]

TELEMETRY_BENCHMARKS: dict[str, tuple[BenchFn, dict, dict]] = {
    # name -> (fn, full-run kwargs, quick-run kwargs)
    "event_fanout": (
        bench_event_fanout,
        {"requests": 2000},
        {"requests": 300},
    ),
}


def run_telemetry_benchmarks(
    quick: bool = False,
    names: Optional[Sequence[str]] = None,
) -> dict:
    """Run the selected benchmarks; returns BENCH_telemetry.json."""
    selected = list(names) if names else list(TELEMETRY_BENCHMARKS)
    unknown = [n for n in selected if n not in TELEMETRY_BENCHMARKS]
    if unknown:
        raise ValueError(
            f"unknown benchmark(s): {', '.join(unknown)}; "
            f"choose from {', '.join(TELEMETRY_BENCHMARKS)}"
        )
    runs: list[dict] = []
    for name in selected:
        fn, full_kwargs, quick_kwargs = TELEMETRY_BENCHMARKS[name]
        kwargs = quick_kwargs if quick else full_kwargs
        runs.append(fn(**kwargs))
    return {
        "schema": SCHEMA_VERSION,
        "generated_by": "repro bench --suite telemetry",
        "mode": "quick" if quick else "full",
        "modes": mode_metadata(),
        "python": _platform.python_version(),
        "benchmarks": runs,
    }


def format_telemetry_summary(document: dict) -> str:
    """Human-readable summary for logs and CI output."""
    lines = [
        f"{'benchmark':<14} {'mode':<20} {'events':>9} {'wall (s)':>9} "
        f"{'events/s':>12}"
    ]
    for run in document["benchmarks"]:
        for mode in MODES:
            stats = run["modes"].get(mode)
            if stats is None:
                continue
            lines.append(
                f"{run['name']:<14} {mode:<20} {stats['events']:>9} "
                f"{stats['wall_s']:>9.3f} {stats['events_per_sec']:>12.0f}"
            )
        lines.append(
            f"{run['name']:<14} {'overhead (x)':<20} "
            f"{run['overhead_x']:>32.1f}"
        )
    return "\n".join(lines)
