"""End-to-end macrobenchmark: streaming telemetry at 10k/100k/1M requests.

The point of this suite is not the absolute requests/sec (sim wall
time is dominated by event-queue churn) but the *shape* of memory
versus scale: with generator-backed arrivals, retired results, spooled
events, and bounded-mode metrics, peak RSS should be essentially flat
in request count.  ``run_endtoend_benchmarks`` therefore records peak
RSS for every scale and emits an explicit ``rss_check`` comparing the
largest scale against the smallest — the CI assertion that the
streaming backend actually bounds memory (ratio <= 1.5).

``requests_1m`` is registered but excluded from the default selection
(it runs for hours); opt in with ``--bench requests_1m``.

Results ride the same schema/IO helpers as the other suites;
``repro bench --suite endtoend`` is the CLI entry point and writes
``BENCH_endtoend.json``.
"""

from __future__ import annotations

import platform as _platform
import tempfile
import time
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.bench.netflow import SCHEMA_VERSION
from repro.common.config import mode_metadata

RSS_RATIO_THRESHOLD = 1.5
_RSS_SAMPLE_EVERY = 256  # results between /proc RSS samples


def bench_endtoend(
    requests: int = 10_000,
    rate: float = 4.0,
    workflow: str = "recognition",
    plane_name: str = "grouter",
    pattern: str = "bursty",
    replicas: int = 2,
    seed: int = 0,
    telemetry: str = "bounded",
    spool_dir: Optional[str] = None,
    heartbeat: float = 0.0,
    compress: bool = True,
) -> dict:
    """Replay *requests* arrivals end to end in bounded memory.

    The full streaming stack is engaged: a generator-backed
    :class:`~repro.traces.ArrivalStream` (no arrival array), telemetry
    spooled to a gzip JSONL sink (unless ``telemetry="off"``), a
    bounded-mode metrics registry, and per-request results retired
    into a :class:`~repro.experiments.harness.StreamingResultAggregator`
    the moment they complete (``keep_results=False``).

    ``spool_dir`` keeps the spooled events on disk; by default they go
    to a temporary directory that is deleted afterwards (the write
    path is still exercised and counted).  ``heartbeat`` > 0 prints a
    live progress line every that many wall seconds.
    """
    from repro.experiments.harness import StreamingResultAggregator
    from repro.platform import build_platform
    from repro.telemetry import JsonlEventSink, RunMonitor, capture
    from repro.traces import stream_trace
    from repro.workflow import get_workload

    if telemetry not in ("bounded", "exact", "off"):
        raise ValueError(f"unknown telemetry mode {telemetry!r}")

    # The limit stops the stream after exactly `requests` arrivals
    # (expected at ~requests/rate); the duration only bounds the
    # horizon, with enough slack that an unlucky seed still fits.
    trace = stream_trace(
        pattern,
        rate=rate,
        duration=1.25 * requests / rate + 120.0,
        seed=seed,
        limit=requests,
    )
    aggregate = StreamingResultAggregator(
        mode="bounded" if telemetry == "bounded" else "exact"
    )

    tmp = None
    sinks = []
    if telemetry != "off":
        if spool_dir is None:
            tmp = tempfile.TemporaryDirectory(prefix="repro-endtoend-")
            spool_path = Path(tmp.name)
        else:
            spool_path = Path(spool_dir)
            spool_path.mkdir(parents=True, exist_ok=True)
        suffix = ".jsonl.gz" if compress else ".jsonl"
        sinks = [
            JsonlEventSink(spool_path / f"events_{requests}{suffix}")
        ]

    monitor = RunMonitor(
        interval=heartbeat, label=f"endtoend:{requests}", sinks=sinks
    )

    def retire(result) -> None:
        aggregate(result)
        if aggregate.count % _RSS_SAMPLE_EVERY == 0:
            monitor.sample_rss()

    try:
        start = time.perf_counter()
        if telemetry != "off":
            with capture(sinks=sinks, metrics_mode=telemetry):
                plat = _streaming_platform(
                    build_platform, plane_name, monitor.wrap(retire)
                )
                monitor.env = plat.env
                deployment = plat.deploy(
                    get_workload(workflow), seed=seed, replicas=replicas
                )
                submitted = plat.run_trace_streaming(
                    deployment, trace, monitor=monitor
                )
        else:
            plat = _streaming_platform(
                build_platform, plane_name, monitor.wrap(retire)
            )
            monitor.env = plat.env
            deployment = plat.deploy(
                get_workload(workflow), seed=seed, replicas=replicas
            )
            submitted = plat.run_trace_streaming(
                deployment, trace, monitor=monitor
            )
        wall = max(time.perf_counter() - start, 1e-9)
        monitor.sample_rss()
        spool_bytes = sum(
            getattr(sink, "bytes_written", 0) for sink in sinks
        )
    finally:
        if tmp is not None:
            tmp.cleanup()

    return {
        "name": f"requests_{_scale_label(requests)}",
        "plane": plane_name,
        "config": {
            "requests": requests,
            "rate": rate,
            "workflow": workflow,
            "pattern": pattern,
            "replicas": replicas,
            "seed": seed,
            "telemetry": telemetry,
            "compress": compress,
        },
        "submitted": submitted,
        "completed": plat.completed_count,
        "rejected": plat.rejection_count,
        "wall_s": wall,
        "requests_per_sec": plat.completed_count / wall,
        "sim_time": plat.env.now,
        "peak_rss_bytes": monitor.peak_rss_bytes,
        "events_spooled": monitor.events_spooled,
        "spool_bytes": spool_bytes,
        "results_retained": len(plat.results),
        "aggregate": aggregate.summary(),
    }


def _streaming_platform(build_platform, plane_name: str, result_sink):
    return build_platform(
        plane_name=plane_name,
        result_sink=result_sink,
        keep_results=False,
    )


def _scale_label(requests: int) -> str:
    if requests % 1_000_000 == 0 and requests >= 1_000_000:
        return f"{requests // 1_000_000}m"
    if requests % 1_000 == 0 and requests >= 1_000:
        return f"{requests // 1_000}k"
    return str(requests)


BenchFn = Callable[..., dict]

ENDTOEND_BENCHMARKS: dict[str, tuple[BenchFn, dict, dict]] = {
    # name -> (fn, full-run kwargs, quick-run kwargs)
    "requests_10k": (
        bench_endtoend,
        {"requests": 10_000},
        {"requests": 500},
    ),
    "requests_100k": (
        bench_endtoend,
        {"requests": 100_000},
        {"requests": 2_000},
    ),
    # Opt-in only (multi-hour run): repro bench --suite endtoend \
    #   --bench requests_10k --bench requests_1m
    "requests_1m": (
        bench_endtoend,
        {"requests": 1_000_000},
        {"requests": 10_000},
    ),
}

DEFAULT_SELECTION = ("requests_10k", "requests_100k")


def run_endtoend_benchmarks(
    quick: bool = False,
    names: Optional[Sequence[str]] = None,
    heartbeat: float = 0.0,
    spool_dir: Optional[str] = None,
) -> dict:
    """Run the selected scales; returns the BENCH_endtoend.json document.

    The default selection is 10k + 100k (``requests_1m`` must be named
    explicitly).  When at least two scales ran, ``rss_check`` compares
    peak RSS at the largest scale against the smallest — the
    bounded-memory acceptance gate.
    """
    selected = list(names) if names else list(DEFAULT_SELECTION)
    unknown = [n for n in selected if n not in ENDTOEND_BENCHMARKS]
    if unknown:
        raise ValueError(
            f"unknown benchmark(s): {', '.join(unknown)}; "
            f"choose from {', '.join(ENDTOEND_BENCHMARKS)}"
        )
    runs: list[dict] = []
    for name in selected:
        fn, full_kwargs, quick_kwargs = ENDTOEND_BENCHMARKS[name]
        kwargs = dict(quick_kwargs if quick else full_kwargs)
        kwargs.setdefault("heartbeat", heartbeat)
        if spool_dir is not None:
            kwargs.setdefault("spool_dir", spool_dir)
        runs.append(fn(**kwargs))
    document = {
        "schema": SCHEMA_VERSION,
        "generated_by": "repro bench --suite endtoend",
        "mode": "quick" if quick else "full",
        "modes": mode_metadata(),
        "python": _platform.python_version(),
        "benchmarks": runs,
    }
    check = rss_check(runs)
    if check is not None:
        document["rss_check"] = check
    return document


def rss_check(runs: Sequence[dict]) -> Optional[dict]:
    """Peak-RSS ratio of the largest scale over the smallest."""
    sized = [r for r in runs if r.get("peak_rss_bytes")]
    if len(sized) < 2:
        return None
    smallest = min(sized, key=lambda r: r["config"]["requests"])
    largest = max(sized, key=lambda r: r["config"]["requests"])
    if smallest is largest:
        return None
    ratio = largest["peak_rss_bytes"] / max(smallest["peak_rss_bytes"], 1)
    return {
        "baseline": smallest["name"],
        "target": largest["name"],
        "baseline_rss_bytes": smallest["peak_rss_bytes"],
        "target_rss_bytes": largest["peak_rss_bytes"],
        "ratio": ratio,
        "threshold": RSS_RATIO_THRESHOLD,
        "ok": ratio <= RSS_RATIO_THRESHOLD,
    }


def format_endtoend_summary(document: dict) -> str:
    """Human-readable summary for logs and CI output."""
    lines = [
        f"{'benchmark':<16} {'requests':>9} {'req/s':>8} {'wall (s)':>9} "
        f"{'peak RSS':>10} {'spooled':>9} {'p99 (ms)':>9}"
    ]
    for run in document["benchmarks"]:
        p99 = run["aggregate"]["latency_ms"]["p99"]
        lines.append(
            f"{run['name']:<16} {run['config']['requests']:>9} "
            f"{run['requests_per_sec']:>8.1f} {run['wall_s']:>9.2f} "
            f"{run['peak_rss_bytes'] / 1e6:>8.1f}MB "
            f"{run['events_spooled']:>9} {p99:>9.1f}"
        )
    check = document.get("rss_check")
    if check is not None:
        verdict = "OK" if check["ok"] else "EXCEEDED"
        lines.append(
            f"rss ratio {check['target']}/{check['baseline']} = "
            f"{check['ratio']:.2f} (threshold {check['threshold']}): "
            f"{verdict}"
        )
    return "\n".join(lines)
