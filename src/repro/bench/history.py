"""Bench trajectory: append dated records, diff against the last run.

Every ``repro bench`` invocation appends one JSONL record to
``BENCH_history.jsonl`` — suite, resolved mode metadata, and a flat
``metrics`` map distilled from the suite document — so the repo's perf
trajectory accumulates across commits instead of overwriting a single
``BENCH_<suite>.json`` snapshot.  ``repro bench --compare`` diffs the
fresh record against the most recent *comparable* one (same suite,
same quick/full mode, same resolved mode knobs) and flags changes
beyond a noise tolerance.

Metric direction is encoded in the name suffix: ``per_event_us``,
``overhead_x`` and ``peak_rss_bytes`` regress upward; every other
metric (throughput-shaped) regresses downward.
"""

from __future__ import annotations

import json
import os
from datetime import datetime, timezone
from typing import Optional

#: Name suffixes where a larger value is worse.
LOWER_IS_BETTER = ("per_event_us", "overhead_x", "peak_rss_bytes")

DEFAULT_TOLERANCE = 0.15
HISTORY_FILENAME = "BENCH_history.jsonl"


# -- metric extraction --------------------------------------------------------

def _net_metrics(document: dict) -> dict[str, float]:
    metrics: dict[str, float] = {}
    for run in document.get("benchmarks", ()):
        key = f"{run['name']}/{run['allocator']}"
        if "rows" in run:
            for row in run["rows"]:
                metrics[f"{key}/flows{row['flows']}.per_event_us"] = (
                    row["per_event_us"]
                )
        else:
            metrics[f"{key}.events_per_sec"] = run["events_per_sec"]
    return metrics


def _platform_metrics(document: dict) -> dict[str, float]:
    return {
        f"{run['name']}/{run['plane']}.requests_per_sec":
            run["requests_per_sec"]
        for run in document.get("benchmarks", ())
    }


def _telemetry_metrics(document: dict) -> dict[str, float]:
    metrics: dict[str, float] = {}
    for run in document.get("benchmarks", ()):
        for mode, stats in run["modes"].items():
            metrics[f"{run['name']}/{mode}.events_per_sec"] = (
                stats["events_per_sec"]
            )
        metrics[f"{run['name']}.overhead_x"] = run["overhead_x"]
    return metrics


def _routing_metrics(document: dict) -> dict[str, float]:
    metrics: dict[str, float] = {}
    for run in document.get("benchmarks", ()):
        for mode, stats in run["modes"].items():
            metrics[f"{run['name']}/{mode}.decisions_per_sec"] = (
                stats["decisions_per_sec"]
            )
    return metrics


def _endtoend_metrics(document: dict) -> dict[str, float]:
    metrics: dict[str, float] = {}
    for run in document.get("benchmarks", ()):
        metrics[f"{run['name']}.requests_per_sec"] = run["requests_per_sec"]
        if run.get("peak_rss_bytes"):
            metrics[f"{run['name']}.peak_rss_bytes"] = run["peak_rss_bytes"]
    return metrics


_EXTRACTORS = {
    "net": _net_metrics,
    "platform": _platform_metrics,
    "telemetry": _telemetry_metrics,
    "routing": _routing_metrics,
    "endtoend": _endtoend_metrics,
}


def extract_metrics(suite: str, document: dict) -> dict[str, float]:
    """Flatten one suite document into comparable scalar metrics."""
    extractor = _EXTRACTORS.get(suite)
    if extractor is None:
        raise ValueError(
            f"unknown suite {suite!r}; choose from {tuple(_EXTRACTORS)}"
        )
    return extractor(document)


def make_record(suite: str, document: dict,
                recorded_at: Optional[str] = None) -> dict:
    """One dated history record for a completed suite run."""
    if recorded_at is None:
        recorded_at = datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        )
    return {
        "recorded_at": recorded_at,
        "suite": suite,
        "mode": document.get("mode", ""),
        "modes": document.get("modes", {}),
        "python": document.get("python", ""),
        "metrics": extract_metrics(suite, document),
    }


# -- persistence --------------------------------------------------------------

def append_record(record: dict, path: str) -> None:
    directory = os.path.dirname(os.fspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "a") as handle:
        handle.write(json.dumps(record, separators=(",", ":")) + "\n")


def load_history(path: str) -> list[dict]:
    """All records, oldest first; a truncated trailing line is skipped."""
    if not os.path.exists(path):
        return []
    records: list[dict] = []
    with open(path) as handle:
        for line in handle:
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # partial write from a crashed run
    return records


def latest_comparable(history: list[dict], record: dict) -> Optional[dict]:
    """Most recent record measuring the same thing the same way."""
    for previous in reversed(history):
        if (previous.get("suite") == record["suite"]
                and previous.get("mode") == record["mode"]
                and previous.get("modes") == record["modes"]):
            return previous
    return None


# -- comparison ---------------------------------------------------------------

def _regresses_upward(name: str) -> bool:
    return name.endswith(LOWER_IS_BETTER)


def compare_records(
    current: dict,
    previous: Optional[dict],
    tolerance: float = DEFAULT_TOLERANCE,
) -> dict:
    """Diff two records; a change past *tolerance* in the bad direction
    is a regression, past it in the good direction an improvement."""
    if previous is None:
        return {
            "comparable": False,
            "reason": "no previous comparable record",
            "metrics": {},
            "regressions": [],
            "improvements": [],
        }
    rows: dict[str, dict] = {}
    regressions: list[str] = []
    improvements: list[str] = []
    for name in sorted(current["metrics"]):
        now = current["metrics"][name]
        then = previous["metrics"].get(name)
        if then is None or then == 0:
            continue
        change = now / then - 1.0
        bad_change = change if _regresses_upward(name) else -change
        verdict = "ok"
        if bad_change > tolerance:
            verdict = "regressed"
            regressions.append(name)
        elif bad_change < -tolerance:
            verdict = "improved"
            improvements.append(name)
        rows[name] = {
            "current": now,
            "previous": then,
            "change": change,
            "verdict": verdict,
        }
    return {
        "comparable": True,
        "baseline_recorded_at": previous.get("recorded_at", ""),
        "tolerance": tolerance,
        "metrics": rows,
        "regressions": regressions,
        "improvements": improvements,
    }


def format_compare(result: dict) -> str:
    if not result["comparable"]:
        return f"compare: skipped ({result['reason']})"
    lines = [
        f"compare vs {result['baseline_recorded_at']} "
        f"(tolerance {result['tolerance']:.0%}):"
    ]
    for name, row in result["metrics"].items():
        mark = {"ok": " ", "regressed": "!", "improved": "+"}[row["verdict"]]
        lines.append(
            f"  {mark} {name:<48} {row['previous']:>14.2f} -> "
            f"{row['current']:>14.2f}  ({row['change']:+.1%})"
        )
    if result["regressions"]:
        lines.append(
            f"REGRESSED: {', '.join(result['regressions'])}"
        )
    else:
        lines.append("no regressions beyond tolerance")
    return "\n".join(lines)
