"""Microbenchmarks for the fluid-flow network engine.

Three scenarios stress the allocator the way the paper's workloads do
(§4.3.1–§4.3.3 explode one logical transfer into many short-lived
flows):

``flow_churn``
    N concurrent single-link flows spread over K disjoint link
    components, each slot restarting a new flow the moment its previous
    one drains.  The headline scenario for component scoping: a
    from-scratch allocator recomputes all N flows on every one of the
    ~2·N·rounds events, the incremental one only N/K.
``fanin_hotspot``
    Every flow shares one bottleneck link (a single component), so
    scoping cannot help — this guards against regressions on the fully
    contended case, which must stay at parity with the from-scratch
    allocator (the component search is amortized by dropped sorts and
    timer-reschedule elision).
``fanin_scaling``
    The fan-in shape at 1k/4k/10k flows on one link, timing only the
    churn phase so ``per_event_us`` isolates the allocator's marginal
    cost at each component size.  Runs ``incremental``, the opt-in
    ``analytic`` mode (the flat-cost row), and ``legacy`` capped at
    4k flows.
``multipath_chunk_storm``
    Chunk-batched :class:`~repro.net.transfer.TransferEngine` transfers
    over two-hop parallel paths in disjoint groups — the paper's 2 MB
    chunk / 5-chunk batch shape, one flow per batch per path.
``transfer_storm``
    Concurrent large chunked transfers on disjoint links, run once in
    ``coalesced`` mode and once in ``per_batch`` mode.  Both modes are
    charged the same *logical* batch events (what batch granularity
    means semantically), so events/sec measures how cheaply each mode
    delivers identical observable behaviour — the steady-state
    coalescing headline.

Each scenario runs once per allocator and reports wall-clock, flow
events per second (starts + finishes), reallocation count, and mean
component size; :func:`run_benchmarks` adds incremental-vs-legacy
speedups and :func:`write_results` records everything in
``BENCH_net.json`` so perf PRs leave a measured trajectory.
"""

from __future__ import annotations

import contextlib
import gc
import json
import math
import platform
import time
from typing import Callable, Optional, Sequence

from repro.common.config import mode_metadata
from repro.common.units import MB
from repro.net.links import Link, LinkKind
from repro.net.network import FlowNetwork
from repro.net.transfer import Path, TransferEngine
from repro.sim.core import Environment

SCHEMA_VERSION = 1
DEFAULT_ALLOCATORS = ("incremental", "legacy")


@contextlib.contextmanager
def _gc_paused():
    """Keep the cyclic collector out of a timed churn window.

    The scaling scenarios pin O(10k) flow objects (with ``_comp``
    back-references) before timing a few hundred churn events; a gen-2
    collection inside the window costs Θ(population) and shows up as
    per-event cost that is really allocator-independent GC pressure.
    Collect once up front so the window starts clean, then disable.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _result(name: str, allocator: str, net: FlowNetwork,
            env: Environment, flow_events: int, wall: float,
            config: dict) -> dict:
    wall = max(wall, 1e-9)
    return {
        "name": name,
        "allocator": allocator,
        "config": config,
        "flow_events": flow_events,
        "wall_s": wall,
        "events_per_sec": flow_events / wall,
        "sim_time": env.now,
        "realloc_count": net.realloc_count,
        "mean_component_size": net.mean_component_size,
        "timer_reschedules": net.timer_reschedules,
        "timer_elisions": net.timer_elisions,
        "heap_compactions": env.compactions,
        # Level-cache effectiveness (zero for legacy/fullscan, which
        # never consult the cache).
        "cache_hits": net.cache_hits,
        "cache_rebuilds": net.cache_rebuilds,
        "levels_spliced": net.levels_spliced,
        "levels_recomputed": net.levels_recomputed,
        "analytic_events": net.analytic_events,
        # Macro-flow coalescing and epoch fast-forwarding activity
        # (zero for allocators/modes that never engage them).
        "macro_coalesced": net.macro_coalesced,
        "macro_splits": net.macro_splits,
        "epoch_boundaries": net.epoch_boundaries,
        "epoch_settles": net.epoch_settles,
    }


def bench_flow_churn(
    allocator: str,
    flows: int = 256,
    components: int = 8,
    rounds: int = 24,
) -> dict:
    """Disjoint-component churn: each slot restarts flows back-to-back."""
    env = Environment()
    net = FlowNetwork(env, allocator=allocator)
    links = [
        Link(link_id=f"churn.l{i}", src=f"s{i}", dst=f"d{i}",
             capacity=100 * MB, kind=LinkKind.PCIE)
        for i in range(components)
    ]
    completed = 0

    def slot(idx: int):
        nonlocal completed
        link = links[idx % components]
        for round_no in range(rounds):
            # Deterministically varied sizes stagger completions so the
            # event stream interleaves across slots.
            size = (1 + (idx * 37 + round_no * 13) % 17) * MB / 4
            flow = net.start_flow([link], size)
            yield flow.done
            completed += 1

    for i in range(flows):
        env.process(slot(i))
    start = time.perf_counter()
    env.run()
    wall = time.perf_counter() - start
    return _result(
        "flow_churn", allocator, net, env, 2 * completed, wall,
        {"flows": flows, "components": components, "rounds": rounds},
    )


def bench_fanin_hotspot(
    allocator: str,
    flows: int = 128,
    rounds: int = 16,
) -> dict:
    """Fan-in on one shared link: a single always-merged component."""
    env = Environment()
    net = FlowNetwork(env, allocator=allocator)
    hot = Link(link_id="fanin.hot", src="many", dst="gpu",
               capacity=100 * MB, kind=LinkKind.PCIE)
    completed = 0

    def slot(idx: int):
        nonlocal completed
        for round_no in range(rounds):
            size = (1 + (idx * 31 + round_no * 7) % 13) * MB / 8
            flow = net.start_flow([hot], size)
            yield flow.done
            completed += 1

    for i in range(flows):
        env.process(slot(i))
    start = time.perf_counter()
    env.run()
    wall = time.perf_counter() - start
    if allocator == "incremental":
        # The level cache must actually engage on the fully contended
        # case — fanin is the workload the cache exists for.  (The
        # former ``timer_elisions > 0`` guard is subsumed: under the
        # comp-timer regime elisions are incidental, cache traffic is
        # the invariant.)
        assert net.cache_hits + net.cache_rebuilds > 0, (
            "level cache never consulted under fanin_hotspot "
            f"({net.realloc_count} reallocs)"
        )
    return _result(
        "fanin_hotspot", allocator, net, env, 2 * completed, wall,
        {"flows": flows, "rounds": rounds},
    )


def bench_fanin_scaling(
    allocator: str,
    flow_counts: Sequence[int] = (1000, 4000, 10000),
    churn_rounds: int = 250,
    legacy_max_flows: int = 4000,
) -> dict:
    """Per-event cost vs component size on one saturated link.

    For each population N, N long-lived flows pin the hot link and a
    single churner restarts short flows back-to-back; only the churn
    phase is timed, so ``per_event_us`` isolates the allocator's
    marginal cost at that component size.  ``incremental`` keeps exact
    eager per-flow state — provably Θ(N) per event, since every
    arrival changes every member's rate — while ``analytic`` (opt-in)
    integrates one shared service curve at O(log N) per event: the
    flat-cost row the 1k→10k acceptance target reads.  ``legacy`` is
    capped at *legacy_max_flows* (its global recompute plus full timer
    rearm is quadratic enough to dominate the suite's runtime).
    """
    rows: list[dict] = []
    counts = [
        n for n in flow_counts
        if not (allocator == "legacy" and n > legacy_max_flows)
    ]
    for n in counts:
        env = Environment()
        net = FlowNetwork(env, allocator=allocator)
        hot = Link(link_id="scale.hot", src="many", dst="gpu",
                   capacity=100 * MB, kind=LinkKind.PCIE)
        # Pinned population: sized to outlive the whole churn phase.
        for _ in range(n):
            net.start_flow([hot], 1e15)
        churn_done: list[bool] = []

        def churner():
            for round_no in range(churn_rounds):
                flow = net.start_flow([hot], (1 + round_no % 7) * MB / 8)
                yield flow.done
            churn_done.append(True)

        env.process(churner())
        events = 2 * churn_rounds  # one start + one finish per restart
        with _gc_paused():
            start = time.perf_counter()
            while not churn_done:
                env.step()
            wall = max(time.perf_counter() - start, 1e-9)
        rows.append({
            "flows": n,
            "churn_events": events,
            "wall_s": wall,
            "events_per_sec": events / wall,
            "per_event_us": wall / events * 1e6,
            "cache_hits": net.cache_hits,
            "cache_rebuilds": net.cache_rebuilds,
            "analytic_events": net.analytic_events,
        })
    record = {
        "name": "fanin_scaling",
        "allocator": allocator,
        "config": {"flow_counts": list(counts),
                   "churn_rounds": churn_rounds},
        "rows": rows,
        # Aggregates so the document's flat schema consumers (summary
        # table, CI assertion) can treat this like any other record.
        "flow_events": sum(r["churn_events"] for r in rows),
        "wall_s": sum(r["wall_s"] for r in rows),
        "events_per_sec": (
            sum(r["churn_events"] for r in rows)
            / max(sum(r["wall_s"] for r in rows), 1e-9)
        ),
    }
    if len(rows) > 1:
        record["per_event_ratio_max_over_min_flows"] = (
            rows[-1]["per_event_us"] / rows[0]["per_event_us"]
        )
    return record


def bench_component_storm(
    allocator: str,
    flow_counts: Sequence[int] = (1000, 4000, 10000),
    churn_rounds: int = 250,
    leaves: int = 16,
) -> dict:
    """Churn inside one large *multi-link* clean component.

    N pinned flows spread over *leaves* leaf links, every path crossing
    one huge shared uplink, so the whole topology is a single clean
    component with ``leaves + 2`` links; a churner restarts short flows
    back-to-back on a sparse dedicated leaf.  Only the churn phase is
    timed.

    Leaf capacities are exact multiples of the per-leaf population
    (power-of-two per-flow shares), so the water-fill's freeze
    residuals hit exactly ``0.0`` and the level structure is one level
    per leaf instead of one terminal catch-all — the representative
    case for the splice cache.  The eager ``incremental`` allocator
    still pays Θ(N) per churn event (advance + partition over every
    member); ``epoch`` defers member advances into the component
    ledger and splices through the per-level buckets, so its per-event
    cost is flat in N — the multi-link epoch fast-forwarding headline
    (read ``per_event_ratio_max_over_min_flows``).
    """
    rows: list[dict] = []
    for n in flow_counts:
        env = Environment()
        net = FlowNetwork(env, allocator=allocator)
        per = max(1, n // leaves)
        shared = Link(link_id="storm.shared", src="agg", dst="sink",
                      capacity=float(1 << 45), kind=LinkKind.NIC)
        churn_leaf = Link(link_id="storm.churnleaf", src="cn", dst="agg",
                          capacity=float(1 << 34), kind=LinkKind.PCIE)
        for k in range(leaves):
            leaf = Link(
                link_id=f"storm.leaf{k}", src=f"n{k}", dst="agg",
                capacity=float((k + 1) * per * (1 << 20)),
                kind=LinkKind.PCIE,
            )
            # Pinned population: sized to outlive the churn phase.
            for _ in range(per):
                net.start_flow([leaf, shared], 1e15)
        # Two pinned flows keep the churn leaf inside the component.
        for _ in range(2):
            net.start_flow([churn_leaf, shared], 1e15)
        churn_done: list[bool] = []

        def churner():
            for round_no in range(churn_rounds):
                flow = net.start_flow(
                    [churn_leaf], (1 + round_no % 7) * MB / 8
                )
                yield flow.done
            churn_done.append(True)

        env.process(churner())
        events = 2 * churn_rounds
        with _gc_paused():
            start = time.perf_counter()
            while not churn_done:
                env.step()
            wall = max(time.perf_counter() - start, 1e-9)
        rows.append({
            "flows": leaves * per + 2,
            "churn_events": events,
            "wall_s": wall,
            "events_per_sec": events / wall,
            "per_event_us": wall / events * 1e6,
            "cache_hits": net.cache_hits,
            "cache_rebuilds": net.cache_rebuilds,
            "epoch_boundaries": net.epoch_boundaries,
            "epoch_settles": net.epoch_settles,
        })
    record = {
        "name": "component_storm",
        "allocator": allocator,
        "config": {"flow_counts": list(flow_counts),
                   "churn_rounds": churn_rounds, "leaves": leaves},
        "rows": rows,
        "flow_events": sum(r["churn_events"] for r in rows),
        "wall_s": sum(r["wall_s"] for r in rows),
        "events_per_sec": (
            sum(r["churn_events"] for r in rows)
            / max(sum(r["wall_s"] for r in rows), 1e-9)
        ),
    }
    if len(rows) > 1:
        record["per_event_ratio_max_over_min_flows"] = (
            rows[-1]["per_event_us"] / rows[0]["per_event_us"]
        )
    return record


def bench_multipath_chunk_storm(
    allocator: str,
    groups: int = 16,
    transfers_per_group: int = 4,
    transfer_mb: int = 24,
) -> dict:
    """Paper-shaped storm: chunk-batched transfers over parallel paths.

    Each group is an isolated src->dst pair bridged by two two-hop
    paths; transfers within a group run back-to-back.  Every batch is a
    separate flow, so one logical transfer becomes dozens of flow
    arrivals/departures — the workload that made the from-scratch
    allocator quadratic.
    """
    env = Environment()
    net = FlowNetwork(env, allocator=allocator)
    engine = TransferEngine(env, net)
    group_paths: list[tuple[Path, Path]] = []
    for g in range(groups):
        src, mid_a, mid_b, dst = (
            f"g{g}.src", f"g{g}.ma", f"g{g}.mb", f"g{g}.dst"
        )
        pair = []
        for mid, tag, cap in ((mid_a, "a", 64 * MB), (mid_b, "b", 32 * MB)):
            up = Link(link_id=f"g{g}.{tag}.up", src=src, dst=mid,
                      capacity=cap, kind=LinkKind.PCIE)
            down = Link(link_id=f"g{g}.{tag}.down", src=mid, dst=dst,
                        capacity=cap, kind=LinkKind.PCIE)
            pair.append(Path(links=(up, down)))
        group_paths.append(tuple(pair))
    completed = 0

    def group_driver(g: int):
        nonlocal completed
        paths = group_paths[g]
        for t in range(transfers_per_group):
            size = (transfer_mb + (g * 5 + t * 3) % 8) * MB
            result = yield engine.transfer(paths, size, tag=f"g{g}.t{t}")
            assert result.size == size
            completed += 1

    for g in range(groups):
        env.process(group_driver(g))
    start = time.perf_counter()
    env.run()
    wall = time.perf_counter() - start
    # Flow events are what the allocator pays for: one start + one
    # finish per batch per path (every started flow drains by the time
    # env.run() returns).
    flow_events = 2 * net.flows_started
    return _result(
        "multipath_chunk_storm", allocator, net, env, flow_events, wall,
        {"groups": groups, "transfers_per_group": transfers_per_group,
         "transfer_mb": transfer_mb},
    )


def bench_transfer_storm(
    allocator: str,
    transfers: int = 8,
    rounds: int = 3,
    transfer_mb: int = 1024,
) -> dict:
    """Coalesced vs per-batch on quiescent large chunked transfers.

    Each of *transfers* disjoint links carries *rounds* back-to-back
    transfers of *transfer_mb*.  Nothing ever disturbs a link's
    component, so ``coalesced`` mode collapses every transfer into one
    macro-flow (O(1) DES events) while ``per_batch`` pays the full
    O(size/batch) loop.  Both runs are charged the same *logical*
    batch-event count, so events/sec compares the cost of delivering
    identical observable behaviour.  The returned record is the
    coalesced run, with the per-batch run nested under ``"per_batch"``
    and the headline ratio under ``"coalesced_speedup_over_per_batch"``.

    With the ``legacy`` allocator the engine never coalesces (it
    predates components), so both runs take the per-batch path and the
    ratio hovers around 1x — kept as a baseline record only.
    """
    def run_mode(mode: str) -> dict:
        env = Environment()
        net = FlowNetwork(env, allocator=allocator)
        engine = TransferEngine(env, net, mode=mode)
        paths = [
            Path((Link(link_id=f"storm.l{i}", src=f"s{i}", dst=f"h{i}",
                       capacity=16 * 1024 * MB, kind=LinkKind.PCIE),))
            for i in range(transfers)
        ]
        completed = 0

        def driver(i: int):
            nonlocal completed
            for r in range(rounds):
                result = yield engine.transfer(
                    [paths[i]], transfer_mb * MB, tag=f"storm.t{i}.{r}"
                )
                assert result.size == transfer_mb * MB
                completed += 1

        for i in range(transfers):
            env.process(driver(i))
        start = time.perf_counter()
        env.run()
        wall = time.perf_counter() - start
        assert completed == transfers * rounds
        batch_bytes = engine.chunk_size * engine.batch_chunks
        batches = transfers * rounds * math.ceil(transfer_mb * MB / batch_bytes)
        record = _result(
            "transfer_storm", allocator, net, env, 2 * batches, wall,
            {"transfers": transfers, "rounds": rounds,
             "transfer_mb": transfer_mb},
        )
        record["transfer_mode"] = mode
        record["flows_started"] = net.flows_started
        return record

    record = run_mode("coalesced")
    per_batch = run_mode("per_batch")
    assert record["sim_time"] == per_batch["sim_time"], (
        "coalesced changed observable timing: "
        f"{record['sim_time']} != {per_batch['sim_time']}"
    )
    record["per_batch"] = per_batch
    record["coalesced_speedup_over_per_batch"] = (
        record["events_per_sec"] / per_batch["events_per_sec"]
    )
    if allocator != "legacy" and transfer_mb >= 1024:
        assert record["coalesced_speedup_over_per_batch"] >= 2.0, (
            "coalescing below the 2x floor at 1 GB: "
            f"{record['coalesced_speedup_over_per_batch']:.2f}x"
        )
    return record


BenchFn = Callable[..., dict]

BENCHMARKS: dict[str, tuple[BenchFn, dict, dict]] = {
    # name -> (fn, full-run kwargs, quick-run kwargs)
    "flow_churn": (
        bench_flow_churn,
        {"flows": 256, "components": 8, "rounds": 24},
        {"flows": 64, "components": 8, "rounds": 4},
    ),
    "fanin_hotspot": (
        bench_fanin_hotspot,
        {"flows": 128, "rounds": 16},
        {"flows": 32, "rounds": 4},
    ),
    "fanin_scaling": (
        bench_fanin_scaling,
        {"flow_counts": (1000, 4000, 10000), "churn_rounds": 250},
        {"flow_counts": (256, 1024), "churn_rounds": 60},
    ),
    "component_storm": (
        bench_component_storm,
        {"flow_counts": (1000, 4000, 10000), "churn_rounds": 250},
        {"flow_counts": (256, 1024), "churn_rounds": 60},
    ),
    "multipath_chunk_storm": (
        bench_multipath_chunk_storm,
        {"groups": 16, "transfers_per_group": 4, "transfer_mb": 24},
        {"groups": 4, "transfers_per_group": 2, "transfer_mb": 8},
    ),
    "transfer_storm": (
        bench_transfer_storm,
        {"transfers": 8, "rounds": 3, "transfer_mb": 1024},
        {"transfers": 4, "rounds": 2, "transfer_mb": 64},
    ),
}

# Per-benchmark allocator override: the scaling curves need the opt-in
# fast modes (the flat-cost rows) next to the eager ones.
BENCH_ALLOCATORS: dict[str, tuple[str, ...]] = {
    "fanin_scaling": ("incremental", "analytic", "legacy"),
    "component_storm": ("incremental", "epoch"),
}

# Scaling benchmarks are compared per-row (per_event_us across flow
# counts), not by aggregate events/sec, so the incremental-over-legacy
# speedup loop skips them.
SCALING_BENCHMARKS = ("fanin_scaling", "component_storm")


def run_benchmarks(
    quick: bool = False,
    names: Optional[Sequence[str]] = None,
    allocators: Sequence[str] = DEFAULT_ALLOCATORS,
) -> dict:
    """Run the selected microbenchmarks for each allocator.

    Returns the ``BENCH_net.json`` document: per-run records plus an
    incremental-over-legacy speedup per scenario (when both ran).
    """
    selected = list(names) if names else list(BENCHMARKS)
    unknown = [n for n in selected if n not in BENCHMARKS]
    if unknown:
        raise ValueError(
            f"unknown benchmark(s): {', '.join(unknown)}; "
            f"choose from {', '.join(BENCHMARKS)}"
        )
    runs: list[dict] = []
    for name in selected:
        fn, full_kwargs, quick_kwargs = BENCHMARKS[name]
        kwargs = quick_kwargs if quick else full_kwargs
        for allocator in BENCH_ALLOCATORS.get(name, allocators):
            runs.append(fn(allocator, **kwargs))
    speedups: dict[str, float] = {}
    for name in selected:
        if name in SCALING_BENCHMARKS:
            continue  # compared per-row below, not by aggregate
        by_alloc = {
            run["allocator"]: run for run in runs if run["name"] == name
        }
        if "incremental" in by_alloc and "legacy" in by_alloc:
            speedups[name] = (
                by_alloc["incremental"]["events_per_sec"]
                / by_alloc["legacy"]["events_per_sec"]
            )
    document = {
        "schema": SCHEMA_VERSION,
        "generated_by": "repro bench",
        "mode": "quick" if quick else "full",
        "modes": mode_metadata(),
        "python": platform.python_version(),
        "benchmarks": runs,
        "speedup_incremental_over_legacy": speedups,
    }
    for scale_name in SCALING_BENCHMARKS:
        scaling: dict[str, dict] = {}
        for run in runs:
            if run["name"] != scale_name:
                continue
            scaling[run["allocator"]] = {
                "per_event_us": {
                    str(row["flows"]): row["per_event_us"]
                    for row in run["rows"]
                },
                "per_event_ratio_max_over_min_flows": run.get(
                    "per_event_ratio_max_over_min_flows"
                ),
            }
        if scaling:
            document[scale_name] = scaling
    return document


def write_results(document: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")


def format_summary(document: dict) -> str:
    """Human-readable per-scenario summary for logs and CI output."""
    lines = [
        f"{'benchmark':<24} {'allocator':<12} {'events/s':>12} "
        f"{'wall (s)':>9} {'reallocs':>9} {'mean comp':>10}"
    ]
    for run in document["benchmarks"]:
        if "rows" in run:  # scaling records get their own lines below
            continue
        lines.append(
            f"{run['name']:<24} {run['allocator']:<12} "
            f"{run['events_per_sec']:>12.0f} {run['wall_s']:>9.3f} "
            f"{run['realloc_count']:>9} {run['mean_component_size']:>10.1f}"
        )
    for run in document["benchmarks"]:
        for row in run.get("rows", ()):
            lines.append(
                f"{run['name']:<24} {run['allocator']:<12} "
                f"{row['events_per_sec']:>12.0f} {row['wall_s']:>9.3f} "
                f"flows={row['flows']:<7} "
                f"per-event={row['per_event_us']:.1f}us"
            )
        ratio = run.get("per_event_ratio_max_over_min_flows")
        if ratio is not None:
            counts = run["config"]["flow_counts"]
            lines.append(
                f"scaling[{run['name']}/{run['allocator']}] per-event "
                f"{counts[-1]}/{counts[0]} flows = {ratio:.2f}x"
            )
    for run in document["benchmarks"]:
        ratio = run.get("coalesced_speedup_over_per_batch")
        if ratio is not None:
            lines.append(
                f"coalesce[{run['name']}/{run['allocator']}] = {ratio:.2f}x "
                "(events/sec, coalesced over per_batch)"
            )
    for name, speedup in document["speedup_incremental_over_legacy"].items():
        lines.append(f"speedup[{name}] = {speedup:.2f}x (events/sec, "
                     "incremental over legacy)")
    return "\n".join(lines)
