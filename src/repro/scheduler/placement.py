"""Function placement policies (paper §5, "Function scheduling").

GROUTER adopts MAPA [36] within a node: place communicating functions
on GPUs with the best interconnect between them.  Round-robin and
random placement serve as sensitivity baselines for the ablation
benches.  A placement maps each GPU stage of a workflow to a physical
GPU (CPU stages always run on their node's host).
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.common.errors import SchedulingError
from repro.sim.core import Environment
from repro.telemetry.events import PlacementDecision
from repro.topology.cluster import ClusterTopology
from repro.topology.devices import Gpu
from repro.workflow.dag import Workflow


@dataclass
class PlacementResult:
    """stage name -> GPU device id (GPU stages only)."""

    assignment: dict[str, str] = field(default_factory=dict)

    def gpu_of(self, stage_name: str) -> str:
        try:
            return self.assignment[stage_name]
        except KeyError:
            raise SchedulingError(
                f"stage {stage_name!r} has no GPU assignment"
            ) from None


class PlacementPolicy(abc.ABC):
    """Strategy interface for placing a workflow's GPU stages."""

    name = "abstract"

    @abc.abstractmethod
    def place(
        self,
        workflow: Workflow,
        cluster: ClusterTopology,
        load: Optional[dict[str, int]] = None,
        allowed_gpus: Optional[Sequence[Gpu]] = None,
    ) -> PlacementResult:
        """Assign each GPU stage to a GPU.

        *load* counts instances already on each GPU (for balancing);
        *allowed_gpus* restricts candidates (e.g. to force cross-node
        placements in experiments).
        """

    def _candidates(
        self,
        cluster: ClusterTopology,
        allowed_gpus: Optional[Sequence[Gpu]],
    ) -> list[Gpu]:
        gpus = list(allowed_gpus) if allowed_gpus is not None else cluster.all_gpus()
        if not gpus:
            raise SchedulingError("no candidate GPUs for placement")
        return gpus


class RoundRobinPlacement(PlacementPolicy):
    """Cycle through GPUs in index order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def place(self, workflow, cluster, load=None, allowed_gpus=None):
        gpus = self._candidates(cluster, allowed_gpus)
        result = PlacementResult()
        for stage in workflow.topological_order():
            if not stage.spec.is_gpu:
                continue
            gpu = gpus[self._next % len(gpus)]
            self._next += 1
            result.assignment[stage.name] = gpu.device_id
        return result


class RandomPlacement(PlacementPolicy):
    """Uniform random placement (seeded)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def place(self, workflow, cluster, load=None, allowed_gpus=None):
        gpus = self._candidates(cluster, allowed_gpus)
        result = PlacementResult()
        for stage in workflow.topological_order():
            if not stage.spec.is_gpu:
                continue
            result.assignment[stage.name] = self._rng.choice(gpus).device_id
        return result


class MapaPlacement(PlacementPolicy):
    """Interconnect-aware placement: maximize NVLink between neighbours.

    Stages are placed in topological order; each GPU stage goes to the
    candidate with the highest total NVLink capacity to its already
    placed predecessors, breaking ties toward the least-loaded GPU.
    """

    name = "mapa"

    def place(self, workflow, cluster, load=None, allowed_gpus=None):
        gpus = self._candidates(cluster, allowed_gpus)
        load = dict(load) if load is not None else {}
        result = PlacementResult()
        for stage in workflow.topological_order():
            if not stage.spec.is_gpu:
                continue
            placed_preds = [
                result.assignment[p]
                for p in workflow.predecessors(stage.name)
                if p in result.assignment
            ]
            best = None
            best_key = None
            for gpu in gpus:
                node = cluster.node_of_device(gpu.device_id)
                link_score = 0.0
                for pred_device in placed_preds:
                    if not cluster.same_node(gpu.device_id, pred_device):
                        continue
                    pred_gpu = cluster.gpu(pred_device)
                    if pred_gpu.device_id == gpu.device_id:
                        # Same-GPU co-location: zero-copy exchange, the
                        # best interconnect there is — but it serializes
                        # execution, so score it like a top NVLink.
                        link_score += node.nvlink_capacity(0, 1) or 1e9
                        continue
                    link_score += node.nvlink_capacity(
                        pred_gpu.index, gpu.index
                    )
                key = (-link_score, load.get(gpu.device_id, 0), gpu.device_id)
                if best_key is None or key < best_key:
                    best_key = key
                    best = gpu
            assert best is not None
            result.assignment[stage.name] = best.device_id
            load[best.device_id] = load.get(best.device_id, 0) + 1
        return result


def publish_placement(
    env: Environment,
    policy: PlacementPolicy,
    workflow: Workflow,
    result: PlacementResult,
) -> None:
    """Publish one placement decision on *env*'s telemetry bus.

    Policies themselves are time-free (they see only topology and
    load), so the caller that owns the environment — the platform's
    deploy path — reports the decision.
    """
    bus = env.telemetry
    if bus is not None:
        bus.publish(PlacementDecision(
            t=env.now,
            policy=policy.name,
            workflow=workflow.name,
            assignment=tuple(sorted(result.assignment.items())),
        ))


POLICIES = {
    RoundRobinPlacement.name: RoundRobinPlacement,
    RandomPlacement.name: RandomPlacement,
    MapaPlacement.name: MapaPlacement,
}


def make_placement(name: str, **kwargs) -> PlacementPolicy:
    """Instantiate a placement policy by name."""
    try:
        return POLICIES[name](**kwargs)
    except KeyError:
        raise SchedulingError(
            f"unknown placement policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None
