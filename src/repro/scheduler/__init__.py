"""Placement policies and pre-warming."""

from repro.scheduler.placement import (
    MapaPlacement,
    PlacementPolicy,
    PlacementResult,
    RandomPlacement,
    RoundRobinPlacement,
    make_placement,
)
from repro.scheduler.prewarm import PrewarmManager

__all__ = [
    "MapaPlacement",
    "PlacementPolicy",
    "PlacementResult",
    "RandomPlacement",
    "RoundRobinPlacement",
    "make_placement",
    "PrewarmManager",
]
