"""Function pre-warming (paper §5, SHEPHERD-style).

A cold start pays container startup plus model loading over PCIe; a
pre-warmed instance pays neither.  The manager keeps instances warm for
a window after their last use (the same interval-histogram idea the
elastic storage uses) and reports cold-start penalties for instances
invoked outside their window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import GB, MS

CONTAINER_START_LATENCY = 80 * MS
# Model weights stream from host over one PCIe link on a cold start.
DEFAULT_LOAD_BANDWIDTH = 12 * GB


@dataclass
class WarmState:
    last_used: float
    keep_alive: float

    def is_warm(self, now: float) -> bool:
        return now - self.last_used <= self.keep_alive


class PrewarmManager:
    """Tracks per-instance warmth and computes cold-start penalties."""

    def __init__(
        self,
        keep_alive: float = 60.0,
        load_bandwidth: float = DEFAULT_LOAD_BANDWIDTH,
        container_start: float = CONTAINER_START_LATENCY,
    ) -> None:
        self.keep_alive = keep_alive
        self.load_bandwidth = load_bandwidth
        self.container_start = container_start
        self._states: dict[str, WarmState] = {}
        self.cold_starts = 0
        self.warm_hits = 0

    def prewarm(self, instance_id: str, now: float) -> None:
        """Mark an instance warm (deploy-time pre-warming)."""
        self._states[instance_id] = WarmState(now, self.keep_alive)

    def startup_penalty(
        self, instance_id: str, now: float, model_bytes: float
    ) -> float:
        """Latency to pay before this invocation can execute."""
        state = self._states.get(instance_id)
        if state is not None and state.is_warm(now):
            self.warm_hits += 1
            state.last_used = now
            return 0.0
        self.cold_starts += 1
        self._states[instance_id] = WarmState(now, self.keep_alive)
        return self.container_start + model_bytes / self.load_bandwidth

    def forget(self, instance_id: str) -> None:
        """Drop a decommissioned instance's warm state.

        Autoscaled replica sets shrink as well as grow; without this,
        every removed replica would pin its `WarmState` forever.
        """
        self._states.pop(instance_id, None)

    def is_warm(self, instance_id: str, now: float) -> bool:
        state = self._states.get(instance_id)
        return state is not None and state.is_warm(now)

    @property
    def tracked(self) -> int:
        """Number of instances with live warm state."""
        return len(self._states)
