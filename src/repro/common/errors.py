"""Exception hierarchy for the GROUTER reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch library failures without catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation kernel."""


class TopologyError(ReproError):
    """Raised for invalid cluster topologies or unknown devices."""


class RoutingError(ReproError):
    """Raised when no transfer path can be found between two devices."""


class AllocationError(ReproError):
    """Raised when GPU or host memory cannot be allocated."""


class StorageError(ReproError):
    """Raised for object-store failures (missing or deleted objects)."""


class AccessDeniedError(StorageError):
    """Raised when a function fails the store's access-control check."""


class SchedulingError(ReproError):
    """Raised when a function cannot be placed on the cluster."""


class WorkflowError(ReproError):
    """Raised for malformed workflow DAGs."""


class ConfigError(ReproError):
    """Raised for invalid configuration values."""
