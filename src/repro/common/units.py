"""Unit constants and helpers.

All simulation times are in **seconds** and all data sizes are in
**bytes**.  Bandwidths are bytes per second.  These constants keep call
sites readable (``4 * MB``, ``25 * GB_PER_S``) and are the single place
where unit conventions are defined.
"""

from __future__ import annotations

# --- data sizes (bytes) -------------------------------------------------
KB = 1024
MB = 1024 * KB
GB = 1024 * MB

# --- times (seconds) ----------------------------------------------------
US = 1e-6
MS = 1e-3
SECOND = 1.0
MINUTE = 60.0

# --- bandwidths (bytes / second) ----------------------------------------
GB_PER_S = float(GB)
MB_PER_S = float(MB)

# Network rates are usually quoted in bits per second.
GBIT_PER_S = 1e9 / 8.0


def to_mb(size_bytes: float) -> float:
    """Convert a byte count to megabytes (for reporting)."""
    return size_bytes / MB


def to_gb(size_bytes: float) -> float:
    """Convert a byte count to gigabytes (for reporting)."""
    return size_bytes / GB


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds (for reporting)."""
    return seconds / MS


def fmt_size(size_bytes: float) -> str:
    """Human-readable size string, e.g. ``'4.0 MB'``."""
    if size_bytes >= GB:
        return f"{size_bytes / GB:.1f} GB"
    if size_bytes >= MB:
        return f"{size_bytes / MB:.1f} MB"
    if size_bytes >= KB:
        return f"{size_bytes / KB:.1f} KB"
    return f"{size_bytes:.0f} B"


def fmt_time(seconds: float) -> str:
    """Human-readable duration string, e.g. ``'3.2 ms'``."""
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= MS:
        return f"{seconds / MS:.2f} ms"
    return f"{seconds / US:.1f} us"
