"""Mode-knob resolution: one precedence rule for every env override.

Every tunable mode in the stack (allocator, transfer coalescing, epoch
fast-forwarding) used to parse its own environment variable inline,
each with slightly different validation and no shared statement of who
wins when both an env var and a harness kwarg are set.  This module is
the single answer:

    **harness kwarg > environment variable > built-in default**

i.e. env vars configure *unmodified* harness runs (CI matrices, bench
sweeps), and explicit code always wins over ambient process state.

All helpers raise :class:`~repro.common.errors.ConfigError` on an
unrecognized value, naming the knob and the valid choices — a typo'd
``REPRO_NET_ALLOCATOR`` fails loudly instead of silently selecting the
default.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence

from repro.common.errors import ConfigError

__all__ = [
    "resolve_mode",
    "net_allocator",
    "net_transfer_mode",
    "net_epoch_enabled",
    "net_routing_mode",
    "mode_metadata",
    "NET_ALLOCATORS",
    "NET_TRANSFER_MODES",
    "NET_ROUTING_MODES",
    "ENV_NET_ALLOCATOR",
    "ENV_NET_TRANSFER",
    "ENV_NET_EPOCH",
    "ENV_NET_ROUTING",
]

# Canonical knob names / valid values.  The net layer re-exports these
# (repro.net.network.ALLOCATORS, repro.net.transfer.TRANSFER_MODES) so
# existing import sites keep working.
NET_ALLOCATORS = ("incremental", "epoch", "fullscan", "legacy", "analytic")
NET_TRANSFER_MODES = ("coalesced", "per_batch")
# Route-decision mode: "book" reads precomputed path books and the
# O(1) contention index; "enumerate" re-runs the per-decision topology
# enumeration (the pre-book reference path, kept for differentials).
NET_ROUTING_MODES = ("book", "enumerate")

ENV_NET_ALLOCATOR = "REPRO_NET_ALLOCATOR"
ENV_NET_TRANSFER = "REPRO_NET_TRANSFER"
ENV_NET_EPOCH = "REPRO_NET_EPOCH"
ENV_NET_ROUTING = "REPRO_NET_ROUTING"

_TRUTHY = ("1", "true", "yes", "on")
_FALSY = ("0", "false", "no", "off", "")


def resolve_mode(
    knob: str,
    *,
    env_var: str,
    valid: Sequence[str],
    default: str,
    override: Optional[str] = None,
) -> str:
    """Resolve *knob* to one of *valid* under the precedence rule.

    ``override`` is the harness kwarg (wins when not ``None``), then
    ``os.environ[env_var]``, then ``default``.  Whatever source
    supplies the value, it must be one of *valid*.
    """
    if override is not None:
        value, source = override, "kwarg"
    else:
        env = os.environ.get(env_var)
        if env is not None:
            value, source = env, f"env {env_var}"
        else:
            value, source = default, "default"
    if value not in valid:
        raise ConfigError(
            f"unknown {knob} {value!r} (from {source}); "
            f"valid: {', '.join(valid)}"
        )
    return value


def _env_flag(env_var: str) -> Optional[bool]:
    raw = os.environ.get(env_var)
    if raw is None:
        return None
    lowered = raw.strip().lower()
    if lowered in _TRUTHY:
        return True
    if lowered in _FALSY:
        return False
    raise ConfigError(
        f"unknown boolean {env_var}={raw!r}; "
        f"valid: {', '.join(_TRUTHY)} / {', '.join(v for v in _FALSY if v)}"
    )


def net_epoch_enabled(override: Optional[bool] = None) -> bool:
    """Whether epoch fast-forwarding is the *default* allocator choice.

    ``REPRO_NET_EPOCH=1`` flips the default allocator from
    ``incremental`` to ``epoch``; an explicit allocator (kwarg or
    ``REPRO_NET_ALLOCATOR``) still wins, per the precedence rule.
    """
    if override is not None:
        return override
    flag = _env_flag(ENV_NET_EPOCH)
    return bool(flag)


def net_allocator(override: Optional[str] = None) -> str:
    """Resolve the flow-network allocator mode."""
    default = "epoch" if net_epoch_enabled() else "incremental"
    return resolve_mode(
        "allocator",
        env_var=ENV_NET_ALLOCATOR,
        valid=NET_ALLOCATORS,
        default=default,
        override=override,
    )


def net_transfer_mode(override: Optional[str] = None) -> str:
    """Resolve the transfer-engine batching mode."""
    return resolve_mode(
        "transfer mode",
        env_var=ENV_NET_TRANSFER,
        valid=NET_TRANSFER_MODES,
        default="coalesced",
        override=override,
    )


def net_routing_mode(override: Optional[str] = None) -> str:
    """Resolve the route-decision mode (path books vs. re-enumeration)."""
    return resolve_mode(
        "routing mode",
        env_var=ENV_NET_ROUTING,
        valid=NET_ROUTING_MODES,
        default="book",
        override=override,
    )


def mode_metadata(
    *,
    allocator: Optional[str] = None,
    transfer: Optional[str] = None,
    routing: Optional[str] = None,
) -> Dict[str, object]:
    """Resolved mode knobs as a flat dict, for stamping BENCH_*.json.

    Callers that instantiated a network/engine pass the modes they
    actually used; omitted knobs resolve from the environment the same
    way a fresh harness would.
    """
    resolved_alloc = net_allocator(allocator)
    return {
        "allocator": resolved_alloc,
        "transfer_mode": net_transfer_mode(transfer),
        "epoch": resolved_alloc == "epoch",
        "routing": net_routing_mode(routing),
    }
