"""Deterministic identifier generation.

The simulator must be fully reproducible, so identifiers come from
per-prefix monotonic counters instead of ``uuid``.  A fresh
:class:`IdGenerator` is created per simulation run, so two runs with the
same seed produce identical identifier streams.
"""

from __future__ import annotations

from collections import defaultdict


class IdGenerator:
    """Produces identifiers like ``data-0``, ``data-1``, ``fn-0``, ...

    One generator is shared per simulation context; prefixes are
    independent counters.
    """

    def __init__(self) -> None:
        self._counters: dict[str, int] = defaultdict(int)

    def next(self, prefix: str) -> str:
        """Return the next identifier for *prefix*."""
        value = self._counters[prefix]
        self._counters[prefix] = value + 1
        return f"{prefix}-{value}"

    def peek(self, prefix: str) -> int:
        """Return the next counter value without consuming it."""
        return self._counters[prefix]

    def reset(self) -> None:
        """Reset all counters (used between simulation runs)."""
        self._counters.clear()
