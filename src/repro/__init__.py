"""GROUTER reproduction: a GPU-centric serverless data plane, simulated.

This package reproduces *Efficient Data Passing for Serverless Inference
Workflows: A GPU-Centric Approach* (EuroSys 2026).  The public surface
re-exports the pieces most users need; subpackages hold the substrates:

- :mod:`repro.sim` — discrete-event simulation kernel
- :mod:`repro.net` — fluid-flow link/bandwidth model + transfer engine
- :mod:`repro.topology` — GPU cluster topologies (DGX-V100/A100, A10, H800)
- :mod:`repro.memory` — GPU memory pools, elasticity, eviction
- :mod:`repro.storage` — data objects, catalogs, GPU/host stores
- :mod:`repro.routing` — contention/topology-aware path selection
- :mod:`repro.dataplane` — GROUTER and the three baseline data planes
- :mod:`repro.functions`, :mod:`repro.workflow` — functions and DAGs
- :mod:`repro.scheduler`, :mod:`repro.platform` — placement + platform
- :mod:`repro.traces` — Azure-like arrival generators
- :mod:`repro.llm` — KV-cache / Mixture-of-Agents layer
- :mod:`repro.experiments` — one module per paper table/figure
- :mod:`repro.tracing`, :mod:`repro.analysis`, :mod:`repro.report` —
  request Gantt tracing, bootstrap statistics, table rendering
- :mod:`repro.cli` — ``python -m repro`` entry point

Quick start::

    from repro import quickstart
    env, cluster, plane, platform = quickstart("grouter")
"""

from repro.dataplane import PLANES, make_plane
from repro.platform import ServerlessPlatform
from repro.sim import Environment
from repro.topology import make_cluster
from repro.traces import make_trace
from repro.workflow import WORKLOADS, get_workload

__version__ = "1.0.0"

__all__ = [
    "PLANES",
    "WORKLOADS",
    "Environment",
    "ServerlessPlatform",
    "get_workload",
    "make_cluster",
    "make_plane",
    "make_trace",
    "quickstart",
]


def quickstart(
    plane_name: str = "grouter",
    preset: str = "dgx-v100",
    num_nodes: int = 1,
    **plane_kwargs,
):
    """Build a ready-to-use (env, cluster, plane, platform) stack."""
    env = Environment()
    cluster = make_cluster(preset, num_nodes=num_nodes)
    plane = make_plane(plane_name, env, cluster, **plane_kwargs)
    platform = ServerlessPlatform(env, cluster, plane)
    return env, cluster, plane, platform
