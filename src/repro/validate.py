"""Claim-by-claim validation scorecard.

Runs scaled-down versions of the paper's experiments and checks each
headline claim *qualitatively* (direction/ordering, with generous
margins), printing a PASS/FAIL scorecard.  Used by ``python -m repro
validate`` and by EXPERIMENTS.md to summarize reproduction status.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass
class Claim:
    """One checked paper claim."""

    claim_id: str
    statement: str
    check: Callable[[], tuple[bool, str]]


@dataclass
class ClaimResult:
    claim_id: str
    statement: str
    passed: bool
    detail: str


@dataclass
class Scorecard:
    results: list[ClaimResult] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return sum(1 for r in self.results if r.passed)

    @property
    def total(self) -> int:
        return len(self.results)

    def format(self) -> str:
        lines = [f"Reproduction scorecard: {self.passed}/{self.total} claims hold"]
        for result in self.results:
            mark = "PASS" if result.passed else "FAIL"
            lines.append(f"[{mark}] {result.claim_id}: {result.statement}")
            lines.append(f"       {result.detail}")
        return "\n".join(lines)


def _check_fig3() -> tuple[bool, str]:
    from repro.experiments import fig03

    table = fig03.run_overall(workflows=("driving", "image"), duration=8.0)
    fractions = {r["workflow"]: r["data_fraction"] for r in table.rows}
    ok = all(f > 0.5 for f in fractions.values())
    return ok, f"host-centric data fractions: {fractions}"


def _check_asymmetry() -> tuple[bool, str]:
    from repro.experiments import fig06

    bandwidth = fig06.measure_pair_bandwidth()
    pairs = [(a, b) for (a, b) in bandwidth if a < b]
    double = sum(1 for p in pairs if bandwidth[p] > 40)
    absent = sum(1 for p in pairs if bandwidth[p] <= 20)
    ok = double == 8 and absent == 12
    return ok, f"double-link pairs={double}/8, NVLink-less pairs={absent}/12"


def _check_fig13() -> tuple[bool, str]:
    from repro.experiments import fig13

    details = {}
    ok = True
    for pattern, threshold in (("intra", 0.5), ("host", 0.3), ("inter", 0.5)):
        table = fig13.run_pattern(pattern, sizes_mb=(64,), trials=2)
        reduction = table.rows[0]["grouter_reduction_vs_best_baseline"]
        details[pattern] = round(reduction, 3)
        ok = ok and reduction > threshold
    return ok, f"GROUTER reductions vs best baseline: {details}"


def _check_fig14() -> tuple[bool, str]:
    from repro.experiments import fig14

    table = fig14.run(workflows=("driving", "image"), duration=10.0)
    reductions = {
        r["workflow"]: round(r["grouter_reduction_vs_infless"], 3)
        for r in table.rows
    }
    ok = all(v > 0.2 for v in reductions.values())
    return ok, f"P99 reductions vs INFless+: {reductions}"


def _check_fig16() -> tuple[bool, str]:
    from repro.experiments import fig16

    table = fig16.run(duration=10.0)
    slowdowns = [round(r["slowdown_vs_full"], 2) for r in table.rows]
    ok = slowdowns[-1] > 1.2 and slowdowns == sorted(slowdowns)
    return ok, f"cumulative ablation slowdowns: {slowdowns}"


def _check_fig18() -> tuple[bool, str]:
    from repro.experiments import fig18

    table = fig18.run_tail_latency(duration=10.0)
    p99s = {r["system"]: round(r["p99_ms"], 1) for r in table.rows}
    ok = (
        p99s["grouter"] <= p99s["rq"]
        and p99s["rq"] <= p99s["lru"] * 1.05
        and p99s["grouter"] < p99s["infless+"]
    )
    return ok, f"P99 (ms) under 6% storage: {p99s}"


def _check_fig19() -> tuple[bool, str]:
    from repro.experiments import fig19

    table = fig19.run_input_lengths(lengths=(4096,))
    row = table.rows[0]
    ok = (
        row["grouter_reduction_vs_infless"] > 0.4
        and row["grouter_reduction_vs_mooncake"] > 0.2
    )
    return ok, (
        f"TTFT@4K reductions: vs INFless+ "
        f"{row['grouter_reduction_vs_infless']:.0%} (paper 66%), vs "
        f"Mooncake+ {row['grouter_reduction_vs_mooncake']:.0%} (paper 57%)"
    )


def _check_fig20() -> tuple[bool, str]:
    from repro.experiments import fig20

    table = fig20.run_a10_latency(sizes_mb=(64,), trials=2)
    reduction = table.rows[0]["grouter_reduction"]
    return reduction > 0.2, (
        f"A10 (no NVLink) reduction {reduction:.0%} (paper 51%)"
    )


CLAIMS: list[Claim] = [
    Claim(
        "fig3-motivation",
        "data passing dominates host-centric end-to-end latency",
        _check_fig3,
    ),
    Claim(
        "fig6-asymmetry",
        "DGX-V100: 8/28 double-bandwidth pairs, 12/28 NVLink-less pairs",
        _check_asymmetry,
    ),
    Claim(
        "fig13-data-passing",
        "GROUTER cuts raw data-passing latency in all three patterns",
        _check_fig13,
    ),
    Claim(
        "fig14-end-to-end",
        "GROUTER cuts end-to-end P99 vs the host-centric baseline",
        _check_fig14,
    ),
    Claim(
        "fig16-ablation",
        "each disabled mechanism monotonically slows data passing",
        _check_fig16,
    ),
    Claim(
        "fig18-elastic",
        "GROUTER <= RQ <= LRU < INFless+ under memory pressure",
        _check_fig18,
    ),
    Claim(
        "fig19-llm",
        "GROUTER cuts MoA TTFT vs INFless+ and Mooncake+",
        _check_fig19,
    ),
    Claim(
        "fig20-no-nvlink",
        "GROUTER wins even on a server without NVLink",
        _check_fig20,
    ),
]


def run_scorecard(claims: list[Claim] | None = None) -> Scorecard:
    """Evaluate every claim; failures are captured, not raised."""
    card = Scorecard()
    for claim in claims if claims is not None else CLAIMS:
        try:
            passed, detail = claim.check()
        except Exception as error:  # pragma: no cover - defensive
            passed, detail = False, f"check crashed: {error!r}"
        card.results.append(
            ClaimResult(
                claim_id=claim.claim_id,
                statement=claim.statement,
                passed=passed,
                detail=detail,
            )
        )
    return card
