"""Setuptools shim.

The sandbox has no network and no ``wheel`` package, so PEP 517 editable
installs fail; ``python setup.py develop`` (or ``pip install -e .`` on
machines with wheel) both work through this shim.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
