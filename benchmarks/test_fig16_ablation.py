"""Bench: Fig. 16 — ablation of GROUTER's four mechanisms."""

from repro.experiments import fig16


def test_fig16_v100(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig16.run(preset="dgx-v100", rate=5.0, duration=12.0),
        rounds=1,
        iterations=1,
    )
    emit("fig16_ablation_v100", table)
    slowdowns = [row["slowdown_vs_full"] for row in table.rows]
    # Paper: 1.57-1.82x slower with everything off on V100.
    assert slowdowns[-1] > 1.1


def test_fig16_a100(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig16.run(preset="dgx-a100", rate=5.0, duration=12.0),
        rounds=1,
        iterations=1,
    )
    emit("fig16_ablation_a100", table)
    slowdowns = [row["slowdown_vs_full"] for row in table.rows]
    assert slowdowns[-1] > 1.05
