"""Bench: Fig. 19 — TTFT for MoA KV-cache passing on 8xH800 nodes."""

from repro.experiments import fig19


def test_fig19_input_lengths(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig19.run_input_lengths(),
        rounds=1,
        iterations=1,
    )
    emit("fig19a_ttft_input_length", table)
    at_4k = next(r for r in table.rows if r["input_tokens"] == 4096)
    # Paper at 4K: -66% vs INFless+, -57% vs Mooncake+.
    assert at_4k["grouter_reduction_vs_infless"] > 0.4
    assert at_4k["grouter_reduction_vs_mooncake"] > 0.2


def test_fig19_models_tp(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig19.run_models_tp(),
        rounds=1,
        iterations=1,
    )
    emit("fig19b_ttft_models_tp", table)
    # The Mooncake gap narrows as TP grows for every model.
    for model in ("llama-7b", "llama-13b", "llama-70b"):
        rows = [r for r in table.rows if r["model"] == model]
        assert (
            rows[-1]["grouter_reduction_vs_mooncake"]
            < rows[0]["grouter_reduction_vs_mooncake"]
        )
