"""Bench: Fig. 7 — GPU memory dynamics and forced eviction."""

from repro.experiments import fig07


def test_fig07_memory_timeline(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig07.run_memory_timeline(rate=4.0, duration=15.0),
        rounds=1,
        iterations=1,
    )
    emit("fig07a_memory_timeline", table)
    assert table.rows


def test_fig07_forced_eviction(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig07.run_forced_eviction(
            limits=(1.0, 0.1, 0.02), rate=10.0, duration=12.0
        ),
        rounds=1,
        iterations=1,
    )
    emit("fig07b_forced_eviction", table)
    pressure = [
        row["migrations"] + row["admission_spills"] for row in table.rows
    ]
    assert pressure[-1] >= pressure[0]
    assert pressure[-1] > 0
