"""Bench: Fig. 18 — elastic GPU storage under memory pressure."""

from repro.experiments import fig18


def test_fig18_tail_latency(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig18.run_tail_latency(duration=12.0),
        rounds=1,
        iterations=1,
    )
    emit("fig18a_tail_latency", table)
    rows = {r["system"]: r for r in table.rows}
    assert rows["grouter"]["p99_ms"] <= rows["infless+"]["p99_ms"]


def test_fig18_memory_sweep(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig18.run_memory_sweep(
            fractions=(0.01, 0.05, 0.1), duration=10.0
        ),
        rounds=1,
        iterations=1,
    )
    emit("fig18b_memory_sweep", table)
    for row in table.rows:
        assert row["grouter_p99_ms"] <= row["infless+_p99_ms"] * 1.2


def test_fig18_data_passing(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig18.run_data_passing(duration=12.0),
        rounds=1,
        iterations=1,
    )
    emit("fig18c_data_passing", table)
    rows = {r["system"]: r for r in table.rows}
    assert rows["grouter"]["data_ms"] < rows["infless+"]["data_ms"]
