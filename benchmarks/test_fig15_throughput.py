"""Bench: Fig. 15 — maximum sustainable throughput."""

from repro.experiments import fig15


def test_fig15_throughput(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig15.run(workload_name="driving", duration=8.0),
        rounds=1,
        iterations=1,
    )
    emit("fig15_throughput", table)
    for row in table.rows:
        # GROUTER sustains more load than the host-centric baseline
        # (paper: 2.1x intra-node, 2.73x cross-node).
        assert row["grouter_speedup_vs_infless"] > 1.0
