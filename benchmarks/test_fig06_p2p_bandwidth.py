"""Bench: Fig. 6(a) — DGX-V100 pairwise bandwidth matrix."""

from repro.experiments import fig06


def test_fig06_bandwidth_matrix(benchmark, emit):
    table = benchmark.pedantic(fig06.run, rounds=1, iterations=1)
    emit("fig06a_p2p_bandwidth", table)
    # Asymmetry statistics from §3.2.2 must hold exactly.
    bandwidth = fig06.measure_pair_bandwidth()
    pairs = [(a, b) for (a, b) in bandwidth if a < b]
    assert sum(1 for p in pairs if bandwidth[p] > 40) == 8
    assert sum(1 for p in pairs if bandwidth[p] <= 20) == 12
