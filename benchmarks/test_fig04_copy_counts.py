"""Bench: Fig. 4 — redundant data copies in the motivating chain."""

from repro.experiments import fig04


def test_fig04_copy_counts(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig04.run(trials=5), rounds=1, iterations=1
    )
    emit("fig04_copy_counts", table)
    rows = {r["plane"]: r for r in table.rows}
    # GROUTER achieves the optimum (one copy per hop); NVSHMEM+'s blind
    # placement averages well above it (paper: up to 3 extra copies).
    assert rows["grouter"]["copies"] == 2.0
    assert rows["nvshmem+"]["copies"] > 2.5
    assert rows["grouter"]["latency_ms"] < rows["nvshmem+"]["latency_ms"]
