"""Bench: Fig. 13 — data-passing latency across planes and sizes."""

from repro.experiments import fig13


def test_fig13_intra_node(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig13.run_pattern("intra", sizes_mb=(4, 16, 64, 256)),
        rounds=1,
        iterations=1,
    )
    emit("fig13a_intra_node", table)
    for row in table.rows:
        assert row["grouter_ms"] < row["infless+_ms"]
        assert row["grouter_ms"] < row["nvshmem+_ms"]


def test_fig13_host_gfn(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig13.run_pattern("host", sizes_mb=(4, 16, 64, 256)),
        rounds=1,
        iterations=1,
    )
    emit("fig13b_host_gfn", table)
    # Small transfers are overhead-bound on every plane; the win shows
    # from ~16 MB up (Fig 13 sweeps to GB scale).
    for row in table.rows:
        if row["size_mb"] >= 16:
            assert row["grouter_ms"] < row["infless+_ms"]


def test_fig13_inter_node(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig13.run_pattern("inter", sizes_mb=(4, 16, 64, 256)),
        rounds=1,
        iterations=1,
    )
    emit("fig13c_inter_node", table)
    big = table.rows[-1]
    # Paper: up to ~87% reduction cross-node at large sizes.
    assert big["grouter_reduction_vs_best_baseline"] > 0.5
