"""Bench: Table 1 — capability matrix derived from the implementations."""

from repro.experiments import table1


def test_table1_matrix(benchmark, emit):
    table = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    emit("table1_features", table)
    rows = {r["system"]: r for r in table.rows}
    assert rows["grouter"] == {
        "system": "grouter",
        "data_locality": "yes",
        "bandwidth_harvesting": "yes",
        "elastic_storage": "yes",
    }
    assert rows["nvshmem+"]["data_locality"] == "no"
