"""Bench: Fig. 14 — end-to-end P99 latency on both testbeds."""

from repro.experiments import fig14


def test_fig14_dgx_v100(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig14.run(preset="dgx-v100", rate=4.0, duration=12.0),
        rounds=1,
        iterations=1,
    )
    emit("fig14_v100_p99", table)
    for row in table.rows:
        assert row["grouter_p99_ms"] < row["infless+_p99_ms"]


def test_fig14_dgx_a100(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig14.run(preset="dgx-a100", rate=4.0, duration=12.0),
        rounds=1,
        iterations=1,
    )
    emit("fig14_a100_p99", table)
    for row in table.rows:
        assert row["grouter_p99_ms"] <= row["infless+_p99_ms"]
