"""Bench: transfer-engine tuning ablations (chunk size, batch size)."""

from repro.experiments import ablations


def test_chunk_size_sweep(benchmark, emit):
    table = benchmark.pedantic(
        ablations.run_chunk_size_sweep, rounds=1, iterations=1
    )
    emit("abl_chunk_size", table)
    by_chunk = {row["chunk_mb"]: row["latency_ms"] for row in table.rows}
    # The 2 MB default should not be worse than the extremes.
    assert by_chunk[2] <= by_chunk[0.25] * 1.05
    assert by_chunk[2] <= by_chunk[32] * 1.5


def test_batch_size_sweep(benchmark, emit):
    table = benchmark.pedantic(
        ablations.run_batch_size_sweep, rounds=1, iterations=1
    )
    emit("abl_batch_size", table)
    by_batch = {row["batch_chunks"]: row["latency_ms"] for row in table.rows}
    # Larger batches amortize setup: 1-chunk batches must be slowest.
    assert by_batch[1] >= by_batch[5]
