"""Benchmark fixtures: results directory + table emission helper."""

import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


@pytest.fixture(scope="session")
def out_dir():
    os.makedirs(OUT_DIR, exist_ok=True)
    return OUT_DIR


@pytest.fixture
def emit(out_dir):
    """Print a reproduced table and persist it under benchmarks/out/."""

    def _emit(name, *tables):
        text = "\n\n".join(table.format() for table in tables)
        print("\n" + text)
        path = os.path.join(out_dir, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        return path

    return _emit
