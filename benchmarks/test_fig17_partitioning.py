"""Bench: Fig. 17 — SLO-aware bandwidth partitioning under co-location."""

from repro.experiments import fig17


def test_fig17_partitioning(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig17.run(rate=4.0, duration=12.0),
        rounds=1,
        iterations=1,
    )
    emit("fig17_partitioning", table)
    rows = {(r["pairing"], r["config"]): r for r in table.rows}
    high_on = rows[("high contention (driving+video)", "grouter")]
    high_off = rows[("high contention (driving+video)", "grouter-BH")]
    # Partial reproduction: the fluid model shows a small protection
    # effect (the paper reports 32% on real PCIe arbitration hardware);
    # assert partitioning is not harmful and protects tail latency.
    assert (
        high_on["driving_data_ms"] <= high_off["driving_data_ms"] * 1.1
    )
    assert high_on["driving_p99_ms"] <= high_off["driving_p99_ms"] * 1.15
