"""Bench: Fig. 5(b) — PCIe interference without bandwidth partitioning."""

from repro.experiments import fig05


def test_fig05_interference(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig05.run(rate=5.0, duration=12.0),
        rounds=1,
        iterations=1,
    )
    emit("fig05b_pcie_interference", table)
    rows = {r["scenario"]: r for r in table.rows}
    co_located = rows["driving + video co-located"]
    # Co-location inflates gFn-host latency (paper: 3.65x).
    assert co_located["slowdown_vs_driving_alone"] > 1.0
