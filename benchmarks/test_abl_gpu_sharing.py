"""Bench: spatial vs temporal GPU sharing (paper §7 discussion).

Spatial sharing admits concurrent tenants per GPU, which sharpens
bandwidth and memory contention — the paper argues this makes GROUTER's
partitioning and elastic storage *more* critical, not less.
"""

from repro.dataplane import make_plane
from repro.experiments.harness import ExperimentTable, mean, p99
from repro.platform import ServerlessPlatform
from repro.sim import Environment
from repro.topology import make_cluster
from repro.traces import make_trace
from repro.workflow import get_workload


def run_sharing_sweep(rate=6.0, duration=12.0):
    table = ExperimentTable(
        name="Ablation: temporal vs spatial GPU sharing (driving, GROUTER)",
        columns=["mode", "mean_ms", "p99_ms", "mean_data_ms"],
    )
    for mode in ("temporal", "spatial"):
        env = Environment()
        cluster = make_cluster("dgx-v100")
        plane = make_plane("grouter", env, cluster)
        platform = ServerlessPlatform(
            env, cluster, plane, gpu_sharing=mode,
            spatial_slots=4, spatial_slowdown=1.2,
        )
        deployment = platform.deploy(get_workload("driving"))
        trace = make_trace("bursty", rate=rate, duration=duration, seed=6)
        results = platform.run_trace(deployment, trace)
        latencies = [r.latency for r in results]
        table.add(
            mode=mode,
            mean_ms=mean(latencies) * 1e3,
            p99_ms=p99(latencies) * 1e3,
            mean_data_ms=mean([r.data_time for r in results]) * 1e3,
        )
    return table


def test_gpu_sharing_sweep(benchmark, emit):
    table = benchmark.pedantic(run_sharing_sweep, rounds=1, iterations=1)
    emit("abl_gpu_sharing", table)
    rows = {r["mode"]: r for r in table.rows}
    # Spatial tenants contend for links: per-request data time rises.
    assert rows["spatial"]["mean_data_ms"] >= rows["temporal"]["mean_data_ms"]
