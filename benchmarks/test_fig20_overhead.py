"""Bench: Fig. 20 — no-NVLink applicability and system overheads."""

from repro.experiments import fig20


def test_fig20_a10_latency(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig20.run_a10_latency(sizes_mb=(16, 64, 256)),
        rounds=1,
        iterations=1,
    )
    emit("fig20a_a10_latency", table)
    # Paper: ~51% lower latency even without NVLink (larger transfers).
    for row in table.rows:
        if row["size_mb"] >= 64:
            assert row["grouter_reduction"] > 0.2


def test_fig20_cpu_overhead(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig20.run_cpu_overhead(rate=4.0, duration=12.0),
        rounds=1,
        iterations=1,
    )
    emit("fig20b_cpu_overhead", table)
    rows = {r["plane"]: r for r in table.rows}
    # GROUTER's control plane stays a small fraction of one core.
    assert rows["grouter"]["cpu_core_fraction"] < 0.1


def test_fig20_gpu_memory_overhead(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig20.run_gpu_memory_overhead(rate=4.0, duration=12.0),
        rounds=1,
        iterations=1,
    )
    emit("fig20c_gpu_memory_overhead", table)
    rows = {r["plane"]: r for r in table.rows}
    grouter_total = rows["grouter"]["final_reserved_gb"]
    nvshmem_total = (
        rows["nvshmem+"]["peak_pool_gb"]
        + rows["nvshmem+"]["peak_symmetric_gb"]
    )
    assert grouter_total < nvshmem_total
