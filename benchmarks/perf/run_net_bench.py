#!/usr/bin/env python
"""Standalone runner for the network-engine microbenchmarks.

Equivalent to ``python -m repro bench`` but runnable straight from a
checkout without installing the package:

    PYTHONPATH=src python benchmarks/perf/run_net_bench.py --quick

Writes ``BENCH_net.json`` (override with ``--out``) and prints the
per-scenario events/sec summary.  See README.md in this directory for
what each scenario stresses.
"""

from __future__ import annotations

import argparse
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.bench import (  # noqa: E402
    BENCHMARKS,
    format_summary,
    run_benchmarks,
    write_results,
)
from repro.net.network import ALLOCATORS  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmarks", nargs="*",
                        help=f"subset of: {', '.join(BENCHMARKS)}")
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down parameters for smoke runs")
    parser.add_argument("--out", default="BENCH_net.json")
    parser.add_argument("--allocators", default="incremental,legacy",
                        help=f"comma-separated subset of: "
                             f"{', '.join(ALLOCATORS)}")
    args = parser.parse_args(argv)

    allocators = tuple(args.allocators.split(","))
    unknown = [a for a in allocators if a not in ALLOCATORS]
    if unknown:
        parser.error(f"unknown allocator(s): {', '.join(unknown)}")
    try:
        document = run_benchmarks(
            quick=args.quick,
            names=args.benchmarks or None,
            allocators=allocators,
        )
    except ValueError as exc:
        parser.error(str(exc))
    print(format_summary(document))
    write_results(document, args.out)
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
