"""Bench: Fig. 3 — host-centric data-passing breakdown."""

from repro.experiments import fig03


def test_fig03_overall(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig03.run_overall(rate=3.0, duration=8.0),
        rounds=1,
        iterations=1,
    )
    emit("fig03a_breakdown", table)
    # The paper's headline: data passing dominates host-centric latency.
    heavy = [r for r in table.rows if r["workflow"] in ("driving", "video")]
    assert all(row["data_fraction"] > 0.5 for row in heavy)


def test_fig03_traffic_batches(benchmark, emit):
    table = benchmark.pedantic(
        lambda: fig03.run_traffic_batches(
            batches=(1, 4, 8, 16, 32), rate=3.0, duration=8.0
        ),
        rounds=1,
        iterations=1,
    )
    emit("fig03b_traffic_batches", table)
    fractions = [row["data_fraction"] for row in table.rows]
    assert fractions[-1] > fractions[0]  # bigger batches, more data time
