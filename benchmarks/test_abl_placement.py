"""Bench: placement-policy sensitivity (MAPA vs round-robin vs random)."""

from repro.experiments import ablations


def test_placement_sweep(benchmark, emit):
    table = benchmark.pedantic(
        lambda: ablations.run_placement_sweep(rate=4.0, duration=10.0),
        rounds=1,
        iterations=1,
    )
    emit("abl_placement", table)
    rows = {r["policy"]: r for r in table.rows}
    # MAPA exploits NVLink adjacency: not worse than random placement.
    assert rows["mapa"]["mean_ms"] <= rows["random"]["mean_ms"] * 1.1
