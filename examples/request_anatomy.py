#!/usr/bin/env python3
"""Anatomy of one request: where does the time go?

Runs a single driving-workflow request under the host-centric baseline
and under GROUTER with span tracing enabled, and prints an ASCII Gantt
chart of each: queueing, input fetches, execution, output publication
per stage.  The baseline's chart is dominated by ``<`` (fetch) and
``>`` (publish) bars; GROUTER's is mostly ``#`` (compute).

Run:  python examples/request_anatomy.py
"""

from repro.dataplane import make_plane
from repro.platform import ServerlessPlatform
from repro.sim import Environment
from repro.topology import make_cluster
from repro.tracing import SpanTracer
from repro.workflow import get_workload


def trace_one(plane_name):
    env = Environment()
    cluster = make_cluster("dgx-v100")
    plane = make_plane(plane_name, env, cluster)
    platform = ServerlessPlatform(env, cluster, plane)
    platform.tracer = SpanTracer()
    deployment = platform.deploy(get_workload("driving"))
    proc = platform.submit(deployment)
    env.run()
    return platform.tracer, proc.value.request_id


def main():
    for plane_name in ("infless+", "grouter"):
        tracer, request_id = trace_one(plane_name)
        print(f"=== {plane_name} ===")
        print(tracer.gantt(request_id))
        print(tracer.summary(request_id))
        print()


if __name__ == "__main__":
    main()
