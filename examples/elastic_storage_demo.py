#!/usr/bin/env python3
"""Elastic GPU storage under memory pressure (paper §4.4).

Caps GPU storage at 5% of device memory, replays a bursty trace of the
traffic workflow, and shows what the elastic storage layer did about
it: histogram-scaled pool sizes, queue-aware migrations to host memory,
and proactive restores.  A second run with LRU eviction shows why
request-queue awareness matters at the tail.

Run:  python examples/elastic_storage_demo.py
"""

from repro.common.units import GB, MB, fmt_time
from repro.dataplane import CAT_MIGRATION, CAT_RESTORE, make_plane
from repro.metrics import LatencyRecorder
from repro.platform import ServerlessPlatform
from repro.sim import Environment
from repro.topology import make_cluster
from repro.traces import make_trace
from repro.workflow import get_workload

STORAGE_FRACTION = 0.06
RATE = 12.0
DURATION = 20.0


def run(eviction_policy, proactive_restore):
    env = Environment()
    cluster = make_cluster("dgx-v100")
    plane = make_plane(
        "grouter",
        env,
        cluster,
        storage_limit_fraction=STORAGE_FRACTION,
        eviction_policy=eviction_policy,
        proactive_restore=proactive_restore,
    )
    platform = ServerlessPlatform(env, cluster, plane)
    deployment = platform.deploy(get_workload("driving"))
    trace = make_trace("bursty", rate=RATE, duration=DURATION, seed=11)
    results = platform.run_trace(deployment, trace)
    return plane, results


def describe(label, plane, results):
    recorder = LatencyRecorder()
    recorder.extend([r.latency for r in results])
    migrations = [
        r for r in plane.metrics.records if r.category == CAT_MIGRATION
    ]
    restores = [
        r for r in plane.metrics.records if r.category == CAT_RESTORE
    ]
    pool_peak = sum(p.peak_reserved for p in plane.pools.values())
    pool_now = plane.total_pool_reserved()
    print(f"[{label}]")
    print(f"  completed      : {len(results)} requests")
    print(f"  P99 latency    : {fmt_time(recorder.p99)}")
    print(f"  migrations     : {len(migrations)} "
          f"({sum(m.size for m in migrations) / MB:.0f} MB to host)")
    print(f"  restores       : {len(restores)}")
    print(f"  pool peak/now  : {pool_peak / GB:.2f} GB / {pool_now / GB:.2f} GB")
    print()


def main():
    print(f"GPU storage capped at {STORAGE_FRACTION:.0%} of device memory, "
          f"bursty trace ({RATE:.0f} req/s)\n")
    plane, results = run("queue-aware", proactive_restore=True)
    describe("GROUTER (queue-aware + proactive restore)", plane, results)
    plane, results = run("lru", proactive_restore=False)
    describe("LRU eviction, no restore", plane, results)
    print("Queue-aware eviction keeps the data the *next* invocations "
          "need on the GPU\nand proactively restores migrated objects "
          "when memory frees up.")


if __name__ == "__main__":
    main()
