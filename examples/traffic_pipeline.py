#!/usr/bin/env python3
"""Traffic-monitoring workflow end to end (the paper's Fig. 1 pipeline).

Deploys the six-stage traffic workflow (CPU decode -> GPU preprocess ->
YOLO detection -> postprocess -> person/vehicle recognition) on a
simulated DGX-V100, replays a bursty Azure-style trace against both the
host-centric baseline and GROUTER, and prints P50/P99 latency plus the
data-vs-compute breakdown.

Run:  python examples/traffic_pipeline.py
"""

from repro.common.units import fmt_time
from repro.dataplane import make_plane
from repro.experiments.harness import mean_breakdown
from repro.metrics import LatencyRecorder
from repro.platform import ServerlessPlatform
from repro.sim import Environment
from repro.topology import make_cluster
from repro.traces import make_trace
from repro.workflow import get_workload

RATE = 5.0  # mean requests/second
DURATION = 20.0  # seconds of trace


def run(plane_name):
    env = Environment()
    cluster = make_cluster("dgx-v100")
    plane = make_plane(plane_name, env, cluster)
    platform = ServerlessPlatform(env, cluster, plane)
    workload = get_workload("traffic")
    deployment = platform.deploy(workload, batch=16)
    trace = make_trace("bursty", rate=RATE, duration=DURATION, seed=42)
    results = platform.run_trace(deployment, trace)
    return results, workload


def main():
    print("Traffic workflow, bursty trace "
          f"({RATE:.0f} req/s avg, {DURATION:.0f} s), DGX-V100\n")
    for plane_name in ("infless+", "grouter"):
        results, workload = run(plane_name)
        recorder = LatencyRecorder()
        recorder.extend([r.latency for r in results])
        breakdown = mean_breakdown(results, workload.workflow)
        print(f"[{plane_name}]  {len(results)} requests")
        print(f"  P50 latency : {fmt_time(recorder.p50)}")
        print(f"  P99 latency : {fmt_time(recorder.p99)}")
        print(f"  gFn-gFn data: {fmt_time(breakdown.gfn_gfn)} / request")
        print(f"  gFn-host    : {fmt_time(breakdown.gfn_host)} / request")
        print(f"  compute     : {fmt_time(breakdown.compute)} / request")
        print(f"  data share  : {breakdown.data_fraction:.0%}\n")
    print("The host-centric plane shuttles every tensor through host "
          "memory;\nGROUTER keeps data on the GPUs that produced it and "
          "shrinks the\ndata-passing share of each request by several x.")


if __name__ == "__main__":
    main()
