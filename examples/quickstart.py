#!/usr/bin/env python3
"""Quickstart: move data between two GPU functions on every data plane.

Builds a simulated DGX-V100, places a producer on GPU0 and a consumer
on GPU3, pushes 256 MB through each data plane's Put/Get API, and
prints how long the exchange takes.  This is the paper's Fig. 2 in
about forty lines.

Run:  python examples/quickstart.py
"""

from repro.common.units import MB, fmt_time
from repro.dataplane import PLANES, make_plane
from repro.functions import FnContext, FunctionInstance, get_spec
from repro.sim import Environment, Resource
from repro.topology import make_cluster

SIZE = 256 * MB


def make_context(env, node, gpu_index, model):
    """A function context pinned to one GPU (its own container)."""
    instance = FunctionInstance(
        env,
        get_spec(model),
        node,
        gpu=node.gpu(gpu_index),
        gpu_resource=Resource(env),
    )
    return FnContext(instance, workflow_id="wf-demo", request_id="req-0")


def run_plane(plane_name):
    env = Environment()
    cluster = make_cluster("dgx-v100")
    plane = make_plane(plane_name, env, cluster)
    plane.acl.register_workflow("wf-demo", ["yolo-det", "person-rec"])
    node = cluster.nodes[0]
    producer = make_context(env, node, 0, "yolo-det")
    consumer = make_context(env, node, 3, "person-rec")
    timings = {}

    def exchange():
        t0 = env.now
        ref = yield plane.put(producer, SIZE)
        timings["put"] = env.now - t0
        t1 = env.now
        yield plane.get(consumer, ref)
        timings["get"] = env.now - t1
        timings["total"] = env.now - t0

    env.process(exchange())
    env.run()
    return timings


def main():
    print(f"Exchanging {SIZE / MB:.0f} MB between GPU0 and GPU3 "
          "(DGX-V100, one NVLink hop apart)\n")
    print(f"{'plane':<12} {'put':>12} {'get':>12} {'total':>12}")
    baseline = None
    for plane_name in PLANES:
        timings = run_plane(plane_name)
        if baseline is None:
            baseline = timings["total"]
        speedup = baseline / timings["total"]
        print(
            f"{plane_name:<12} {fmt_time(timings['put']):>12} "
            f"{fmt_time(timings['get']):>12} {fmt_time(timings['total']):>12}"
            f"   ({speedup:.1f}x vs infless+)"
        )
    print("\nGROUTER stores the data on the producer's own GPU (the put is"
          "\njust a pool allocation) and moves it exactly once, over"
          "\nparallel NVLink paths, when the consumer asks for it.")


if __name__ == "__main__":
    main()
