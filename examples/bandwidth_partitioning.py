#!/usr/bin/env python3
"""SLO-aware bandwidth partitioning under saturation (paper §4.3.2).

A latency-critical consumer repeatedly pulls a 192 MB tensor from host
memory with a 30 ms deadline while twelve throughput-oriented streams
flood every PCIe uplink with back-to-back 64 MB loads.  With max-min
sharing (what DeepPlan+-style parallel transfers give you) the critical
fetch drowns in the flood; GROUTER's rate control reserves Rate_least
for it and tops up the tightest deadline first.

Run:  python examples/bandwidth_partitioning.py
"""

import numpy as np

from repro.common.units import MB, MS, fmt_time
from repro.experiments.harness import (
    build_testbed,
    cpu_ctx,
    gpu_ctx,
    register_probe_workflow,
)

CRITICAL_BYTES = 192 * MB
CRITICAL_DEADLINE = 60 * MS
FLOOD_BYTES = 64 * MB
FLOOD_STREAMS_PER_GPU = 3


def run(policy):
    testbed = build_testbed(
        plane_name="grouter",
        with_platform=False,
        plane_kwargs={"network_policy": policy},
    )
    register_probe_workflow(testbed.plane)
    env, plane = testbed.env, testbed.plane
    latencies = []

    def critical_loop():
        for _ in range(20):
            src = cpu_ctx(testbed, 0)
            ref = yield plane.put(src, CRITICAL_BYTES)
            dst = gpu_ctx(
                testbed, 0, 0, slo_deadline=env.now + CRITICAL_DEADLINE
            )
            started = env.now
            yield plane.get(dst, ref)
            latencies.append(env.now - started)
            yield env.timeout(0.1)

    def flood_loop(gpu_index, offset):
        yield env.timeout(offset)
        for _ in range(400):
            src = cpu_ctx(testbed, 0)
            ref = yield plane.put(src, FLOOD_BYTES)
            dst = gpu_ctx(
                testbed, 0, gpu_index, slo_deadline=env.now + 200 * MS
            )
            yield plane.get(dst, ref)

    env.process(critical_loop())
    stream = 0
    for gpu_index in (4, 5, 6, 7):
        for _ in range(FLOOD_STREAMS_PER_GPU):
            env.process(flood_loop(gpu_index, 0.001 * stream))
            stream += 1
    env.run(until=2.5)
    return latencies


def main():
    print(
        f"Critical fetch: {CRITICAL_BYTES / MB:.0f} MB, "
        f"{CRITICAL_DEADLINE / MS:.0f} ms deadline, vs "
        f"{4 * FLOOD_STREAMS_PER_GPU} flood streams of "
        f"{FLOOD_BYTES / MB:.0f} MB\n"
    )
    for policy, label in (
        ("maxmin", "max-min sharing (GROUTER-BH / DeepPlan+-style)"),
        ("slo_gated", "SLO-gated rate control (GROUTER)"),
    ):
        latencies = run(policy)
        mean = float(np.mean(latencies))
        p95 = float(np.percentile(latencies, 95))
        met = sum(1 for value in latencies if value <= CRITICAL_DEADLINE)
        print(f"[{label}]")
        print(f"  mean fetch : {fmt_time(mean)}")
        print(f"  p95 fetch  : {fmt_time(p95)}")
        print(f"  deadline   : {met}/{len(latencies)} met\n")
    print("Rate_least reservations plus tightest-deadline-first residual "
          "keep the\ncritical transfer moving while the flood soaks up "
          "whatever is left.")


if __name__ == "__main__":
    main()
