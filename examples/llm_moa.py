#!/usr/bin/env python3
"""Mixture-of-Agents over KV-cache passing (paper §6.4).

Runs a 3-layer x 3-agent MoA on simulated 8xH800 nodes.  Every layer
boundary moves nine prompt+response KV caches across the network; the
time-to-first-token of each layer depends on how the serving system
ships those caches:

- INFless+  : GPU -> host -> single NIC -> host -> GPU (three copies)
- Mooncake+ : bounce through randomly placed KV-store GPUs
- GROUTER   : direct shard-to-shard GPUDirect RDMA over all NICs

Run:  python examples/llm_moa.py
"""

from repro.common.units import fmt_time
from repro.llm import MoaConfig, get_llm, recompute_ttft, run_moa

CONFIG = MoaConfig(
    model="llama-7b",
    layers=3,
    agents_per_layer=3,
    input_tokens=4096,
    response_tokens=256,
    tp=8,
)


def main():
    spec = get_llm(CONFIG.model)
    kv_gb = spec.total_kv_bytes(CONFIG.context_tokens) / 2**30
    print(
        f"MoA: {CONFIG.layers} layers x {CONFIG.agents_per_layer} agents, "
        f"{CONFIG.model}, TP={CONFIG.tp}, input {CONFIG.input_tokens} tokens"
    )
    print(f"KV cache handed between layers: {kv_gb:.2f} GB per agent pair\n")
    print(f"{'system':<12} {'mean layer TTFT':>16} {'end-to-end':>12}")
    for system in ("infless+", "mooncake+", "grouter"):
        result = run_moa(system, CONFIG)
        print(
            f"{system:<12} {fmt_time(result.mean_ttft):>16} "
            f"{fmt_time(result.total_latency):>12}"
        )
    no_reuse = recompute_ttft(spec, CONFIG.context_tokens, CONFIG.tp)
    print(
        f"\n(for scale: recomputing the prompt instead of passing KV would "
        f"cost {fmt_time(no_reuse)} per layer)"
    )


if __name__ == "__main__":
    main()
