"""Mode-knob resolution: precedence, validation, metadata stamping."""

import pytest

from repro.common.config import (
    ENV_NET_ALLOCATOR,
    ENV_NET_EPOCH,
    ENV_NET_TRANSFER,
    NET_ALLOCATORS,
    NET_TRANSFER_MODES,
    mode_metadata,
    net_allocator,
    net_epoch_enabled,
    net_transfer_mode,
    resolve_mode,
)
from repro.common.errors import ConfigError, ReproError


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    for var in (ENV_NET_ALLOCATOR, ENV_NET_TRANSFER, ENV_NET_EPOCH):
        monkeypatch.delenv(var, raising=False)


def test_precedence_kwarg_beats_env_beats_default(monkeypatch):
    assert net_allocator() == "incremental"
    monkeypatch.setenv(ENV_NET_ALLOCATOR, "legacy")
    assert net_allocator() == "legacy"
    assert net_allocator("fullscan") == "fullscan"  # kwarg wins


def test_unknown_values_raise_config_error(monkeypatch):
    with pytest.raises(ConfigError, match="unknown allocator"):
        net_allocator("bogus")
    monkeypatch.setenv(ENV_NET_TRANSFER, "chunky")
    with pytest.raises(ConfigError, match="unknown transfer mode") as exc:
        net_transfer_mode()
    # The error names the source and the valid choices.
    assert ENV_NET_TRANSFER in str(exc.value)
    for mode in NET_TRANSFER_MODES:
        assert mode in str(exc.value)


def test_config_error_is_a_repro_error():
    assert issubclass(ConfigError, ReproError)


def test_epoch_flag_flips_default_allocator(monkeypatch):
    monkeypatch.setenv(ENV_NET_EPOCH, "1")
    assert net_epoch_enabled() is True
    assert net_allocator() == "epoch"
    # An explicit allocator still wins over the flag.
    monkeypatch.setenv(ENV_NET_ALLOCATOR, "incremental")
    assert net_allocator() == "incremental"
    assert net_allocator("legacy") == "legacy"


@pytest.mark.parametrize("raw,expected", [
    ("1", True), ("true", True), ("YES", True), ("on", True),
    ("0", False), ("false", False), ("no", False), ("off", False),
    ("", False),
])
def test_epoch_flag_boolean_spellings(monkeypatch, raw, expected):
    monkeypatch.setenv(ENV_NET_EPOCH, raw)
    assert net_epoch_enabled() is expected


def test_epoch_flag_rejects_garbage(monkeypatch):
    monkeypatch.setenv(ENV_NET_EPOCH, "maybe")
    with pytest.raises(ConfigError, match="unknown boolean"):
        net_epoch_enabled()


def test_resolve_mode_reports_source(monkeypatch):
    with pytest.raises(ConfigError, match="from kwarg"):
        resolve_mode("thing", env_var="NOPE", valid=("a",), default="a",
                     override="b")
    monkeypatch.setenv("REPRO_TEST_KNOB", "b")
    with pytest.raises(ConfigError, match="from env REPRO_TEST_KNOB"):
        resolve_mode("thing", env_var="REPRO_TEST_KNOB", valid=("a",),
                     default="a")


def test_mode_metadata_resolves_and_accepts_overrides(monkeypatch):
    assert mode_metadata() == {
        "allocator": "incremental",
        "transfer_mode": "coalesced",
        "epoch": False,
        "routing": "book",
    }
    monkeypatch.setenv(ENV_NET_ALLOCATOR, "epoch")
    assert mode_metadata()["epoch"] is True
    meta = mode_metadata(
        allocator="legacy", transfer="per_batch", routing="enumerate"
    )
    assert meta == {
        "allocator": "legacy",
        "transfer_mode": "per_batch",
        "epoch": False,
        "routing": "enumerate",
    }


def test_all_allocators_construct_networks():
    from repro.net import FlowNetwork
    from repro.sim import Environment

    for allocator in NET_ALLOCATORS:
        net = FlowNetwork(Environment(), allocator=allocator)
        assert net.allocator == allocator
