"""Route books: interned path tables equal to fresh enumeration."""

import itertools

import pytest

from repro.topology import make_cluster
from repro.topology.paths import (
    cross_node_gdr_path,
    gpu_p2p_pcie_path,
    gpu_to_host_path,
    host_to_gpu_path,
    host_to_host_path,
    nvlink_direct_path,
    nvlink_simple_paths,
)
from repro.topology.routebook import (
    ClusterRouteBook,
    NodeRouteBook,
    cluster_route_book,
    route_book,
)

PRESETS = ("dgx-v100", "dgx-a100", "a10", "h800")


def _link_ids(path):
    return [link.link_id for link in path.links]


@pytest.mark.parametrize("preset", PRESETS)
def test_nvlink_tables_match_enumeration(preset):
    node = make_cluster(preset).nodes[0]
    book = route_book(node)
    for a, b in itertools.permutations(range(len(node.gpus)), 2):
        src, dst = node.gpu(a), node.gpu(b)
        expected = nvlink_simple_paths(node, src, dst)
        got = book.nvlink_paths(a, b)
        assert [_link_ids(p) for p in got] == [_link_ids(p) for p in expected]
        direct = nvlink_direct_path(node, src, dst)
        if direct is None:
            assert book.nvlink_direct(a, b) is None
        else:
            assert _link_ids(book.nvlink_direct(a, b)) == _link_ids(direct)


@pytest.mark.parametrize("preset", PRESETS)
def test_pcie_tables_match_enumeration(preset):
    node = make_cluster(preset).nodes[0]
    book = route_book(node)
    for idx in range(len(node.gpus)):
        gpu = node.gpu(idx)
        assert _link_ids(book.gpu_to_host(idx)) == _link_ids(
            gpu_to_host_path(node, gpu)
        )
        assert _link_ids(book.host_to_gpu(idx)) == _link_ids(
            host_to_gpu_path(node, gpu)
        )
    for a, b in itertools.permutations(range(len(node.gpus)), 2):
        assert _link_ids(book.gpu_p2p(a, b)) == _link_ids(
            gpu_p2p_pcie_path(node, node.gpu(a), node.gpu(b))
        )


@pytest.mark.parametrize("preset", PRESETS)
def test_out_capacity_matches_sum(preset):
    node = make_cluster(preset).nodes[0]
    book = route_book(node)
    for idx in range(len(node.gpus)):
        expected = sum(
            node.nvlink_capacity(idx, peer)
            for peer in node.nvlink_neighbors(idx)
        )
        assert book.out_capacity(idx) == expected


def test_paths_are_interned_identity():
    node = make_cluster("dgx-v100").nodes[0]
    book = route_book(node)
    first = book.nvlink_paths(0, 3)
    assert book.nvlink_paths(0, 3) is first
    assert book.gpu_to_host(2) is book.gpu_to_host(2)
    assert book.gpu_p2p(1, 5) is book.gpu_p2p(1, 5)


def test_route_book_is_singleton_per_topology():
    cluster = make_cluster("dgx-v100", num_nodes=2)
    node = cluster.nodes[0]
    assert route_book(node) is route_book(node)
    # A different topology object gets a different book, even for the
    # same preset.
    other = make_cluster("dgx-v100").nodes[0]
    assert route_book(other) is not route_book(node)


def test_cluster_book_shares_node_books():
    cluster = make_cluster("dgx-a100", num_nodes=2)
    cbook = cluster_route_book(cluster)
    assert cluster_route_book(cluster) is cbook
    for node in cluster.nodes:
        assert cbook.node_book(node.node_id) is route_book(node)


def test_cluster_tables_match_enumeration():
    cluster = make_cluster("dgx-v100", num_nodes=2)
    cbook = cluster_route_book(cluster)
    a, b = cluster.nodes
    assert _link_ids(cbook.host_to_host(a.node_id, b.node_id)) == _link_ids(
        host_to_host_path(cluster, a, b)
    )
    src, dst = a.gpus[0], b.gpus[3]
    assert _link_ids(
        cbook.gdr_path(src.device_id, dst.device_id)
    ) == _link_ids(cross_node_gdr_path(cluster, src, dst))


@pytest.mark.parametrize("preset", PRESETS)
def test_warm_fills_every_table(preset):
    node = make_cluster(preset).nodes[0]
    book = NodeRouteBook(node).warm()
    n = len(node.gpus)
    assert len(book._host_paths) == 2 * n
    assert len(book._out_capacity) == n
    assert len(book._nvlink_paths) == n * (n - 1)
    assert len(book._nvlink_direct) == n * (n - 1)
    assert len(book._p2p) == n * (n - 1)


def test_cluster_warm_fills_cross_node_tables():
    cluster = make_cluster("a10", num_nodes=3)
    cbook = ClusterRouteBook(cluster).warm()
    n_nodes = len(cluster.nodes)
    gpus_per = len(cluster.nodes[0].gpus)
    assert len(cbook._h2h) == n_nodes * (n_nodes - 1)
    assert len(cbook._gdr) == n_nodes * (n_nodes - 1) * gpus_per * gpus_per


def test_warm_book_serves_without_new_enumeration(monkeypatch):
    node = make_cluster("dgx-v100").nodes[0]
    book = NodeRouteBook(node).warm()
    import repro.topology.routebook as rb

    def _boom(*args, **kwargs):  # pragma: no cover - should never run
        raise AssertionError("warm book re-enumerated")

    monkeypatch.setattr(rb, "nvlink_simple_paths", _boom)
    monkeypatch.setattr(rb, "gpu_to_host_path", _boom)
    monkeypatch.setattr(rb, "host_to_gpu_path", _boom)
    monkeypatch.setattr(rb, "gpu_p2p_pcie_path", _boom)
    for x, y in itertools.permutations(range(len(node.gpus)), 2):
        book.nvlink_paths(x, y)
        book.gpu_p2p(x, y)
    for idx in range(len(node.gpus)):
        book.gpu_to_host(idx)
        book.host_to_gpu(idx)
