"""Edge-case tests for cluster construction and custom specs."""

import pytest

from repro.common.errors import TopologyError
from repro.common.units import GB
from repro.topology import (
    FABRIC_ID,
    ClusterTopology,
    NodeSpec,
    NodeTopology,
    make_cluster,
    nvlink_simple_paths,
)


class TestCustomSpecs:
    def test_heterogeneous_cluster_rejected_duplicate_ids(self):
        node_a = NodeTopology(make_cluster("a10").nodes[0].spec, 0)
        node_b = NodeTopology(make_cluster("a10").nodes[0].spec, 0)
        with pytest.raises(TopologyError):
            ClusterTopology([node_a, node_b])

    def test_mixed_cluster_supported(self):
        v100 = make_cluster("dgx-v100").nodes[0].spec
        a100 = make_cluster("dgx-a100").nodes[0].spec
        cluster = ClusterTopology(
            [NodeTopology(v100, 0), NodeTopology(a100, 1)]
        )
        assert cluster.nodes[0].spec.name == "dgx-v100"
        assert cluster.nodes[1].spec.name == "dgx-a100"
        assert len(cluster.all_gpus()) == 16

    def test_custom_spec_via_make_cluster(self):
        spec = NodeSpec(
            name="custom",
            num_gpus=2,
            gpu_memory=8 * GB,
            pcie_bandwidth=16 * GB,
            switch_groups=((0,), (1,)),
            nics_per_switch=1,
            nic_bandwidth=10 * GB,
            nvswitch_bandwidth=100 * GB,
        )
        cluster = make_cluster(spec=spec, num_nodes=3)
        assert len(cluster.nodes) == 3
        assert cluster.nodes[2].nvlink_capacity(0, 1) == 100 * GB

    def test_single_gpu_node_has_no_nvlink_paths(self):
        spec = NodeSpec(
            name="single",
            num_gpus=1,
            gpu_memory=8 * GB,
            pcie_bandwidth=16 * GB,
            switch_groups=((0,),),
            nics_per_switch=1,
            nic_bandwidth=10 * GB,
        )
        node = NodeTopology(spec, 0)
        assert not node.has_nvlink
        assert node.nic_for_gpu(node.gpu(0)).device_id == "n0.nic0"


class TestFabricEdges:
    def test_unknown_fabric_link(self):
        cluster = make_cluster("dgx-v100", num_nodes=2)
        with pytest.raises(TopologyError):
            cluster.link("n0.g0", FABRIC_ID)  # GPUs don't touch fabric

    def test_unknown_node_lookup(self):
        cluster = make_cluster("dgx-v100")
        with pytest.raises(TopologyError):
            cluster.node("n9")

    def test_all_links_includes_fabric(self):
        cluster = make_cluster("dgx-v100", num_nodes=2)
        link_ids = {link.link_id for link in cluster.all_links()}
        assert f"n0.nic0>{FABRIC_ID}" in link_ids
        assert f"{FABRIC_ID}>n1.nic3" in link_ids


class TestPathEnumerationBounds:
    def test_max_hops_one_gives_only_direct(self):
        cluster = make_cluster("dgx-v100")
        node = cluster.nodes[0]
        paths = nvlink_simple_paths(
            node, node.gpu(0), node.gpu(3), max_hops=1
        )
        assert all(path.hops == 1 for path in paths)
        assert len(paths) == 1

    def test_unreachable_within_hop_budget(self):
        cluster = make_cluster("dgx-v100")
        node = cluster.nodes[0]
        # GPU0-GPU5 need at least 2 hops.
        paths = nvlink_simple_paths(
            node, node.gpu(0), node.gpu(5), max_hops=1
        )
        assert paths == []
