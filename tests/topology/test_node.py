"""Tests for node topologies and the four evaluation presets."""

import pytest

from repro.common.errors import TopologyError
from repro.common.units import GB
from repro.topology import (
    NodeSpec,
    NodeTopology,
    a10_spec,
    dgx_a100_spec,
    dgx_v100_spec,
    h800_spec,
    node_spec,
)


@pytest.fixture
def v100():
    return NodeTopology(dgx_v100_spec(), 0)


@pytest.fixture
def a100():
    return NodeTopology(dgx_a100_spec(), 0)


class TestDgxV100:
    def test_eight_gpus_16gb(self, v100):
        assert len(v100.gpus) == 8
        assert all(gpu.memory_capacity == 16 * GB for gpu in v100.gpus)

    def test_each_gpu_has_six_nvlink_lanes(self, v100):
        # V100 has exactly 6 NVLink ports; the cube-mesh uses all of them.
        lane_bw = dgx_v100_spec().nvlink_lane_bandwidth
        for index in range(8):
            total = sum(
                v100.nvlink_capacity(index, peer)
                for peer in v100.nvlink_neighbors(index)
            )
            assert total == pytest.approx(6 * lane_bw)

    def test_asymmetry_statistics_match_paper(self, v100):
        """§3.2.2: 28% of pairs half bandwidth, 42% no direct NVLink."""
        lane_bw = dgx_v100_spec().nvlink_lane_bandwidth
        single, double, absent = 0, 0, 0
        for a in range(8):
            for b in range(a + 1, 8):
                capacity = v100.nvlink_capacity(a, b)
                if capacity == 0:
                    absent += 1
                elif capacity == pytest.approx(lane_bw):
                    single += 1
                else:
                    double += 1
        assert absent == 12  # 42.9%
        assert single == 8  # 28.6%
        assert double == 8
        assert absent + single + double == 28

    def test_nvlink_symmetric(self, v100):
        for a in range(8):
            for b in range(8):
                if a != b:
                    assert v100.nvlink_capacity(a, b) == v100.nvlink_capacity(b, a)

    def test_pcie_switch_pairs(self, v100):
        assert v100.shares_pcie_switch(v100.gpu(0), v100.gpu(1))
        assert not v100.shares_pcie_switch(v100.gpu(1), v100.gpu(2))
        assert len(v100.switches) == 4

    def test_four_nics(self, v100):
        assert len(v100.nics) == 4

    def test_nic_for_gpu_is_local_switch(self, v100):
        nic = v100.nic_for_gpu(v100.gpu(2))
        assert nic.device_id in v100.nics_of_switch(v100.switch_of(v100.gpu(2)))

    def test_no_nvswitch(self, v100):
        assert not v100.has_nvswitch
        assert v100.has_nvlink

    def test_duplex_links(self, v100):
        gpu0, gpu3 = v100.gpu(0).device_id, v100.gpu(3).device_id
        forward = v100.link(gpu0, gpu3)
        backward = v100.link(gpu3, gpu0)
        assert forward.capacity == backward.capacity
        assert forward.link_id != backward.link_id

    def test_missing_link_raises(self, v100):
        # GPUs 0 and 5 lack direct NVLink in the cube mesh.
        with pytest.raises(TopologyError):
            v100.link(v100.gpu(0).device_id, v100.gpu(5).device_id)


class TestDgxA100:
    def test_nvswitch_uniform(self, a100):
        assert a100.has_nvswitch
        for a in range(8):
            for b in range(8):
                if a != b:
                    assert a100.nvlink_capacity(a, b) == pytest.approx(300 * GB)

    def test_eight_nics(self, a100):
        assert len(a100.nics) == 8

    def test_gpu_memory(self, a100):
        assert a100.gpu(0).memory_capacity == 40 * GB


class TestOtherPresets:
    def test_a10_has_no_nvlink(self):
        node = NodeTopology(a10_spec(), 0)
        assert not node.has_nvlink
        assert not node.has_nvswitch
        assert len(node.gpus) == 4
        # Each GPU on its own switch: no shared-uplink contention pairs.
        assert len(node.switches) == 4

    def test_h800_nvswitch_200gbps(self):
        node = NodeTopology(h800_spec(), 0)
        assert node.has_nvswitch
        assert node.nvlink_capacity(0, 7) == pytest.approx(200 * GB)

    def test_node_spec_lookup(self):
        assert node_spec("dgx-v100").name == "dgx-v100"
        with pytest.raises(TopologyError):
            node_spec("tpu-v5")

    def test_bad_switch_groups_rejected(self):
        spec = NodeSpec(
            name="bad",
            num_gpus=4,
            gpu_memory=1 * GB,
            pcie_bandwidth=1 * GB,
            switch_groups=((0, 1),),  # GPUs 2,3 uncovered
            nics_per_switch=1,
            nic_bandwidth=1 * GB,
        )
        with pytest.raises(TopologyError):
            NodeTopology(spec, 0)

    def test_gpu_index_out_of_range(self):
        node = NodeTopology(a10_spec(), 0)
        with pytest.raises(TopologyError):
            node.gpu(9)
