"""Tests for cluster construction and path helpers."""

import pytest

from repro.common.errors import RoutingError, TopologyError
from repro.common.units import GB
from repro.topology import (
    FABRIC_ID,
    cross_node_gdr_path,
    gpu_p2p_pcie_path,
    gpu_to_host_path,
    host_to_gpu_path,
    host_to_host_path,
    make_cluster,
    nvlink_direct_path,
    nvlink_simple_paths,
)


@pytest.fixture
def cluster():
    return make_cluster("dgx-v100", num_nodes=2)


@pytest.fixture
def node(cluster):
    return cluster.nodes[0]


class TestCluster:
    def test_two_nodes(self, cluster):
        assert len(cluster.nodes) == 2
        assert len(cluster.all_gpus()) == 16

    def test_node_of_device(self, cluster):
        assert cluster.node_of_device("n1.g3").node_id == "n1"

    def test_gpu_lookup(self, cluster):
        gpu = cluster.gpu("n0.g5")
        assert gpu.index == 5

    def test_unknown_gpu_raises(self, cluster):
        with pytest.raises(TopologyError):
            cluster.gpu("n0.g99")

    def test_fabric_links_exist_per_nic(self, cluster):
        link = cluster.link("n0.nic0", FABRIC_ID)
        assert link.capacity == pytest.approx(100e9 / 8)
        back = cluster.link(FABRIC_ID, "n1.nic2")
        assert back.dst == "n1.nic2"

    def test_same_node(self, cluster):
        assert cluster.same_node("n0.g0", "n0.host")
        assert not cluster.same_node("n0.g0", "n1.g0")

    def test_zero_nodes_rejected(self):
        with pytest.raises(TopologyError):
            make_cluster("dgx-v100", num_nodes=0)


class TestNvlinkPaths:
    def test_direct_path_exists_for_linked_pair(self, node):
        path = nvlink_direct_path(node, node.gpu(0), node.gpu(3))
        assert path is not None
        assert path.hops == 1
        assert path.nominal_bandwidth == pytest.approx(48 * GB)

    def test_direct_path_absent_for_unlinked_pair(self, node):
        assert nvlink_direct_path(node, node.gpu(0), node.gpu(5)) is None

    def test_self_path_raises(self, node):
        with pytest.raises(RoutingError):
            nvlink_direct_path(node, node.gpu(0), node.gpu(0))

    def test_simple_paths_shortest_first(self, node):
        paths = nvlink_simple_paths(node, node.gpu(0), node.gpu(3), max_hops=2)
        assert paths[0].hops == 1
        assert all(
            earlier.hops <= later.hops
            for earlier, later in zip(paths, paths[1:])
        )

    def test_simple_paths_for_weak_pair(self, node):
        # GPU0-GPU5 have no direct link; 2-hop paths must exist.
        paths = nvlink_simple_paths(node, node.gpu(0), node.gpu(5), max_hops=2)
        assert paths
        assert all(path.hops == 2 for path in paths)

    def test_nvswitch_node_single_hub_path(self):
        cluster = make_cluster("dgx-a100")
        node = cluster.nodes[0]
        paths = nvlink_simple_paths(node, node.gpu(0), node.gpu(7))
        assert len(paths) == 1
        assert paths[0].devices() == ["n0.g0", "n0.nvsw", "n0.g7"]


class TestPciePaths:
    def test_gpu_to_host(self, node):
        path = gpu_to_host_path(node, node.gpu(0))
        assert path.devices() == ["n0.g0", "n0.sw0", "n0.host"]
        assert path.nominal_bandwidth == pytest.approx(12 * GB)

    def test_host_to_gpu(self, node):
        path = host_to_gpu_path(node, node.gpu(6))
        assert path.devices() == ["n0.host", "n0.sw3", "n0.g6"]

    def test_p2p_same_switch_avoids_host(self, node):
        path = gpu_p2p_pcie_path(node, node.gpu(0), node.gpu(1))
        assert "n0.host" not in path.devices()
        assert path.hops == 2

    def test_p2p_cross_switch_crosses_host(self, node):
        path = gpu_p2p_pcie_path(node, node.gpu(0), node.gpu(2))
        assert "n0.host" in path.devices()
        assert path.hops == 4

    def test_p2p_self_raises(self, node):
        with pytest.raises(RoutingError):
            gpu_p2p_pcie_path(node, node.gpu(0), node.gpu(0))


class TestCrossNodePaths:
    def test_gdr_path_structure(self, cluster):
        src = cluster.gpu("n0.g1")
        dst = cluster.gpu("n1.g2")
        path = cross_node_gdr_path(cluster, src, dst)
        devices = path.devices()
        assert devices[0] == "n0.g1"
        assert devices[-1] == "n1.g2"
        assert FABRIC_ID in devices
        assert "n0.host" not in devices  # GPUDirect bypasses host

    def test_gdr_bottleneck_is_nic(self, cluster):
        src, dst = cluster.gpu("n0.g0"), cluster.gpu("n1.g0")
        path = cross_node_gdr_path(cluster, src, dst)
        assert path.nominal_bandwidth == pytest.approx(100e9 / 8)

    def test_gdr_same_node_raises(self, cluster):
        with pytest.raises(RoutingError):
            cross_node_gdr_path(
                cluster, cluster.gpu("n0.g0"), cluster.gpu("n0.g1")
            )

    def test_explicit_nics(self, cluster):
        src, dst = cluster.gpu("n0.g0"), cluster.gpu("n1.g0")
        src_node, dst_node = cluster.nodes[0], cluster.nodes[1]
        path = cross_node_gdr_path(
            cluster, src, dst,
            src_nic=src_node.nics[3], dst_nic=dst_node.nics[3],
        )
        devices = path.devices()
        assert "n0.nic3" in devices
        assert "n1.nic3" in devices
        # A non-local NIC forces a trip through the host root complex.
        assert "n0.host" in devices

    def test_host_to_host(self, cluster):
        path = host_to_host_path(cluster, cluster.nodes[0], cluster.nodes[1])
        devices = path.devices()
        assert devices[0] == "n0.host"
        assert devices[-1] == "n1.host"

    def test_host_to_host_same_node_raises(self, cluster):
        with pytest.raises(RoutingError):
            host_to_host_path(cluster, cluster.nodes[0], cluster.nodes[0])
