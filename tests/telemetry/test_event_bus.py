"""Tests for the telemetry event bus."""

import pytest

from repro.telemetry import EventBus
from repro.telemetry.events import FlowStarted, StorePut


def flow_started(t=0.0):
    return FlowStarted(
        t=t, flow_id=1, tag="probe", size=1024.0,
        links=("a>b",), src="a", dst="b",
    )


def store_put(t=0.0):
    return StorePut(
        t=t, object_id="obj-1", device_id="n0.g0",
        size=1024.0, placement="gpu",
    )


class TestEventBus:
    def test_typed_subscription_receives_only_its_type(self):
        bus = EventBus()
        got = []
        bus.subscribe(FlowStarted, got.append)
        bus.publish(flow_started())
        bus.publish(store_put())
        assert len(got) == 1
        assert isinstance(got[0], FlowStarted)

    def test_wildcard_receives_everything(self):
        bus = EventBus()
        got = []
        bus.subscribe(None, got.append)
        bus.publish(flow_started())
        bus.publish(store_put())
        assert len(got) == 2

    def test_unsubscribe(self):
        bus = EventBus()
        got = []
        bus.subscribe(FlowStarted, got.append)
        bus.unsubscribe(FlowStarted, got.append)
        bus.publish(flow_started())
        assert got == []

    def test_unsubscribe_unknown_is_noop(self):
        bus = EventBus()
        bus.unsubscribe(FlowStarted, lambda e: None)
        bus.unsubscribe(None, lambda e: None)

    def test_published_counter(self):
        bus = EventBus()
        bus.publish(flow_started())
        bus.publish(store_put())
        assert bus.published == 2

    def test_subscriber_count(self):
        bus = EventBus()
        assert bus.subscriber_count == 0
        bus.subscribe(FlowStarted, lambda e: None)
        bus.subscribe(None, lambda e: None)
        assert bus.subscriber_count == 2

    def test_multiple_subscribers_in_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(FlowStarted, lambda e: order.append("first"))
        bus.subscribe(FlowStarted, lambda e: order.append("second"))
        bus.subscribe(None, lambda e: order.append("wildcard"))
        bus.publish(flow_started())
        assert order == ["first", "second", "wildcard"]

    def test_events_are_frozen(self):
        event = flow_started()
        with pytest.raises(AttributeError):
            event.size = 2048.0


class TestPublishReentrancy:
    """A subscriber may mutate the subscription lists mid-publish."""

    def test_callback_unsubscribes_itself_typed(self):
        bus = EventBus()
        got = []

        def once(event):
            got.append(event)
            bus.unsubscribe(FlowStarted, once)

        bus.subscribe(FlowStarted, once)
        bus.publish(flow_started())
        bus.publish(flow_started())
        assert len(got) == 1
        assert bus.subscriber_count == 0

    def test_callback_unsubscribes_itself_wildcard(self):
        bus = EventBus()
        got = []

        def once(event):
            got.append(event)
            bus.unsubscribe(None, once)

        bus.subscribe(None, once)
        bus.publish(flow_started())
        bus.publish(store_put())
        assert len(got) == 1

    def test_callback_unsubscribes_a_later_callback(self):
        # The removed callback still sees the in-flight event (snapshot
        # semantics) but not the next one.
        bus = EventBus()
        later_got = []

        def later(event):
            later_got.append(event)

        def remover(event):
            bus.unsubscribe(FlowStarted, later)

        bus.subscribe(FlowStarted, remover)
        bus.subscribe(FlowStarted, later)
        bus.publish(flow_started())
        bus.publish(flow_started())
        assert len(later_got) == 1

    def test_callback_subscribes_a_new_callback(self):
        # A subscriber added mid-publish first sees the *next* event.
        bus = EventBus()
        new_got = []

        def adder(event):
            if not new_got:
                bus.subscribe(FlowStarted, new_got.append)

        bus.subscribe(FlowStarted, adder)
        bus.publish(flow_started())
        assert new_got == []
        bus.publish(flow_started())
        assert len(new_got) == 1

    def test_every_subscriber_still_sees_the_inflight_event(self):
        # Self-removal by an early callback must not skip later ones
        # (list.remove during iteration would have).
        bus = EventBus()
        order = []

        def first(event):
            order.append("first")
            bus.unsubscribe(FlowStarted, first)

        bus.subscribe(FlowStarted, first)
        bus.subscribe(FlowStarted, lambda e: order.append("second"))
        bus.subscribe(FlowStarted, lambda e: order.append("third"))
        bus.publish(flow_started())
        assert order == ["first", "second", "third"]
