"""Tests for the telemetry event bus."""

import pytest

from repro.telemetry import EventBus
from repro.telemetry.events import FlowStarted, StorePut


def flow_started(t=0.0):
    return FlowStarted(
        t=t, flow_id=1, tag="probe", size=1024.0,
        links=("a>b",), src="a", dst="b",
    )


def store_put(t=0.0):
    return StorePut(
        t=t, object_id="obj-1", device_id="n0.g0",
        size=1024.0, placement="gpu",
    )


class TestEventBus:
    def test_typed_subscription_receives_only_its_type(self):
        bus = EventBus()
        got = []
        bus.subscribe(FlowStarted, got.append)
        bus.publish(flow_started())
        bus.publish(store_put())
        assert len(got) == 1
        assert isinstance(got[0], FlowStarted)

    def test_wildcard_receives_everything(self):
        bus = EventBus()
        got = []
        bus.subscribe(None, got.append)
        bus.publish(flow_started())
        bus.publish(store_put())
        assert len(got) == 2

    def test_unsubscribe(self):
        bus = EventBus()
        got = []
        bus.subscribe(FlowStarted, got.append)
        bus.unsubscribe(FlowStarted, got.append)
        bus.publish(flow_started())
        assert got == []

    def test_unsubscribe_unknown_is_noop(self):
        bus = EventBus()
        bus.unsubscribe(FlowStarted, lambda e: None)
        bus.unsubscribe(None, lambda e: None)

    def test_published_counter(self):
        bus = EventBus()
        bus.publish(flow_started())
        bus.publish(store_put())
        assert bus.published == 2

    def test_subscriber_count(self):
        bus = EventBus()
        assert bus.subscriber_count == 0
        bus.subscribe(FlowStarted, lambda e: None)
        bus.subscribe(None, lambda e: None)
        assert bus.subscriber_count == 2

    def test_multiple_subscribers_in_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(FlowStarted, lambda e: order.append("first"))
        bus.subscribe(FlowStarted, lambda e: order.append("second"))
        bus.subscribe(None, lambda e: order.append("wildcard"))
        bus.publish(flow_started())
        assert order == ["first", "second", "wildcard"]

    def test_events_are_frozen(self):
        event = flow_started()
        with pytest.raises(AttributeError):
            event.size = 2048.0
