"""Tests for rolling-window SLO evaluation (repro.telemetry.slo)."""

import pytest

from repro.common.errors import ConfigError
from repro.telemetry import EventBus
from repro.telemetry.events import (
    RequestArrived,
    RequestFinished,
    RequestRejected,
    StageSpan,
)
from repro.telemetry.slo import SloBoard, SloSpec, SloTracker, default_specs


def spec(threshold=1.0, objective=0.9, window=2.0, kind="latency",
         name="lat"):
    return SloSpec(name, kind, threshold=threshold, objective=objective,
                   window=window)


class TestSloSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SloSpec("x", "nope")
        with pytest.raises(ConfigError):
            SloSpec("x", "latency", objective=1.0)
        with pytest.raises(ConfigError):
            SloSpec("x", "latency", window=0.0)

    def test_default_specs_names(self):
        names = [s.name for s in default_specs()]
        assert names == ["latency", "ttft", "data_share", "rejection"]


class TestSloTracker:
    def test_all_good_is_met(self):
        tracker = SloTracker(spec())
        for i in range(10):
            tracker.observe(float(i), 0.5)
        tracker.finalize(10.0)
        assert tracker.attainment == 1.0
        assert tracker.met
        assert tracker.episodes == []
        assert tracker.worst_burn == 0.0

    def test_empty_stream_is_compliant(self):
        tracker = SloTracker(spec())
        tracker.finalize(1.0)
        assert tracker.attainment == 1.0
        assert tracker.met
        assert tracker.burn_rate == 0.0

    def test_burn_rate_is_windowed_bad_over_budget(self):
        # objective 0.9 -> budget 0.1; one bad in two samples -> burn 5.
        tracker = SloTracker(spec(objective=0.9, window=10.0))
        tracker.observe(0.0, 0.5)   # good
        tracker.observe(1.0, 2.0)   # bad
        assert tracker.burn_rate == pytest.approx((1 / 2) / 0.1)

    def test_violation_opens_and_recovers(self):
        tracker = SloTracker(spec(objective=0.9, window=2.0))
        tracker.observe(0.0, 2.0)  # bad -> burn 10 -> episode opens
        assert len(tracker.episodes) == 1
        assert tracker.episodes[0].open
        # Good samples arrive; the bad one ages out of the window.
        for i in range(1, 6):
            tracker.observe(float(i), 0.5)
        tracker.finalize(6.0)
        (episode,) = tracker.episodes
        assert not episode.open
        assert episode.ttr is not None
        assert episode.ttr > 0.0

    def test_finalize_closes_open_episode_with_finite_ttr(self):
        tracker = SloTracker(spec(objective=0.9, window=100.0))
        tracker.observe(0.0, 2.0)  # bad, never recovers live
        tracker.finalize(3.0)
        (episode,) = tracker.episodes
        assert episode.end == 3.0
        assert episode.ttr == 3.0
        assert not tracker.met

    def test_finalize_is_idempotent(self):
        tracker = SloTracker(spec())
        tracker.observe(0.0, 2.0)
        tracker.finalize(1.0)
        tracker.finalize(5.0)
        assert tracker.episodes[-1].end == 1.0
        with pytest.raises(ConfigError):
            tracker.observe(2.0, 0.1)

    def test_report_shape(self):
        tracker = SloTracker(spec())
        tracker.observe(0.0, 0.5)
        tracker.finalize(1.0)
        report = tracker.report()
        for key in ("name", "kind", "threshold", "objective", "window",
                    "total", "good", "bad", "attainment", "worst_burn",
                    "met", "episodes"):
            assert key in report


def span(t, request_id, kind, start, end, stage="s"):
    return StageSpan(t=t, request_id=request_id, stage=stage, kind=kind,
                     start=start, end=end, device_id="n0.g0")


class TestSloBoard:
    def test_duplicate_spec_names_rejected(self):
        with pytest.raises(ConfigError):
            SloBoard([spec(name="a"), spec(name="a")])

    def test_latency_ttft_data_share_assembly(self):
        board = SloBoard(default_specs(
            latency_s=1.0, ttft_s=0.5, data_share_max=0.5,
            objective=0.9, window=10.0,
        ))
        board.feed(RequestArrived(t=0.0, request_id="r1", workflow="wf"))
        board.feed(span(0.4, "r1", "get", 0.1, 0.2))
        board.feed(span(0.4, "r1", "exec", 0.2, 0.4))
        board.feed(span(0.7, "r1", "put", 0.4, 0.5))
        board.feed(span(0.8, "r1", "egress", 0.7, 0.8))
        board.feed(RequestFinished(t=0.8, request_id="r1", workflow="wf",
                                   latency=0.8, slo_met=None))
        board.finalize()
        report = board.report()
        # latency 0.8 <= 1.0 good; ttft 0.4 <= 0.5 good;
        # data time = 0.1 + 0.1 + 0.1 = 0.3, share 0.375 <= 0.5 good.
        assert report["latency"]["good"] == 1
        assert report["ttft"]["good"] == 1
        assert report["data_share"]["good"] == 1
        assert board.met

    def test_data_share_violation(self):
        board = SloBoard(default_specs(
            latency_s=10.0, ttft_s=10.0, data_share_max=0.3,
            objective=0.9, window=10.0,
        ))
        board.feed(RequestArrived(t=0.0, request_id="r1", workflow="wf"))
        board.feed(span(0.9, "r1", "get", 0.0, 0.9))  # 90% data passing
        board.feed(RequestFinished(t=1.0, request_id="r1", workflow="wf",
                                   latency=1.0, slo_met=None))
        board.finalize()
        report = board.report()
        assert report["data_share"]["bad"] == 1
        assert len(report["data_share"]["episodes"]) == 1
        assert not board.met

    def test_rejection_samples(self):
        board = SloBoard(default_specs(rejection_objective=0.6,
                                       objective=0.9, window=10.0))
        board.feed(RequestArrived(t=0.0, request_id="r1", workflow="wf"))
        board.feed(RequestRejected(t=0.1, request_id="r2", workflow="wf",
                                   reason="rate"))
        board.finalize()
        rejection = board.report()["rejection"]
        assert rejection["total"] == 2
        assert rejection["bad"] == 1
        assert rejection["attainment"] == 0.5

    def test_pending_state_dropped_on_finish(self):
        board = SloBoard()
        board.feed(RequestArrived(t=0.0, request_id="r1", workflow="wf"))
        assert board._pending
        board.feed(RequestFinished(t=1.0, request_id="r1", workflow="wf",
                                   latency=1.0, slo_met=None))
        assert not board._pending

    def test_bus_attach_detach(self):
        bus = EventBus()
        board = SloBoard().attach(bus)
        bus.publish(RequestArrived(t=0.0, request_id="r1", workflow="wf"))
        board.detach()
        bus.publish(RequestArrived(t=0.1, request_id="r2", workflow="wf"))
        assert board.trackers["rejection"].total == 1

    def test_episode_count_property(self):
        board = SloBoard(default_specs(latency_s=0.1, objective=0.9,
                                       window=5.0))
        board.feed(RequestArrived(t=0.0, request_id="r1", workflow="wf"))
        board.feed(RequestFinished(t=1.0, request_id="r1", workflow="wf",
                                   latency=1.0, slo_met=None))
        board.finalize()
        assert board.episode_count >= 1
